//! Deterministic open-loop arrival schedules.
//!
//! The whole workload — arrival instants, op kinds, query anchors — is
//! precomputed before the first request fires. That is what makes the
//! harness *open-loop*: the plan cannot react to (coordinate with) the
//! system under test. It is also what makes runs reproducible: the plan
//! is a pure function of `(dataset, ScheduleConfig)`, generated
//! single-threaded from one seeded [`StdRng`], so two runs on any
//! machines at any `RAYON_NUM_THREADS` produce byte-identical plans
//! ([`Schedule::to_bytes`] is the canonical comparison form, and the
//! `schedule_deterministic` flag in `BENCH_ppq.json` gates on it).
//!
//! Arrivals are Poisson at `rate_per_sec` (exponential inter-arrival
//! times via inverse CDF). Query anchors are skewed two ways, matching
//! how production traffic misbehaves:
//!
//! * **popularity skew** — the anchor trajectory is drawn rank-first
//!   from a [`Zipf`] law, with ranks mapped to trajectory ids through a
//!   seeded shuffle (so "hot" ids are arbitrary, not the lowest ids);
//! * **spatial skew** — with probability `hot_frac` the anchor position
//!   is redrawn from a [`HotspotSampler`] hot cell (seeded with the hot
//!   trajectories' own points, so hotspots overlap real data).

use crate::spatial::HotspotSampler;
use crate::zipf::Zipf;
use ppq_geo::Point;
use ppq_traj::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Spatio-temporal range query at `(t, point)`.
    Strq,
    /// Trajectory prediction query at `(t, point)` over `horizon`.
    Tpq,
    /// Ingest the next pending time slice (payload is positional: the
    /// driver's writer lane feeds slices in stream order, which is the
    /// ingest contract — an append op says *when*, never *what*).
    Append,
}

impl OpKind {
    fn tag(self) -> u8 {
        match self {
            OpKind::Strq => 0,
            OpKind::Tpq => 1,
            OpKind::Append => 2,
        }
    }
}

/// One scheduled operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Op {
    /// Scheduled arrival, nanoseconds from run start. Latency is
    /// measured from this instant — not from when a worker got around to
    /// issuing the request — which is the coordinated-omission-safe
    /// convention.
    pub at_nanos: u64,
    pub kind: OpKind,
    /// Query timestep (unused for appends).
    pub t: u32,
    /// Query anchor position (unused for appends).
    pub point: Point,
    /// TPQ horizon (zero for other kinds).
    pub horizon: u32,
}

/// Workload mix as relative weights (normalized internally).
#[derive(Clone, Copy, Debug)]
pub struct MixConfig {
    pub strq: f64,
    pub tpq: f64,
    pub append: f64,
}

impl MixConfig {
    /// Read-only mix: no appends.
    pub fn read_only(strq: f64, tpq: f64) -> MixConfig {
        MixConfig {
            strq,
            tpq,
            append: 0.0,
        }
    }
}

/// Everything that determines a [`Schedule`].
#[derive(Clone, Debug)]
pub struct ScheduleConfig {
    pub seed: u64,
    /// Target offered rate, operations per second.
    pub rate_per_sec: f64,
    /// Total operations to schedule.
    pub ops: usize,
    pub mix: MixConfig,
    /// Zipf exponent for trajectory popularity (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of queries redirected into hot cells.
    pub hot_frac: f64,
    /// Number of hot cells.
    pub hot_cells: usize,
    /// Hotspot grid resolution (cells per side).
    pub grid_cells: u32,
    pub tpq_horizon: u32,
}

impl Default for ScheduleConfig {
    fn default() -> ScheduleConfig {
        ScheduleConfig {
            seed: 0x10AD,
            rate_per_sec: 2000.0,
            ops: 10_000,
            mix: MixConfig {
                strq: 0.6,
                tpq: 0.3,
                append: 0.1,
            },
            zipf_s: 1.0,
            hot_frac: 0.3,
            hot_cells: 8,
            grid_cells: 32,
            tpq_horizon: 10,
        }
    }
}

/// A precomputed open-loop arrival plan.
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Ops in arrival order (`at_nanos` non-decreasing).
    pub ops: Vec<Op>,
}

impl Schedule {
    /// Generate the plan. Single-threaded by construction; see the
    /// module docs for the determinism contract.
    pub fn generate(dataset: &Dataset, cfg: &ScheduleConfig) -> Schedule {
        assert!(cfg.ops > 0, "empty schedule");
        assert!(
            cfg.rate_per_sec > 0.0 && cfg.rate_per_sec.is_finite(),
            "rate must be positive and finite"
        );
        let trajs = dataset.trajectories();
        assert!(!trajs.is_empty(), "cannot schedule over an empty dataset");
        let weight = cfg.mix.strq + cfg.mix.tpq + cfg.mix.append;
        assert!(weight > 0.0, "degenerate workload mix");
        let (w_strq, w_tpq) = (cfg.mix.strq / weight, cfg.mix.tpq / weight);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let zipf = Zipf::new(trajs.len(), cfg.zipf_s);
        // Rank -> trajectory id through a seeded Fisher-Yates shuffle.
        let mut rank_to_id: Vec<u32> = (0..trajs.len() as u32).collect();
        for i in (1..rank_to_id.len()).rev() {
            rank_to_id.swap(i, rng.gen_range(0..i + 1));
        }
        // Hot cells seeded with the hottest trajectories' first points,
        // so spatial hotspots sit on real data.
        let bbox = dataset.bbox().expect("non-empty dataset has an extent");
        let seeds: Vec<Point> = rank_to_id
            .iter()
            .take(cfg.hot_cells.max(1) * 4)
            .map(|&id| trajs[id as usize].points[0])
            .collect();
        let hotspot = HotspotSampler::from_seeds(
            &bbox,
            cfg.grid_cells,
            &seeds,
            cfg.hot_cells.max(1),
            cfg.hot_frac,
        );

        let mut ops = Vec::with_capacity(cfg.ops);
        let mut clock_secs = 0.0f64;
        for _ in 0..cfg.ops {
            // Exponential inter-arrival: Poisson process at the target rate.
            let u: f64 = rng.gen_range(0.0..1.0);
            clock_secs += -(1.0 - u).ln() / cfg.rate_per_sec;
            let at_nanos = (clock_secs * 1e9).round() as u64;

            let roll: f64 = rng.gen_range(0.0..1.0);
            let kind = if roll < w_strq {
                OpKind::Strq
            } else if roll < w_strq + w_tpq {
                OpKind::Tpq
            } else {
                OpKind::Append
            };
            if kind == OpKind::Append {
                ops.push(Op {
                    at_nanos,
                    kind,
                    t: 0,
                    point: Point::new(0.0, 0.0),
                    horizon: 0,
                });
                continue;
            }
            let traj = &trajs[rank_to_id[zipf.sample(&mut rng)] as usize];
            let off = rng.gen_range(0..traj.len());
            let t = traj.start + off as u32;
            let point = if cfg.hot_frac > 0.0 && rng.gen_bool(cfg.hot_frac) {
                hotspot.sample(&mut rng)
            } else {
                traj.points[off]
            };
            ops.push(Op {
                at_nanos,
                kind,
                t,
                point,
                horizon: if kind == OpKind::Tpq {
                    cfg.tpq_horizon
                } else {
                    0
                },
            });
        }
        Schedule { ops }
    }

    /// Scheduled span in seconds (arrival of the last op).
    pub fn duration_secs(&self) -> f64 {
        self.ops.last().map_or(0.0, |o| o.at_nanos as f64 / 1e9)
    }

    /// Offered rate implied by the realized arrivals.
    pub fn offered_rate(&self) -> f64 {
        let d = self.duration_secs();
        if d > 0.0 {
            self.ops.len() as f64 / d
        } else {
            0.0
        }
    }

    /// Ops of a given kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }

    /// Canonical byte serialization — the form the determinism contract
    /// is stated over. Little-endian fields, `f64` as IEEE bits, so
    /// "byte-identical" means *bit*-identical anchors and instants.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.ops.len() * 29);
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            out.extend_from_slice(&op.at_nanos.to_le_bytes());
            out.push(op.kind.tag());
            out.extend_from_slice(&op.t.to_le_bytes());
            out.extend_from_slice(&op.point.x.to_bits().to_le_bytes());
            out.extend_from_slice(&op.point.y.to_bits().to_le_bytes());
            out.extend_from_slice(&op.horizon.to_le_bytes());
        }
        out
    }

    /// FNV-1a digest of [`Schedule::to_bytes`] — a compact fingerprint
    /// for cross-process comparison in bench reports.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in self.to_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_traj::synth::{porto_like, PortoConfig};

    fn data() -> Dataset {
        porto_like(&PortoConfig {
            trajectories: 40,
            mean_len: 45,
            min_len: 30,
            start_spread: 10,
            seed: 0xDA7A,
        })
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_close() {
        let d = data();
        let cfg = ScheduleConfig {
            ops: 5000,
            rate_per_sec: 10_000.0,
            ..ScheduleConfig::default()
        };
        let s = Schedule::generate(&d, &cfg);
        assert_eq!(s.ops.len(), 5000);
        assert!(s.ops.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
        let rate = s.offered_rate();
        assert!(
            (rate - 10_000.0).abs() / 10_000.0 < 0.1,
            "offered rate {rate} too far from target"
        );
    }

    #[test]
    fn mix_fractions_are_respected() {
        let d = data();
        let cfg = ScheduleConfig {
            ops: 20_000,
            ..ScheduleConfig::default()
        };
        let s = Schedule::generate(&d, &cfg);
        let strq = s.count(OpKind::Strq) as f64 / s.ops.len() as f64;
        let tpq = s.count(OpKind::Tpq) as f64 / s.ops.len() as f64;
        let append = s.count(OpKind::Append) as f64 / s.ops.len() as f64;
        assert!((strq - 0.6).abs() < 0.02, "strq {strq}");
        assert!((tpq - 0.3).abs() < 0.02, "tpq {tpq}");
        assert!((append - 0.1).abs() < 0.02, "append {append}");
    }

    #[test]
    fn tpq_ops_carry_the_horizon() {
        let d = data();
        let s = Schedule::generate(&d, &ScheduleConfig::default());
        for op in &s.ops {
            match op.kind {
                OpKind::Tpq => assert_eq!(op.horizon, 10),
                _ => assert_eq!(op.horizon, 0),
            }
        }
    }

    #[test]
    fn query_times_fall_inside_the_dataset() {
        let d = data();
        let s = Schedule::generate(&d, &ScheduleConfig::default());
        for op in &s.ops {
            if op.kind != OpKind::Append {
                assert!(op.t >= d.min_t() && op.t <= d.max_t());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = data();
        let a = Schedule::generate(&d, &ScheduleConfig::default());
        let b = Schedule::generate(
            &d,
            &ScheduleConfig {
                seed: 0x10AD + 1,
                ..ScheduleConfig::default()
            },
        );
        assert_ne!(a.to_bytes(), b.to_bytes());
    }
}
