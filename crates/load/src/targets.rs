//! [`QueryTarget`] adapters for the engines the harness drives.
//!
//! All three answer through the *production* query forms (no
//! ground-truth scoring scan): `strq_online_with` for STRQ and
//! `tpq_with` for TPQ, each through the engine's reusable per-thread
//! workspace so the steady-state loop allocates only answer vectors.

use crate::driver::QueryTarget;
use ppq_core::query::{ShardedQueryEngine, ShardedQueryWorkspace};
use ppq_geo::Point;
use ppq_live::LiveService;
use ppq_repo::{DiskQueryEngine, DiskQueryWorkspace};

impl QueryTarget for ShardedQueryEngine<'_> {
    type Ctx = ShardedQueryWorkspace;

    fn strq(&self, t: u32, p: &Point, ctx: &mut Self::Ctx) -> usize {
        self.strq_online_with(t, p, ctx).exact.len()
    }

    fn tpq(&self, t: u32, p: &Point, horizon: u32, ctx: &mut Self::Ctx) -> usize {
        self.tpq_with(t, p, horizon, ctx).len()
    }
}

impl QueryTarget for DiskQueryEngine<'_> {
    type Ctx = DiskQueryWorkspace;

    fn strq(&self, t: u32, p: &Point, ctx: &mut Self::Ctx) -> usize {
        self.strq_online_with(t, p, ctx)
            .expect("disk STRQ failed under load")
            .exact
            .len()
    }

    fn tpq(&self, t: u32, p: &Point, horizon: u32, ctx: &mut Self::Ctx) -> usize {
        self.tpq_with(t, p, horizon, ctx)
            .expect("disk TPQ failed under load")
            .len()
    }
}

impl QueryTarget for LiveService {
    type Ctx = ShardedQueryWorkspace;

    fn strq(&self, t: u32, p: &Point, ctx: &mut Self::Ctx) -> usize {
        LiveService::strq(self, t, p, ctx).1.exact.len()
    }

    fn tpq(&self, t: u32, p: &Point, horizon: u32, ctx: &mut Self::Ctx) -> usize {
        LiveService::tpq(self, t, p, horizon, ctx).1.len()
    }
}
