//! [`crate::QueryTarget`] backends the harness drives.
//!
//! The trait itself lives in [`ppq_core::query::QueryTarget`] — it is
//! the repo-wide query-backend abstraction, not a harness detail — and
//! each implementation lives with its backend (the orphan rule wants it
//! there anyway):
//!
//! * `ShardedQueryEngine` — in `ppq-core`, next to the engine.
//! * `DiskQueryEngine` — in `ppq-repo` (I/O errors panic: an open-loop
//!   run cannot meaningfully continue past a failing disk).
//! * `LiveService` — in `ppq-live`, answering against published
//!   snapshots.
//! * `RemoteClient` — in `ppq-server`, driving a live server over TCP
//!   with one lazily-dialed connection per worker thread.
//!
//! All of them answer through the *production* query forms (no
//! ground-truth scoring scan), through each backend's reusable
//! per-thread workspace so the steady-state loop allocates only answer
//! vectors.
