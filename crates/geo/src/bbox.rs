//! Axis-aligned bounding boxes (the paper's minimum rectangles `Rₙ`).

use crate::point::Point;

/// A closed axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// `BBox` is used for the minimum bounding rectangles of PI partitions
/// (paper Algorithm 3 line 5), for the rectangles produced by overlap
/// removal, and for TrajStore's quadtree cells.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    pub min: Point,
    pub max: Point,
}

impl BBox {
    /// An "empty" box that any point will expand.
    pub const EMPTY: BBox = BBox {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    #[inline]
    pub fn new(min: Point, max: Point) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y,
            "inverted bbox: {min:?}..{max:?}"
        );
        BBox { min, max }
    }

    /// Build from raw extents.
    #[inline]
    pub fn from_extents(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        BBox::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
    }

    /// Minimum rectangle covering `points`; `None` when empty.
    pub fn covering(points: impl IntoIterator<Item = Point>) -> Option<BBox> {
        let mut b = BBox::EMPTY;
        let mut any = false;
        for p in points {
            b.expand(&p);
            any = true;
        }
        any.then_some(b)
    }

    /// True when the box covers no area and no point (the `EMPTY` state).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Grow to include `p`.
    #[inline]
    pub fn expand(&mut self, p: &Point) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grow to include another box.
    #[inline]
    pub fn union(&self, other: &BBox) -> BBox {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        BBox {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Closed-interval point containment.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the interiors (plus shared edges) intersect.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        !(self.is_empty() || other.is_empty())
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection rectangle; `None` when disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        let min = self.min.max(&other.min);
        let max = self.max.min(&other.max);
        Some(BBox { min, max })
    }

    /// True when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &BBox) -> bool {
        !other.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area, `|R|` in the paper's TRD definition (Definition 5.1).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// The four quadrant children (used by TrajStore's region quadtree).
    /// Order: SW, SE, NW, NE.
    pub fn quadrants(&self) -> [BBox; 4] {
        let c = self.center();
        [
            BBox::new(self.min, c),
            BBox::from_extents(c.x, self.min.y, self.max.x, c.y),
            BBox::from_extents(self.min.x, c.y, c.x, self.max.y),
            BBox::new(c, self.max),
        ]
    }

    /// Uniformly pad the box on all four sides.
    pub fn inflate(&self, by: f64) -> BBox {
        BBox::from_extents(
            self.min.x - by,
            self.min.y - by,
            self.max.x + by,
            self.max.y + by,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BBox {
        BBox::from_extents(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn covering_points() {
        let b = BBox::covering([
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(0.0, 7.0),
        ])
        .unwrap();
        assert_eq!(b, BBox::from_extents(-2.0, 3.0, 1.0, 7.0));
    }

    #[test]
    fn covering_empty_is_none() {
        assert!(BBox::covering(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_boundary_points() {
        let b = unit();
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(b.contains(&Point::new(1.0, 1.0)));
        assert!(b.contains(&Point::new(0.5, 0.5)));
        assert!(!b.contains(&Point::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn intersection_overlapping() {
        let a = unit();
        let b = BBox::from_extents(0.5, 0.5, 2.0, 2.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, BBox::from_extents(0.5, 0.5, 1.0, 1.0));
    }

    #[test]
    fn intersection_disjoint_is_none() {
        let a = unit();
        let b = BBox::from_extents(2.0, 2.0, 3.0, 3.0);
        assert!(a.intersection(&b).is_none());
        assert!(!a.intersects(&b));
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = unit();
        let b = BBox::from_extents(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.area(), 0.0);
    }

    #[test]
    fn union_and_area() {
        let a = unit();
        let b = BBox::from_extents(2.0, 2.0, 3.0, 4.0);
        let u = a.union(&b);
        assert_eq!(u, BBox::from_extents(0.0, 0.0, 3.0, 4.0));
        assert_eq!(a.area(), 1.0);
        assert_eq!(b.area(), 2.0);
    }

    #[test]
    fn union_with_empty() {
        let a = unit();
        assert_eq!(a.union(&BBox::EMPTY), a);
        assert_eq!(BBox::EMPTY.union(&a), a);
    }

    #[test]
    fn quadrants_cover_parent() {
        let b = BBox::from_extents(0.0, 0.0, 4.0, 2.0);
        let qs = b.quadrants();
        let total: f64 = qs.iter().map(|q| q.area()).sum();
        assert!((total - b.area()).abs() < 1e-12);
        for q in &qs {
            assert!(b.contains_box(q));
        }
    }

    #[test]
    fn contains_box_checks() {
        let outer = BBox::from_extents(0.0, 0.0, 10.0, 10.0);
        let inner = BBox::from_extents(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let b = unit().inflate(0.5);
        assert_eq!(b, BBox::from_extents(-0.5, -0.5, 1.5, 1.5));
    }
}
