//! Geometry substrate for the PPQ-Trajectory reproduction.
//!
//! Everything in the pipeline works on planar `f64` coordinates. Real
//! datasets (Porto, GeoLife) use longitude/latitude degrees; the paper
//! quotes thresholds both in degrees (`ε₁ = 0.001`) and metres
//! (`ε₁ᴹ ≈ 111 m`). [`coords`] holds the conversion used throughout.
//!
//! The crate deliberately has no dependencies: it is the bottom of the
//! workspace dependency graph.

pub mod bbox;
pub mod coords;
pub mod grid;
pub mod point;

pub use bbox::BBox;
pub use grid::GridSpec;
pub use point::Point;
