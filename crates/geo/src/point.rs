//! Planar points with the handful of vector operations the pipeline needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A planar point (or displacement vector) in coordinate units.
///
/// For the geographic datasets `x` is longitude and `y` is latitude, both in
/// degrees; prediction errors and CQC deviations reuse the same type since
/// they live in the same coordinate space.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance to `other`. Used on hot paths to avoid the
    /// square root when only comparisons are needed.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm (distance from the origin).
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Mean of a non-empty slice of points (the centroid used by the
    /// partitioners and quantizers). Returns `None` for an empty slice.
    pub fn centroid(points: &[Point]) -> Option<Point> {
        if points.is_empty() {
            return None;
        }
        let mut sx = 0.0;
        let mut sy = 0.0;
        for p in points {
            sx += p.x;
            sy += p.y;
        }
        let n = points.len() as f64;
        Some(Point::new(sx / n, sy / n))
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn dist2_matches_dist() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -1.5);
        assert!((a.dist2(&b).sqrt() - a.dist(&b)).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(Point::centroid(&[]).is_none());
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = Point::centroid(&pts).unwrap();
        assert_eq!(c, Point::new(1.0, 1.0));
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, -2.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(3.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(3.0, 5.0));
    }
}
