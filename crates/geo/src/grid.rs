//! Uniform grids: the shared machinery behind the PI grid index (`g_c`),
//! the CQC cell lattice (`g_s`), and the codebook nearest-neighbour hash.

use crate::bbox::BBox;
use crate::point::Point;

/// A uniform grid laid over a rectangle.
///
/// Cells are half-open: cell `(i, j)` covers
/// `[origin.x + i·cell, origin.x + (i+1)·cell) × [origin.y + j·cell, …)`,
/// except that points on the top/right boundary of the covered area are
/// clamped into the last row/column so the grid covers its whole `BBox`.
#[derive(Clone, Debug, PartialEq)]
pub struct GridSpec {
    origin: Point,
    cell: f64,
    cols: u32,
    rows: u32,
}

impl GridSpec {
    /// Grid covering `bbox` with square cells of side `cell`.
    ///
    /// The number of rows/columns is `ceil(extent / cell)` with a minimum of
    /// one, so degenerate (zero-extent) boxes still produce a usable 1×1
    /// grid.
    pub fn covering(bbox: &BBox, cell: f64) -> GridSpec {
        assert!(cell > 0.0, "cell size must be positive, got {cell}");
        assert!(!bbox.is_empty(), "cannot grid an empty bbox");
        let cols = ((bbox.width() / cell).ceil() as u32).max(1);
        let rows = ((bbox.height() / cell).ceil() as u32).max(1);
        GridSpec {
            origin: bbox.min,
            cell,
            cols,
            rows,
        }
    }

    /// Grid with explicit shape, anchored at `origin`.
    pub fn with_shape(origin: Point, cell: f64, cols: u32, rows: u32) -> GridSpec {
        assert!(cell > 0.0 && cols > 0 && rows > 0);
        GridSpec {
            origin,
            cell,
            cols,
            rows,
        }
    }

    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false // by construction cols, rows >= 1
    }

    /// The area the grid covers (may slightly exceed the source bbox because
    /// of the ceil in [`GridSpec::covering`]).
    pub fn coverage(&self) -> BBox {
        BBox::from_extents(
            self.origin.x,
            self.origin.y,
            self.origin.x + self.cols as f64 * self.cell,
            self.origin.y + self.rows as f64 * self.cell,
        )
    }

    /// Cell coordinates of `p`, or `None` when `p` is outside the coverage.
    #[inline]
    pub fn locate(&self, p: &Point) -> Option<(u32, u32)> {
        let fx = (p.x - self.origin.x) / self.cell;
        let fy = (p.y - self.origin.y) / self.cell;
        if fx < 0.0 || fy < 0.0 {
            return None;
        }
        let (cx, cy) = (fx as u32, fy as u32);
        // Points exactly on the far boundary belong to the last cell.
        let cx = if cx == self.cols && fx <= self.cols as f64 {
            self.cols - 1
        } else {
            cx
        };
        let cy = if cy == self.rows && fy <= self.rows as f64 {
            self.rows - 1
        } else {
            cy
        };
        (cx < self.cols && cy < self.rows).then_some((cx, cy))
    }

    /// Like [`GridSpec::locate`] but clamps outside points into the nearest
    /// boundary cell. Used by CQC where inputs are guaranteed in-range up to
    /// floating-point jitter.
    #[inline]
    pub fn locate_clamped(&self, p: &Point) -> (u32, u32) {
        let fx = ((p.x - self.origin.x) / self.cell).floor();
        let fy = ((p.y - self.origin.y) / self.cell).floor();
        let cx = fx.clamp(0.0, (self.cols - 1) as f64) as u32;
        let cy = fy.clamp(0.0, (self.rows - 1) as f64) as u32;
        (cx, cy)
    }

    /// Flat index of a cell (row-major).
    #[inline]
    pub fn flat(&self, cx: u32, cy: u32) -> usize {
        debug_assert!(cx < self.cols && cy < self.rows);
        cy as usize * self.cols as usize + cx as usize
    }

    /// Inverse of [`GridSpec::flat`].
    #[inline]
    pub fn unflat(&self, idx: usize) -> (u32, u32) {
        debug_assert!(idx < self.len());
        (
            (idx % self.cols as usize) as u32,
            (idx / self.cols as usize) as u32,
        )
    }

    /// Geometric bounds of a cell.
    pub fn cell_bbox(&self, cx: u32, cy: u32) -> BBox {
        let min = Point::new(
            self.origin.x + cx as f64 * self.cell,
            self.origin.y + cy as f64 * self.cell,
        );
        BBox::new(min, Point::new(min.x + self.cell, min.y + self.cell))
    }

    /// Centre point of a cell.
    #[inline]
    pub fn cell_center(&self, cx: u32, cy: u32) -> Point {
        Point::new(
            self.origin.x + (cx as f64 + 0.5) * self.cell,
            self.origin.y + (cy as f64 + 0.5) * self.cell,
        )
    }

    /// The inclusive cell-coordinate range `(lo_x, lo_y, hi_x, hi_y)` of
    /// cells whose bbox intersects `rect` (closed-interval semantics,
    /// matching [`BBox::intersects`]), or `None` when no cell intersects.
    ///
    /// This is the query-path primitive: callers intersect the range with
    /// their own occupancy information instead of materialising one
    /// `(cx, cy)` pair per covered cell.
    pub fn cell_range_in_rect(&self, rect: &BBox) -> Option<(u32, u32, u32, u32)> {
        if rect.is_empty() {
            return None;
        }
        let lo_x = ((rect.min.x - self.origin.x) / self.cell).floor().max(0.0) as i64;
        let lo_y = ((rect.min.y - self.origin.y) / self.cell).floor().max(0.0) as i64;
        let hi_x =
            (((rect.max.x - self.origin.x) / self.cell).floor() as i64).min(self.cols as i64 - 1);
        let hi_y =
            (((rect.max.y - self.origin.y) / self.cell).floor() as i64).min(self.rows as i64 - 1);
        if lo_x > hi_x || lo_y > hi_y || hi_x < 0 || hi_y < 0 {
            return None;
        }
        Some((lo_x as u32, lo_y as u32, hi_x as u32, hi_y as u32))
    }

    /// All cells whose bbox intersects `rect` (closed-interval semantics,
    /// matching [`BBox::intersects`]).
    pub fn cells_in_rect(&self, rect: &BBox) -> Vec<(u32, u32)> {
        let Some((lo_x, lo_y, hi_x, hi_y)) = self.cell_range_in_rect(rect) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for cy in lo_y..=hi_y {
            for cx in lo_x..=hi_x {
                out.push((cx, cy));
            }
        }
        out
    }

    /// Squared distance from `p` to the rectangle of cell `(cx, cy)` —
    /// zero when `p` is inside the cell.
    #[inline]
    pub fn cell_dist2(&self, cx: u32, cy: u32, p: &Point) -> f64 {
        let bb = self.cell_bbox(cx, cy);
        let dx = (bb.min.x - p.x).max(0.0).max(p.x - bb.max.x);
        let dy = (bb.min.y - p.y).max(0.0).max(p.y - bb.max.y);
        dx * dx + dy * dy
    }

    /// All cells whose bbox intersects the disc of radius `r` around `p`.
    ///
    /// This is the paper's *local search* primitive (§5.2): scan the grid
    /// cells covered by the circle of radius `(√2/2)·g_s` around the query.
    pub fn cells_in_disc(&self, p: &Point, r: f64) -> Vec<(u32, u32)> {
        assert!(r >= 0.0);
        let probe = BBox::from_extents(p.x - r, p.y - r, p.x + r, p.y + r);
        let Some((lo_x, lo_y, hi_x, hi_y)) = self.cell_range_in_rect(&probe) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for cy in lo_y..=hi_y {
            for cx in lo_x..=hi_x {
                if self.cell_dist2(cx, cy, p) <= r * r {
                    out.push((cx, cy));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::covering(&BBox::from_extents(0.0, 0.0, 10.0, 5.0), 1.0)
    }

    #[test]
    fn shape_from_bbox() {
        let g = grid();
        assert_eq!(g.cols(), 10);
        assert_eq!(g.rows(), 5);
        assert_eq!(g.len(), 50);
    }

    #[test]
    fn non_divisible_extent_rounds_up() {
        let g = GridSpec::covering(&BBox::from_extents(0.0, 0.0, 1.0, 1.0), 0.3);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 4);
        assert!(g
            .coverage()
            .contains_box(&BBox::from_extents(0.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn locate_interior_and_boundary() {
        let g = grid();
        assert_eq!(g.locate(&Point::new(0.5, 0.5)), Some((0, 0)));
        assert_eq!(g.locate(&Point::new(9.99, 4.99)), Some((9, 4)));
        // right/top boundary clamps into last cells
        assert_eq!(g.locate(&Point::new(10.0, 5.0)), Some((9, 4)));
        assert_eq!(g.locate(&Point::new(-0.1, 0.0)), None);
        assert_eq!(g.locate(&Point::new(10.1, 0.0)), None);
    }

    #[test]
    fn locate_clamped_pulls_outside_points_in() {
        let g = grid();
        assert_eq!(g.locate_clamped(&Point::new(-5.0, 100.0)), (0, 4));
        assert_eq!(g.locate_clamped(&Point::new(3.5, 2.5)), (3, 2));
    }

    #[test]
    fn flat_roundtrip() {
        let g = grid();
        for idx in 0..g.len() {
            let (cx, cy) = g.unflat(idx);
            assert_eq!(g.flat(cx, cy), idx);
        }
    }

    #[test]
    fn cell_geometry() {
        let g = grid();
        let bb = g.cell_bbox(3, 2);
        assert_eq!(bb, BBox::from_extents(3.0, 2.0, 4.0, 3.0));
        assert_eq!(g.cell_center(3, 2), Point::new(3.5, 2.5));
    }

    #[test]
    fn rect_query_covers_intersecting_cells() {
        let g = grid();
        let cells = g.cells_in_rect(&BBox::from_extents(1.5, 1.5, 3.5, 2.5));
        // x cells 1..=3, y cells 1..=2 → 3×2 cells.
        assert_eq!(cells.len(), 6);
        assert!(cells.contains(&(1, 1)));
        assert!(cells.contains(&(3, 2)));
        // Clipped at the grid edge.
        let edge = g.cells_in_rect(&BBox::from_extents(9.5, 4.5, 20.0, 20.0));
        assert_eq!(edge, vec![(9, 4)]);
        // Fully outside.
        assert!(g
            .cells_in_rect(&BBox::from_extents(20.0, 20.0, 30.0, 30.0))
            .is_empty());
    }

    #[test]
    fn disc_zero_radius_is_single_cell() {
        let g = grid();
        let cells = g.cells_in_disc(&Point::new(3.5, 2.5), 0.0);
        assert_eq!(cells, vec![(3, 2)]);
    }

    #[test]
    fn disc_radius_reaches_neighbors() {
        let g = grid();
        // Point at a cell corner with radius covering the four cells that
        // share the corner.
        let cells = g.cells_in_disc(&Point::new(3.0, 2.0), 0.5);
        assert_eq!(cells.len(), 4);
        assert!(cells.contains(&(2, 1)));
        assert!(cells.contains(&(3, 1)));
        assert!(cells.contains(&(2, 2)));
        assert!(cells.contains(&(3, 2)));
    }

    #[test]
    fn disc_clipped_at_grid_edge() {
        let g = grid();
        let cells = g.cells_in_disc(&Point::new(0.0, 0.0), 1.5);
        for (cx, cy) in &cells {
            assert!(*cx < g.cols() && *cy < g.rows());
        }
        assert!(cells.contains(&(0, 0)));
        assert!(cells.contains(&(1, 0)));
        assert!(cells.contains(&(0, 1)));
    }
}
