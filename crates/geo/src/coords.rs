//! Degree ↔ metre conversion.
//!
//! The paper's parameters mix units: `ε₁ = 0.001` is in degrees while
//! `ε₁ᴹ ≈ 111 m`, `g_s = 50 m` and `g_c = 100 m` are metres. Like the paper
//! (which cites a standard GIS textbook for the conversion) we use a single
//! scalar factor — adequate at city scale and at the mid latitudes of both
//! datasets, and crucially *consistent*: every module converts through this
//! one constant so the error-bound algebra (Lemma 3 etc.) is exact in
//! coordinate units.

/// Metres per degree of arc. `0.001° × 111_320 ≈ 111.3 m`, matching the
/// paper's "ε₁ᴹ ≈ 111 meters".
pub const METERS_PER_DEGREE: f64 = 111_320.0;

/// Convert a length in metres to coordinate (degree) units.
#[inline]
pub fn meters_to_deg(m: f64) -> f64 {
    m / METERS_PER_DEGREE
}

/// Convert a length in coordinate (degree) units to metres.
#[inline]
pub fn deg_to_meters(d: f64) -> f64 {
    d * METERS_PER_DEGREE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_epsilon_matches_111_meters() {
        let m = deg_to_meters(0.001);
        assert!((m - 111.32).abs() < 0.01, "got {m}");
    }

    #[test]
    fn roundtrip() {
        for v in [0.0, 1.0, 50.0, 111.32, 12345.6] {
            assert!((deg_to_meters(meters_to_deg(v)) - v).abs() < 1e-9);
        }
    }
}
