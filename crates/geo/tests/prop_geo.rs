//! Property tests for the geometry substrate.

use ppq_geo::{BBox, GridSpec, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-9);
    }

    #[test]
    fn centroid_within_bbox(pts in prop::collection::vec(arb_point(), 1..50)) {
        let c = Point::centroid(&pts).unwrap();
        let bb = BBox::covering(pts.iter().copied()).unwrap();
        // Allow floating-point slack at the boundary.
        prop_assert!(bb.inflate(1e-9).contains(&c));
    }

    #[test]
    fn bbox_union_contains_both(p in prop::collection::vec(arb_point(), 1..20),
                                q in prop::collection::vec(arb_point(), 1..20)) {
        let a = BBox::covering(p.iter().copied()).unwrap();
        let b = BBox::covering(q.iter().copied()).unwrap();
        let u = a.union(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
    }

    #[test]
    fn bbox_intersection_is_contained(p in prop::collection::vec(arb_point(), 2..20),
                                      q in prop::collection::vec(arb_point(), 2..20)) {
        let a = BBox::covering(p.iter().copied()).unwrap();
        let b = BBox::covering(q.iter().copied()).unwrap();
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_box(&i) || i.area() == 0.0);
            prop_assert!(b.contains_box(&i) || i.area() == 0.0);
        }
    }

    #[test]
    fn grid_locate_consistent_with_cell_bbox(
        p in arb_point(),
        cell in 0.1f64..50.0,
    ) {
        let area = BBox::from_extents(-1000.0, -1000.0, 1000.0, 1000.0);
        let g = GridSpec::covering(&area, cell);
        if let Some((cx, cy)) = g.locate(&p) {
            let bb = g.cell_bbox(cx, cy);
            // locate() may clamp far-boundary points, so allow an epsilon.
            prop_assert!(bb.inflate(1e-9).contains(&p),
                "point {:?} not in located cell {:?}", p, bb);
        }
    }

    #[test]
    fn grid_cell_center_roundtrips(cell in 0.1f64..10.0, cx in 0u32..40, cy in 0u32..40) {
        let g = GridSpec::with_shape(Point::new(-7.0, 3.0), cell, 40, 40);
        let c = g.cell_center(cx, cy);
        prop_assert_eq!(g.locate(&c), Some((cx, cy)));
    }

    #[test]
    fn disc_cells_include_home_cell(p in arb_point(), r in 0.0f64..20.0) {
        let area = BBox::from_extents(-1000.0, -1000.0, 1000.0, 1000.0);
        let g = GridSpec::covering(&area, 5.0);
        if let Some(home) = g.locate(&p) {
            let cells = g.cells_in_disc(&p, r);
            prop_assert!(cells.contains(&home));
            // Every reported cell really is within r of p.
            for (cx, cy) in cells {
                let bb = g.cell_bbox(cx, cy);
                let dx = (bb.min.x - p.x).max(0.0).max(p.x - bb.max.x);
                let dy = (bb.min.y - p.y).max(0.0).max(p.y - bb.max.y);
                prop_assert!((dx * dx + dy * dy).sqrt() <= r + 1e-9);
            }
        }
    }
}
