//! Ablation studies beyond the paper's tables (DESIGN.md §4):
//!
//! 1. **Cold start** — the paper's `P_j[t] = 0` rule for `t ≤ k` versus a
//!    last-value predictor for short histories.
//! 2. **CQC on/off** — accuracy vs summary-size trade (the `-basic` gap,
//!    isolated from the partitioner).
//! 3. **Local search on/off** — candidate recall with and without the
//!    `(√2/2)·g_s`-inflated scan.
//! 4. **Prediction order k** — codebook size as a function of k.

use ppq_bench::report::sig;
use ppq_bench::{porto_bench, sample_queries, Table};
use ppq_core::query::{precision_recall, QueryEngine};
use ppq_core::{ColdStart, PpqConfig, PpqTrajectory, Variant};
use ppq_traj::DatasetStats;

fn main() {
    let porto = porto_bench();
    println!("{}", DatasetStats::of(&porto).banner("Porto"));

    // 1. Cold start.
    let mut t1 = Table::new(
        "Ablation 1: cold-start rule (PPQ-A)",
        &["Rule", "Codewords", "MAE(m)", "Summary KB"],
    );
    for (label, rule) in [
        ("Zero (paper)", ColdStart::Zero),
        ("LastValue", ColdStart::LastValue),
    ] {
        let mut cfg = PpqConfig::variant(Variant::PpqA, 0.1);
        cfg.cold_start = rule;
        cfg.build_index = false;
        let built = PpqTrajectory::build(&porto, &cfg);
        t1.row(vec![
            label.into(),
            built.summary().codebook_len().to_string(),
            sig(built.summary().mae_meters(&porto)),
            format!("{:.1}", built.summary().breakdown().total() as f64 / 1024.0),
        ]);
    }
    t1.emit("ablation_coldstart");

    // 2. CQC on/off.
    let mut t2 = Table::new(
        "Ablation 2: CQC on/off (PPQ-S)",
        &["CQC", "MAE(m)", "Summary KB", "Compression ratio"],
    );
    for (label, v) in [("on", Variant::PpqS), ("off", Variant::PpqSBasic)] {
        let mut cfg = PpqConfig::variant(v, 0.1);
        cfg.build_index = false;
        let built = PpqTrajectory::build(&porto, &cfg);
        t2.row(vec![
            label.into(),
            sig(built.summary().mae_meters(&porto)),
            format!("{:.1}", built.summary().breakdown().total() as f64 / 1024.0),
            format!("{:.2}", built.summary().compression_ratio(&porto)),
        ]);
    }
    t2.emit("ablation_cqc");

    // 3. Local search on/off (candidate recall).
    let mut t3 = Table::new(
        "Ablation 3: local search on/off (PPQ-A, candidate recall)",
        &["Local search", "Mean recall", "Mean candidates"],
    );
    let cfg = PpqConfig::variant(Variant::PpqA, 0.1);
    let built = PpqTrajectory::build(&porto, &cfg);
    let engine = QueryEngine::new(built.summary(), &porto, cfg.tpi.pi.gc);
    let qs = sample_queries(&porto, 150, 0xAB);
    let (mut with_r, mut without_r, mut with_c, mut without_c) = (0.0, 0.0, 0.0, 0.0);
    for (t, p) in &qs {
        let out = engine.strq(*t, p);
        let (_, r_with) = precision_recall(&out.candidates, &out.truth);
        let (_, r_without) = precision_recall(&out.approx, &out.truth);
        with_r += r_with;
        without_r += r_without;
        with_c += out.candidates.len() as f64;
        without_c += out.approx.len() as f64;
    }
    let n = qs.len() as f64;
    t3.row(vec![
        "on".into(),
        format!("{:.3}", with_r / n),
        format!("{:.1}", with_c / n),
    ]);
    t3.row(vec![
        "off".into(),
        format!("{:.3}", without_r / n),
        format!("{:.1}", without_c / n),
    ]);
    t3.emit("ablation_localsearch");

    // 4. Prediction order.
    let mut t4 = Table::new(
        "Ablation 4: prediction order k (E-PQ)",
        &["k", "Codewords", "MAE(m)"],
    );
    for k in [1usize, 2, 3, 4, 5] {
        let mut cfg = PpqConfig::variant(Variant::EPq, 0.1);
        cfg.k = k;
        cfg.ar_window = (2 * k + 2).max(cfg.ar_window);
        cfg.build_index = false;
        let built = PpqTrajectory::build(&porto, &cfg);
        t4.row(vec![
            k.to_string(),
            built.summary().codebook_len().to_string(),
            sig(built.summary().mae_meters(&porto)),
        ]);
    }
    t4.emit("ablation_order");
}
