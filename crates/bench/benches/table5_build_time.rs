//! Table 5 — Summary building time against the spatial deviation.
//!
//! Protocol (paper §6.3.1): the deviation budget D ∈ {200..1000} m maps
//! to ε₁ᴹ = D for the non-CQC methods and to g_s = √2·D, ε₁ᴹ = 2·g_s for
//! PPQ-A / PPQ-S. Reported: seconds to build the summary (index excluded).

use ppq_bench::methods::build_for_deviation;
use ppq_bench::report::secs;
use ppq_bench::{geolife_bench, porto_bench, Table, ALL_MAIN_METHODS};
use ppq_traj::{Dataset, DatasetStats};

const DEVIATIONS_M: [f64; 5] = [200.0, 400.0, 600.0, 800.0, 1000.0];

fn evaluate(dataset: &Dataset, name: &str, table: &mut Table) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    for kind in ALL_MAIN_METHODS {
        let mut row = vec![name.to_string(), kind.name().to_string()];
        for d in DEVIATIONS_M {
            let built = build_for_deviation(kind, dataset, d);
            row.push(secs(built.build_time()));
        }
        table.row(row);
    }
}

fn main() {
    let mut table = Table::new(
        "Table 5: Running time against spatial deviation (s)",
        &["Dataset", "Method", "200m", "400m", "600m", "800m", "1000m"],
    );
    let porto = porto_bench();
    evaluate(&porto, "Porto", &mut table);
    let geolife = geolife_bench();
    evaluate(&geolife, "Geolife", &mut table);
    table.emit("table5_build_time");
}
