//! Table 6 — Number of codewords in C against the spatial deviation.
//!
//! Same sweep as Table 5, reporting the codebook size each method needed
//! to honour the deviation budget. The paper reports ×10⁴ codewords; at
//! bench scale we report raw counts (the relative ordering is the
//! reproduction target).

use ppq_bench::methods::build_for_deviation;
use ppq_bench::{geolife_bench, porto_bench, Table, ALL_MAIN_METHODS};
use ppq_traj::{Dataset, DatasetStats};

const DEVIATIONS_M: [f64; 5] = [200.0, 400.0, 600.0, 800.0, 1000.0];

fn evaluate(dataset: &Dataset, name: &str, table: &mut Table) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    for kind in ALL_MAIN_METHODS {
        let mut row = vec![name.to_string(), kind.name().to_string()];
        for d in DEVIATIONS_M {
            let built = build_for_deviation(kind, dataset, d);
            row.push(built.codewords().to_string());
        }
        table.row(row);
    }
}

fn main() {
    let mut table = Table::new(
        "Table 6: Number of codewords in C against spatial deviation",
        &["Dataset", "Method", "200m", "400m", "600m", "800m", "1000m"],
    );
    let porto = porto_bench();
    evaluate(&porto, "Porto", &mut table);
    let geolife = geolife_bench();
    evaluate(&geolife, "Geolife", &mut table);
    table.emit("table6_codewords");
}
