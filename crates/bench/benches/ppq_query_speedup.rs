//! Serial-vs-parallel (and optimized-vs-seed) throughput for the PPQ
//! *query* path, merged into `BENCH_ppq.json` at the workspace root
//! (companion of `ppq_speedup`, which covers the build path).
//!
//! Workloads over a PPQ-S summary with its TPI, each measured three ways:
//! the pre-optimization *reference* evaluator (the seed's query
//! algorithm, reproduced below from the index's exported blocks: linear
//! region scans, per-cell hash probes, a fresh decompression allocation
//! per posting, and per-query `sort + dedup`), the optimized path forced
//! serial (`rayon::with_thread_count(1, ..)`, batched through one reused
//! `QueryWorkspace`), and the optimized path at the machine's default
//! thread count:
//!
//! 1. **TPI rectangle probes** — the bare index primitive behind every
//!    STRQ: posting-interval walks + locator pruning vs the seed scan.
//! 2. **STRQ, production form** — approximate answer, local-search
//!    candidates and exact refinement, without the ground-truth scan
//!    (that scan exists only to score precision/recall in the Tables 2–4
//!    protocol; the paper's response times do not include computing
//!    ground truth either).
//! 3. **TPQ end-to-end** — online STRQ plus `l` reconstructed future
//!    positions per match (Table 3 protocol).
//!
//! Every (reference, serial, parallel) triple is checked for identical
//! results, serial/parallel batches must be bit-identical (the
//! determinism contract `strq_batch` advertises), and the full
//! with-ground-truth protocol is verified seed-vs-optimized untimed
//! before anything is measured.

use ppq_bench::report::{merge_bench_section, time_median};
use ppq_bench::sample_queries;
use ppq_core::query::{QueryEngine, StrqOutcome};
use ppq_core::{PpqConfig, PpqSummary, PpqTrajectory, Variant};
use ppq_geo::{BBox, GridSpec, Point};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::{Dataset, TrajId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The seed's query path, reconstructed over the same index contents —
/// including the seed's ID-list codec (canonical Huffman with a
/// linear-scan symbol lookup per decoded byte, fresh allocations per
/// decompression), reproduced verbatim-in-spirit like `ppq_speedup`'s
/// kernel references.
mod reference {
    use super::*;
    use std::collections::BinaryHeap;

    /// The seed's canonical Huffman: identical code assignment to
    /// today's (so compressed bits match), but the seed's decoder — a
    /// linear scan over the symbol list per decoded byte.
    pub struct SeedHuffman {
        lengths: [u8; 256],
        codes: [u32; 256],
        sorted_symbols: Vec<u8>,
    }

    impl SeedHuffman {
        pub fn from_frequencies(freq: &[u64; 256]) -> SeedHuffman {
            #[derive(PartialEq, Eq)]
            struct Node {
                weight: u64,
                id: usize,
            }
            impl Ord for Node {
                fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                    other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
                }
            }
            impl PartialOrd for Node {
                fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                    Some(self.cmp(other))
                }
            }
            let used: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
            assert!(!used.is_empty());
            let mut lengths = [0u8; 256];
            if used.len() == 1 {
                lengths[used[0]] = 1;
            } else {
                let mut heap = BinaryHeap::new();
                let mut children: Vec<Option<(usize, usize)>> = vec![None; used.len()];
                let mut weights: Vec<u64> = Vec::with_capacity(used.len() * 2);
                for (i, &s) in used.iter().enumerate() {
                    weights.push(freq[s]);
                    heap.push(Node {
                        weight: freq[s],
                        id: i,
                    });
                }
                while heap.len() > 1 {
                    let a = heap.pop().unwrap();
                    let b = heap.pop().unwrap();
                    let id = weights.len();
                    weights.push(a.weight + b.weight);
                    children.push(Some((a.id, b.id)));
                    heap.push(Node {
                        weight: a.weight + b.weight,
                        id,
                    });
                }
                let root = heap.pop().unwrap().id;
                let mut stack = vec![(root, 0u8)];
                while let Some((id, depth)) = stack.pop() {
                    match children.get(id).copied().flatten() {
                        Some((l, r)) => {
                            stack.push((l, depth + 1));
                            stack.push((r, depth + 1));
                        }
                        None => lengths[used[id]] = depth.max(1),
                    }
                }
            }
            let mut sorted_symbols: Vec<u8> =
                (0..=255u8).filter(|&s| lengths[s as usize] > 0).collect();
            sorted_symbols.sort_by_key(|&s| (lengths[s as usize], s));
            let mut codes = [0u32; 256];
            let mut code = 0u32;
            let mut prev_len = 0u8;
            for &s in &sorted_symbols {
                let len = lengths[s as usize];
                code <<= len - prev_len;
                codes[s as usize] = code;
                code += 1;
                prev_len = len;
            }
            SeedHuffman {
                lengths,
                codes,
                sorted_symbols,
            }
        }

        pub fn encode(&self, data: &[u8]) -> (Vec<u8>, usize) {
            let mut out = Vec::with_capacity(data.len() / 2 + 1);
            let mut bitpos = 0usize;
            for &b in data {
                let len = self.lengths[b as usize];
                let code = self.codes[b as usize];
                for k in (0..len).rev() {
                    let bit = (code >> k) & 1;
                    if bitpos.is_multiple_of(8) {
                        out.push(0);
                    }
                    if bit == 1 {
                        *out.last_mut().unwrap() |= 1 << (7 - (bitpos % 8));
                    }
                    bitpos += 1;
                }
            }
            (out, bitpos)
        }

        pub fn decode(&self, bits: &[u8], bit_len: usize, n: usize) -> Vec<u8> {
            let mut out = Vec::with_capacity(n);
            let mut pos = 0usize;
            while out.len() < n {
                let mut code = 0u32;
                let mut len = 0u8;
                loop {
                    assert!(pos < bit_len, "bit stream exhausted");
                    let bit = (bits[pos / 8] >> (7 - (pos % 8))) & 1;
                    pos += 1;
                    code = (code << 1) | bit as u32;
                    len += 1;
                    if let Some(sym) = self.lookup(code, len) {
                        out.push(sym);
                        break;
                    }
                    assert!(len < 32, "corrupt Huffman stream");
                }
            }
            out
        }

        fn lookup(&self, code: u32, len: u8) -> Option<u8> {
            // The seed's decode step: linear over the symbol list.
            self.sorted_symbols
                .iter()
                .find(|&&s| self.lengths[s as usize] == len && self.codes[s as usize] == code)
                .copied()
        }
    }

    fn write_varint(mut v: u32, out: &mut Vec<u8>) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
    }

    fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
        let mut v = 0u32;
        let mut shift = 0;
        loop {
            let byte = data[*pos];
            *pos += 1;
            v |= ((byte & 0x7F) as u32) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        v
    }

    /// The seed's compressed ID list: delta + varint + Huffman, with the
    /// linear-lookup decode above.
    pub struct SeedIdList {
        bits: Vec<u8>,
        bit_len: usize,
        n_bytes: usize,
        len: usize,
        huffman: SeedHuffman,
    }

    impl SeedIdList {
        pub fn compress(ids: &[u32]) -> SeedIdList {
            let mut sorted: Vec<u32> = ids.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let mut bytes = Vec::with_capacity(sorted.len() + 4);
            let mut prev = 0u32;
            for (i, &id) in sorted.iter().enumerate() {
                let delta = if i == 0 { id } else { id - prev };
                write_varint(delta, &mut bytes);
                prev = id;
            }
            if bytes.is_empty() {
                bytes.push(0);
            }
            let mut freq = [0u64; 256];
            for &b in &bytes {
                freq[b as usize] += 1;
            }
            let huffman = SeedHuffman::from_frequencies(&freq);
            let (bits, bit_len) = huffman.encode(&bytes);
            SeedIdList {
                bits,
                bit_len,
                n_bytes: bytes.len(),
                len: sorted.len(),
                huffman,
            }
        }

        pub fn decompress(&self) -> Vec<u32> {
            if self.len == 0 {
                return Vec::new();
            }
            let bytes = self.huffman.decode(&self.bits, self.bit_len, self.n_bytes);
            let mut out = Vec::with_capacity(self.len);
            let mut pos = 0usize;
            let mut acc = 0u32;
            for i in 0..self.len {
                let delta = read_varint(&bytes, &mut pos);
                acc = if i == 0 { delta } else { acc + delta };
                out.push(acc);
            }
            out
        }
    }

    struct SeedRegion {
        bbox: BBox,
        grid: GridSpec,
        /// (flat cell, timestep) → compressed IDs — the seed's layout.
        cells: HashMap<(u32, u32), SeedIdList>,
    }

    struct SeedPi {
        regions: Vec<SeedRegion>,
    }

    impl SeedPi {
        /// The seed's rectangle scan: every region, every covered cell, a
        /// hash probe and a fresh decompression per hit, one sort+dedup
        /// per query.
        fn query_rect(&self, t: u32, rect: &BBox) -> Vec<u32> {
            let mut out = Vec::new();
            for region in &self.regions {
                if !region.bbox.intersects(rect) {
                    continue;
                }
                for (cx, cy) in region.grid.cells_in_rect(rect) {
                    if let Some(list) = region.cells.get(&(region.grid.flat(cx, cy) as u32, t)) {
                        out.extend(list.decompress());
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        }
    }

    pub struct SeedTpi {
        periods: Vec<(u32, u32, SeedPi)>,
    }

    impl SeedTpi {
        /// Rebuild the seed representation from the optimized TPI's
        /// exported blocks (same postings, seed layout).
        pub fn of(tpi: &ppq_tpi::Tpi) -> SeedTpi {
            let periods = tpi
                .periods()
                .iter()
                .map(|period| {
                    let mut regions: Vec<SeedRegion> = period
                        .pi
                        .regions()
                        .iter()
                        .map(|r| SeedRegion {
                            bbox: *r.bbox(),
                            grid: r.grid().clone(),
                            cells: HashMap::new(),
                        })
                        .collect();
                    for (ri, t, cell, ids) in period.pi.export_blocks() {
                        regions[ri as usize]
                            .cells
                            .insert((cell, t), SeedIdList::compress(&ids));
                    }
                    (period.t_start, period.t_end, SeedPi { regions })
                })
                .collect();
            SeedTpi { periods }
        }

        pub fn query_rect(&self, t: u32, rect: &BBox) -> Vec<u32> {
            let idx = self.periods.partition_point(|&(_, t_end, _)| t_end < t);
            match self.periods.get(idx) {
                Some(&(t_start, t_end, ref pi)) if t_start <= t && t <= t_end => {
                    pi.query_rect(t, rect)
                }
                _ => Vec::new(),
            }
        }
    }

    /// The seed's `QueryEngine::strq`, per-query allocations included.
    pub struct SeedEngine<'a> {
        pub tpi: &'a SeedTpi,
        pub summary: &'a PpqSummary,
        pub dataset: &'a Dataset,
        pub grid: GridSpec,
    }

    impl SeedEngine<'_> {
        fn recon_in_rect(&self, t: u32, rect: &BBox) -> Vec<TrajId> {
            let raw = self.tpi.query_rect(t, rect);
            let mut out: Vec<TrajId> = raw
                .into_iter()
                .filter(|id| {
                    self.summary
                        .reconstruct(*id, t)
                        .map(|r| rect.contains(&r))
                        .unwrap_or(false)
                })
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        }

        /// Full Tables 2–4 protocol: the online answers plus the
        /// ground-truth scan (used for the untimed verification pass).
        pub fn strq(&self, t: u32, p: &Point) -> StrqOutcome {
            let mut outcome = self.strq_online(t, p);
            if let Some((cx, cy)) = self.grid.locate(p) {
                let cell = self.grid.cell_bbox(cx, cy);
                let mut truth: Vec<TrajId> = self
                    .dataset
                    .points_at(t)
                    .iter()
                    .filter(|(_, q)| cell.contains(q))
                    .map(|(id, _)| *id)
                    .collect();
                truth.sort_unstable();
                outcome.truth = truth;
            }
            outcome
        }

        /// The production query: approx + candidates + exact, no
        /// ground-truth scoring scan (mirrors `strq_online_with`).
        pub fn strq_online(&self, t: u32, p: &Point) -> StrqOutcome {
            let cell = self
                .grid
                .locate(p)
                .map(|(cx, cy)| self.grid.cell_bbox(cx, cy));
            let Some(cell) = cell else {
                return StrqOutcome {
                    truth: Vec::new(),
                    approx: Vec::new(),
                    candidates: Vec::new(),
                    exact: Vec::new(),
                    visited: 0,
                };
            };
            let approx = self.recon_in_rect(t, &cell);
            let radius = self.summary.config().guaranteed_deviation();
            let candidates = self.recon_in_rect(t, &cell.inflate(radius));
            let visited = candidates.len();
            let exact: Vec<TrajId> = candidates
                .iter()
                .copied()
                .filter(|id| {
                    self.dataset
                        .trajectory(*id)
                        .at(t)
                        .map(|q| cell.contains(&q))
                        .unwrap_or(false)
                })
                .collect();
            StrqOutcome {
                truth: Vec::new(),
                approx,
                candidates,
                exact,
                visited,
            }
        }

        pub fn tpq(&self, t: u32, p: &Point, l: u32) -> Vec<(TrajId, Vec<(u32, Point)>)> {
            self.strq_online(t, p)
                .exact
                .iter()
                .map(|&id| {
                    let sub: Vec<(u32, Point)> = (t..=t.saturating_add(l))
                        .filter_map(|tt| self.summary.reconstruct(id, tt).map(|r| (tt, r)))
                        .collect();
                    (id, sub)
                })
                .collect()
        }
    }
}

/// Median-of-`runs` wall-clock seconds for `f` (last run's result
/// returned for output checks).
struct Entry {
    name: String,
    reference_s: f64,
    serial_s: f64,
    parallel_s: f64,
    identical: bool,
    detail: String,
}

fn main() {
    let runs: usize = std::env::var("PPQ_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads_default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // A wide dataset so per-timestep slices and TPI periods are well
    // populated, summarized with the paper's full PPQ-S pipeline.
    // `PPQ_SCALE` shrinks the dataset and query counts proportionally for
    // CI smoke runs.
    let scale = ppq_bench::scale();
    let data = porto_like(&PortoConfig {
        trajectories: ((4000.0 * scale).round() as usize).max(50),
        mean_len: 50,
        min_len: 30,
        start_spread: 12,
        seed: 0x9EED,
    });
    eprintln!("query dataset: {} points", data.num_points());
    let built = PpqTrajectory::build(&data, &PpqConfig::variant(Variant::PpqS, 0.1));
    let summary = built.summary();
    let tpi = summary.tpi().expect("PPQ-S builds a TPI");
    let gc = built.config().tpi.pi.gc;
    eprintln!(
        "TPI: {} periods, {} insertions",
        tpi.stats().periods,
        tpi.stats().insertions
    );

    let engine = QueryEngine::new(summary, &data, gc);
    let seed_tpi = reference::SeedTpi::of(tpi);
    let seed_engine = reference::SeedEngine {
        tpi: &seed_tpi,
        summary,
        dataset: &data,
        grid: engine.grid().clone(),
    };

    let n_queries = ((10_000.0 * scale).round() as usize).max(200);
    let queries = sample_queries(&data, n_queries, 42);
    let mut entries: Vec<Entry> = Vec::new();

    // ---- Workload 1: bare TPI rectangle probes. ------------------------
    let radius = summary.config().guaranteed_deviation();
    let rects: Vec<(u32, BBox)> = queries
        .iter()
        .map(|&(t, p)| {
            let cell = engine.cell_bbox(&p).expect("queries are on data points");
            (t, cell.inflate(radius))
        })
        .collect();
    let (ref_s, ref_out) = time_median(runs, || {
        rects
            .iter()
            .map(|(t, rect)| seed_tpi.query_rect(*t, rect))
            .collect::<Vec<_>>()
    });
    let run_rect = || {
        let mut scratch = ppq_sindex::QueryScratch::new();
        rects
            .iter()
            .map(|(t, rect)| {
                let mut out = Vec::new();
                tpi.query_rect_into(*t, rect, &mut scratch, &mut out);
                out
            })
            .collect::<Vec<_>>()
    };
    let (ser_s, ser_out) = time_median(runs, || rayon::with_thread_count(1, run_rect));
    let (par_s, par_out) = time_median(runs, run_rect);
    let hits: usize = ser_out.iter().map(Vec::len).sum();
    entries.push(Entry {
        name: format!("tpi_rect_probe_{n_queries}q"),
        reference_s: ref_s,
        serial_s: ser_s,
        parallel_s: par_s,
        identical: ref_out == ser_out && ser_out == par_out,
        detail: format!("{hits} ids proposed over {n_queries} local-search rects"),
    });

    // ---- Untimed: the full Tables 2–4 protocol (with ground truth) ----
    // must agree between the seed and optimized engines before anything
    // is measured.
    let protocol_n = queries.len().min(1000);
    let protocol_seed: Vec<StrqOutcome> = queries[..protocol_n]
        .iter()
        .map(|(t, p)| seed_engine.strq(*t, p))
        .collect();
    let protocol_opt = engine.strq_batch(&queries[..protocol_n]);
    assert_eq!(
        protocol_seed, protocol_opt,
        "full STRQ protocol diverged between seed and optimized engines"
    );
    let nonempty = protocol_opt.iter().filter(|o| !o.truth.is_empty()).count();

    // ---- Workload 2: STRQ, production form (no ground-truth scan). -----
    let (sref_s, sref_out) = time_median(runs, || {
        queries
            .iter()
            .map(|(t, p)| seed_engine.strq_online(*t, p))
            .collect::<Vec<_>>()
    });
    let (sser_s, sser_out) = time_median(runs, || {
        rayon::with_thread_count(1, || engine.strq_online_batch(&queries))
    });
    let (spar_s, spar_out) = time_median(runs, || engine.strq_online_batch(&queries));
    let visited: usize = sser_out.iter().map(|o| o.visited).sum();
    entries.push(Entry {
        name: format!("strq_online_{n_queries}q"),
        reference_s: sref_s,
        serial_s: sser_s,
        parallel_s: spar_s,
        identical: sref_out == sser_out && sser_out == spar_out,
        detail: format!(
            "{nonempty}/{protocol_n} protocol queries non-empty truth, {:.2} candidates/query",
            visited as f64 / n_queries as f64
        ),
    });

    // ---- Workload 3: TPQ end-to-end. -----------------------------------
    let horizon = 20u32;
    let tpq_queries = &queries[..queries.len().min(2000)];
    let (tref_s, tref_out) = time_median(runs, || {
        tpq_queries
            .iter()
            .map(|(t, p)| seed_engine.tpq(*t, p, horizon))
            .collect::<Vec<_>>()
    });
    let (tser_s, tser_out) = time_median(runs, || {
        rayon::with_thread_count(1, || engine.tpq_batch(tpq_queries, horizon))
    });
    let (tpar_s, tpar_out) = time_median(runs, || engine.tpq_batch(tpq_queries, horizon));
    let positions: usize = tser_out
        .iter()
        .flat_map(|q| q.iter())
        .map(|(_, sub)| sub.len())
        .sum();
    entries.push(Entry {
        name: format!("tpq_{}q_l{horizon}", tpq_queries.len()),
        reference_s: tref_s,
        serial_s: tser_s,
        parallel_s: tpar_s,
        identical: tref_out == tser_out && tser_out == tpar_out,
        detail: format!("{positions} reconstructed positions returned"),
    });

    // ---- Report. -------------------------------------------------------
    println!("\n=== PPQ query-path speedup (runs={runs}, cores={threads_default}) ===");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>9} {:>9}  identical",
        "workload", "reference(s)", "serial(s)", "parallel(s)", "ref/ser", "ser/par"
    );
    for e in &entries {
        println!(
            "{:<26} {:>12.4} {:>12.4} {:>12.4} {:>9.2} {:>9.2} {:>8}   {}",
            e.name,
            e.reference_s,
            e.serial_s,
            e.parallel_s,
            e.reference_s / e.serial_s,
            e.serial_s / e.parallel_s,
            e.identical,
            e.detail
        );
        assert!(
            e.identical,
            "{}: reference/serial/parallel results diverged",
            e.name
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {threads_default}, \"runs\": {runs}, \"profile\": \"release\"}},"
    );
    let _ = writeln!(
        json,
        "    \"note\": \"reference = seed query evaluator (linear region scans, per-cell hash probes, fresh decompression per posting including the seed's linear-scan Huffman symbol lookup, per-query sort+dedup), rebuilt from the same index contents; serial = optimized path (posting intervals, locator grid, reusable workspaces, single-probe STRQ, slice-copy TPQ) with RAYON_NUM_THREADS=1; parallel = same at default threads. All three verified to return identical results, and the full with-ground-truth Tables 2-4 protocol is checked seed-vs-optimized untimed. STRQ/TPQ timings cover the production query work (no ground-truth scoring scan). On a single-core runner serial and parallel run the same code; differences between them are timer noise and bound the measurement error.\","
    );
    let _ = writeln!(json, "    \"workloads\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        let _ = writeln!(json, "        \"reference_seconds\": {:.6},", e.reference_s);
        let _ = writeln!(
            json,
            "        \"speedup_vs_reference\": {:.3},",
            e.reference_s / e.serial_s.min(e.parallel_s)
        );
        let _ = writeln!(json, "        \"serial_seconds\": {:.6},", e.serial_s);
        let _ = writeln!(json, "        \"parallel_seconds\": {:.6},", e.parallel_s);
        let _ = writeln!(
            json,
            "        \"parallel_speedup\": {:.3},",
            e.serial_s / e.parallel_s
        );
        let _ = writeln!(json, "        \"results_identical\": {},", e.identical);
        let _ = writeln!(json, "        \"detail\": \"{}\"", e.detail);
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = write!(json, "  }}");

    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = merge_bench_section(&existing, "query_path", &json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (query_path section)");
}
