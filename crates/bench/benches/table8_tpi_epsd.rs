//! Table 8 — Statistics of TPI on different ε_d.
//!
//! The ADR threshold ε_d sweeps {0.2, 0.4, 0.6, 0.8}; a higher ε_d lets a
//! PI be reused for more timesteps (fewer periods, more insertions).

use ppq_bench::report::secs;
use ppq_bench::{geolife_bench, porto_bench, Table};
use ppq_tpi::{Tpi, TpiConfig};
use ppq_traj::{Dataset, DatasetStats};
use std::time::Instant;

const EPS_D: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

fn evaluate(dataset: &Dataset, name: &str, table: &mut Table) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    for eps_d in EPS_D {
        let cfg = TpiConfig {
            eps_d,
            ..TpiConfig::default()
        };
        let t0 = Instant::now();
        let tpi = Tpi::build(dataset, &cfg);
        let elapsed = t0.elapsed();
        table.row(vec![
            name.into(),
            format!("{eps_d}"),
            format!("{:.2}", tpi.size_bytes() as f64 / (1 << 20) as f64),
            secs(elapsed),
            tpi.stats().periods.to_string(),
            tpi.stats().insertions.to_string(),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "Table 8: Statistics of TPI on different eps_d",
        &[
            "Dataset",
            "eps_d",
            "Index Size(MB)",
            "Time Cost(s)",
            "No.Periods",
            "No.Insertions",
        ],
    );
    let porto = porto_bench();
    evaluate(&porto, "Porto", &mut table);
    let geolife = geolife_bench();
    evaluate(&geolife, "Geolife", &mut table);
    table.emit("table8_tpi_epsd");
}
