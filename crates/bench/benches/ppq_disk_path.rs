//! Disk-resident query path: the persistent repository (`ppq-repo`)
//! measured end to end and merged into `BENCH_ppq.json` as the
//! `disk_path` section (companion of `build_path` / `query_path` /
//! `shard_path`).
//!
//! What it records:
//!
//! 1. **Bit-identity** — the `DiskQueryEngine` on a reopened repository
//!    must answer STRQ (all levels) and TPQ (payload bits) exactly like
//!    the in-memory `QueryEngine` on the same summary, and the sharded
//!    repository like the `ShardedQueryEngine`. Checked before anything
//!    is timed; recorded as the `bit_identical` flag CI gates on.
//! 2. **Directory vs scan** — the same single-cell STRQ workload served
//!    by the block directory (one directed page-in per block) and by
//!    `DiskTpi` (scan the period's page run until the block parses
//!    past). The directory must do *strictly fewer* page-ins in total.
//! 3. **Pool sweep** — cold and warm batch latency plus page I/Os per
//!    query at several shared-buffer-pool sizes (Table 9's protocol: a
//!    buffer hit is not an I/O).
//!
//! `PPQ_SCALE` shrinks the dataset/workload for CI smoke runs;
//! `PPQ_BENCH_RUNS` overrides the median-of-3 timing runs.

use ppq_bench::report::{merge_bench_section, time_median};
use ppq_bench::{sample_queries, scale};
use ppq_core::query::{QueryEngine, ShardedQueryEngine, StrqOutcome};
use ppq_core::shard::ShardedSummary;
use ppq_core::{PpqConfig, PpqTrajectory, Variant};
use ppq_geo::Point;
use ppq_repo::{DiskQueryEngine, ReadMode, Repo, RepoWriter};
use ppq_storage::{IoStats, PoolPolicy};
use ppq_tpi::DiskTpi;
use ppq_traj::synth::{porto_like, PortoConfig};
use std::fmt::Write as _;

/// Table 9 at full size uses 1 MiB pages over ~GB datasets; the scaled
/// benchmark keeps the pages-per-structure ratio in that regime with
/// 4 KiB pages (same choice as `table9_disk`).
const PAGE_SIZE_BENCH: usize = 4 << 10;
const TPQ_HORIZON: u32 = 10;
const POOL_SWEEP: [usize; 4] = [0, 8, 32, 128];
const SHARDS: usize = 4;

fn points_bit_eq(a: &Point, b: &Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

fn outcomes_bit_identical(a: &[StrqOutcome], b: &[StrqOutcome]) -> bool {
    a == b
}

#[allow(clippy::type_complexity)]
fn tpq_bit_identical(
    a: &[Vec<(u32, Vec<(u32, Point)>)>],
    b: &[Vec<(u32, Vec<(u32, Point)>)>],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(qa, qb)| {
            qa.len() == qb.len()
                && qa.iter().zip(qb).all(|((ia, sa), (ib, sb))| {
                    ia == ib
                        && sa.len() == sb.len()
                        && sa
                            .iter()
                            .zip(sb)
                            .all(|((ta, pa), (tb, pb))| ta == tb && points_bit_eq(pa, pb))
                })
        })
}

struct PoolEntry {
    pool_pages: usize,
    cold_seconds: f64,
    warm_seconds: f64,
    cold_reads: u64,
    warm_reads: u64,
    warm_hits: u64,
}

struct CurveEntry {
    pool_pages: usize,
    policy: &'static str,
    steady_reads: u64,
    steady_hits: u64,
}

fn main() {
    let runs: usize = std::env::var("PPQ_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let s = scale();

    let data = porto_like(&PortoConfig {
        trajectories: ((1500.0 * s).round() as usize).max(50),
        mean_len: 45,
        min_len: 30,
        start_spread: 15,
        seed: 0xD15C,
    });
    let n_points = data.num_points();
    let cfg = PpqConfig::variant(Variant::PpqS, 0.1);
    let gc = cfg.tpi.pi.gc;
    let n_queries = ((3000.0 * s).round() as usize).max(200);
    let queries = sample_queries(&data, n_queries, 97);
    eprintln!(
        "disk-path dataset: {n_points} points, {} trajectories, {n_queries} queries",
        data.num_trajectories()
    );

    let summary = PpqTrajectory::build(&data, &cfg).into_summary();
    let work_dir = std::env::temp_dir().join(format!("ppq-disk-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);
    let repo_dir = work_dir.join("repo1");
    let sharded_dir = work_dir.join("repoS");

    // ---- Write + reopen (the persistence round trip itself is timed). --
    let writer = RepoWriter::with_page_size(&repo_dir, PAGE_SIZE_BENCH);
    let (write_seconds, _) = time_median(runs, || writer.write(&summary).unwrap());
    let (open_seconds, _) = time_median(runs, || Repo::open(&repo_dir, 128).unwrap());
    let repo = Repo::open(&repo_dir, 128).unwrap();

    // ---- Bit-identity: disk vs in-memory, unsharded. -------------------
    let mem_engine = QueryEngine::new(&summary, &data, gc);
    let disk_engine = DiskQueryEngine::new(&repo, &data, gc);
    let mut bit_identical = outcomes_bit_identical(
        &disk_engine.strq_batch(&queries).unwrap(),
        &mem_engine.strq_batch(&queries),
    );
    bit_identical &= tpq_bit_identical(
        &disk_engine.tpq_batch(&queries, TPQ_HORIZON).unwrap(),
        &mem_engine.tpq_batch(&queries, TPQ_HORIZON),
    );

    // ---- Bit-identity: sharded repository vs sharded engine. -----------
    let sharded = ShardedSummary::build(&data, &cfg, SHARDS);
    RepoWriter::with_page_size(&sharded_dir, PAGE_SIZE_BENCH)
        .write_sharded(&sharded)
        .unwrap();
    let sharded_repo = Repo::open(&sharded_dir, 128).unwrap();
    let sharded_mem = ShardedQueryEngine::new(&sharded, &data, gc);
    let sharded_disk = DiskQueryEngine::new(&sharded_repo, &data, gc);
    bit_identical &= outcomes_bit_identical(
        &sharded_disk.strq_batch(&queries).unwrap(),
        &sharded_mem.strq_batch(&queries),
    );
    bit_identical &= tpq_bit_identical(
        &sharded_disk.tpq_batch(&queries, TPQ_HORIZON).unwrap(),
        &sharded_mem.tpq_batch(&queries, TPQ_HORIZON),
    );
    assert!(
        bit_identical,
        "disk engines must answer bit-identically to the in-memory engines"
    );

    // ---- Directory vs DiskTpi scan, same single-cell workload. ---------
    let scan_repo = Repo::open(&repo_dir, 0).unwrap(); // pool off on both sides
    let disk_tpi = DiskTpi::create_with(
        summary.tpi().unwrap().clone(),
        &work_dir.join("disktpi.pages"),
        0,
        PAGE_SIZE_BENCH,
    )
    .unwrap();
    let mut directory_reads = 0u64;
    let mut scan_reads = 0u64;
    let (directory_seconds, _) = time_median(runs, || {
        directory_reads = 0;
        for (t, p) in &queries {
            let stats = IoStats::default();
            let _ = scan_repo.query_cell(*t, p, &stats).unwrap();
            directory_reads += stats.reads();
        }
    });
    let (scan_seconds, _) = time_median(runs, || {
        scan_reads = 0;
        for (t, p) in &queries {
            disk_tpi.io_stats().reset();
            let _ = disk_tpi.query(*t, p).unwrap();
            scan_reads += disk_tpi.io_stats().reads();
        }
    });
    assert!(
        directory_reads < scan_reads,
        "block directory must page in strictly fewer pages: {directory_reads} vs {scan_reads}"
    );

    // ---- Pool-size sweep: cold/warm STRQ batches with I/O counts. ------
    let mut pool_entries = Vec::new();
    for pool_pages in POOL_SWEEP {
        let repo = Repo::open(&repo_dir, pool_pages).unwrap();
        let engine = DiskQueryEngine::new(&repo, &data, gc);
        // Cold: every run starts from an empty pool.
        let (cold_seconds, _) = time_median(runs, || {
            repo.clear_cache();
            engine.strq_online_batch(&queries).unwrap()
        });
        repo.io_stats().reset();
        repo.clear_cache();
        let _ = engine.strq_online_batch(&queries).unwrap();
        let cold_reads = repo.io_stats().reads();
        // Warm: pool pre-populated by the cold pass above.
        let (warm_seconds, _) = time_median(runs, || engine.strq_online_batch(&queries).unwrap());
        repo.io_stats().reset();
        let _ = engine.strq_online_batch(&queries).unwrap();
        let warm_reads = repo.io_stats().reads();
        let warm_hits = repo.io_stats().buffer_hits();
        pool_entries.push(PoolEntry {
            pool_pages,
            cold_seconds,
            warm_seconds,
            cold_reads,
            warm_reads,
            warm_hits,
        });
    }

    // ---- Batched vs sequential read path, same store and workload. -----
    // The batched engine plans a query's whole page set first and fetches
    // it through one pinned pool batch; the sequential engine is the old
    // one-read-per-block walk. Answers must match bit for bit, and the
    // plan's dedup means the batched path never pages in *more*.
    let mode_repo = Repo::open(&repo_dir, 128).unwrap();
    let mut mode_engine = DiskQueryEngine::new(&mode_repo, &data, gc);
    mode_engine.set_read_mode(ReadMode::Sequential);
    mode_repo.clear_cache();
    mode_repo.io_stats().reset();
    let strq_sequential = mode_engine.strq_online_batch(&queries).unwrap();
    let sequential_reads = mode_repo.io_stats().reads();
    let (sequential_seconds, _) = time_median(runs, || {
        mode_repo.clear_cache();
        mode_engine.strq_online_batch(&queries).unwrap()
    });
    mode_engine.set_read_mode(ReadMode::Batched);
    mode_repo.clear_cache();
    mode_repo.io_stats().reset();
    let strq_batched = mode_engine.strq_online_batch(&queries).unwrap();
    let batched_reads = mode_repo.io_stats().reads();
    let (batched_seconds, _) = time_median(runs, || {
        mode_repo.clear_cache();
        mode_engine.strq_online_batch(&queries).unwrap()
    });
    let batched_bit_identical = outcomes_bit_identical(&strq_batched, &strq_sequential);
    let fewer_or_equal_ios = batched_reads <= sequential_reads;
    assert!(
        batched_bit_identical,
        "batched and sequential read modes must answer identically"
    );
    assert!(
        fewer_or_equal_ios,
        "the batched plan must never page in more: batched {batched_reads} vs sequential {sequential_reads}"
    );

    // ---- Residency curves: LRU vs segmented LRU on a skewed schedule. --
    // 80% of accesses land on the hottest 10% of the query set (Zipf-like
    // hotspot), the shape that separates scan-resistant admission from
    // plain recency. Each point warms to steady state, then measures one
    // full schedule pass.
    let hot = (n_queries / 10).max(1);
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut schedule: Vec<(u32, Point)> = Vec::with_capacity(2 * n_queries);
    for _ in 0..2 * n_queries {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let q = if x % 10 < 8 {
            (x >> 8) as usize % hot
        } else {
            (x >> 8) as usize % n_queries
        };
        schedule.push(queries[q]);
    }
    let mut curve_entries = Vec::new();
    for pool_pages in POOL_SWEEP {
        for (policy, name) in [
            (PoolPolicy::Lru, "lru"),
            (PoolPolicy::default_slru(), "slru"),
        ] {
            let repo = Repo::open_with_policy(&repo_dir, pool_pages, policy).unwrap();
            let engine = DiskQueryEngine::new(&repo, &data, gc);
            let _ = engine.strq_online_batch(&schedule).unwrap();
            repo.io_stats().reset();
            let _ = engine.strq_online_batch(&schedule).unwrap();
            curve_entries.push(CurveEntry {
                pool_pages,
                policy: name,
                steady_reads: repo.io_stats().reads(),
                steady_hits: repo.io_stats().buffer_hits(),
            });
        }
    }

    // ---- Report. -------------------------------------------------------
    println!(
        "\n=== PPQ disk path (runs={runs}, cores={cores}, {n_points} points, {n_queries} queries, {} B pages) ===",
        PAGE_SIZE_BENCH
    );
    println!(
        "repository: {} pages, {} blocks, write {:.4}s, open {:.4}s, bit-identical: {bit_identical}",
        repo.total_pages(),
        repo.shard(0).directory().num_blocks(),
        write_seconds,
        open_seconds
    );
    println!(
        "single-cell workload: directory {directory_reads} page-ins ({directory_seconds:.4}s) vs DiskTpi scan {scan_reads} ({scan_seconds:.4}s)"
    );
    println!(
        "{:>10} {:>12} {:>12} {:>11} {:>11} {:>10}",
        "pool", "cold(s)", "warm(s)", "cold-reads", "warm-reads", "warm-hits"
    );
    for e in &pool_entries {
        println!(
            "{:>10} {:>12.4} {:>12.4} {:>11} {:>11} {:>10}",
            e.pool_pages, e.cold_seconds, e.warm_seconds, e.cold_reads, e.warm_reads, e.warm_hits
        );
    }
    println!(
        "batched read path ({}): cold {batched_seconds:.4}s / {batched_reads} page-ins vs sequential {sequential_seconds:.4}s / {sequential_reads} (bit-identical: {batched_bit_identical})",
        mode_repo.pool().backend_name()
    );
    println!(
        "{:>10} {:>8} {:>13} {:>12} {:>9}",
        "pool", "policy", "steady-reads", "steady-hits", "hit-rate"
    );
    for e in &curve_entries {
        let total = e.steady_reads + e.steady_hits;
        println!(
            "{:>10} {:>8} {:>13} {:>12} {:>9.4}",
            e.pool_pages,
            e.policy,
            e.steady_reads,
            e.steady_hits,
            if total == 0 {
                0.0
            } else {
                e.steady_hits as f64 / total as f64
            }
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {cores}, \"runs\": {runs}, \"profile\": \"release\", \"points\": {n_points}, \"queries\": {n_queries}, \"page_size\": {PAGE_SIZE_BENCH}}},"
    );
    let _ = writeln!(
        json,
        "    \"note\": \"ppq-repo persistence round trip: RepoWriter lays the summary out as manifest + summary/dir/TPI-page segments, Repo::open validates checksums and serves queries through DiskQueryEngine over a shared LRU buffer pool. bit_identical asserts STRQ outcomes and TPQ payload bits match the in-memory QueryEngine (1 shard) and ShardedQueryEngine ({SHARDS} shards) on the same summaries. The scan comparison runs the same single-cell workload against the sorted block directory (directed page-ins) and DiskTpi (period page-run scan), both with the pool disabled; fewer_ios_than_scan must stay true. The pool sweep reports cold (cleared pool) and warm batch latency with Table 9 I/O accounting (a buffer hit is not an I/O). batched_read compares the plan-then-fetch read path (page set planned per query, misses dispatched to the I/O backend as one pinned batch) against the sequential one-read-per-block walk on a cold pool: bit_identical and fewer_or_equal_ios are both CI-gated. residency_curves measures steady-state page-ins and hit rate for plain LRU vs segmented LRU at each pool size on a hotspot schedule (80% of accesses over the hottest 10% of queries).\","
    );
    let _ = writeln!(json, "    \"bit_identical\": {bit_identical},");
    let _ = writeln!(json, "    \"shard_counts_checked\": [1, {SHARDS}],");
    let _ = writeln!(json, "    \"write_seconds\": {write_seconds:.6},");
    let _ = writeln!(json, "    \"open_seconds\": {open_seconds:.6},");
    let _ = writeln!(json, "    \"repo_pages\": {},", repo.total_pages());
    let _ = writeln!(
        json,
        "    \"directory_blocks\": {},",
        repo.shard(0).directory().num_blocks()
    );
    let _ = writeln!(
        json,
        "    \"directory_resident_bytes\": {},",
        repo.shard(0).directory().size_bytes()
    );
    let _ = writeln!(json, "    \"scan_comparison\": {{");
    let _ = writeln!(json, "      \"directory_page_ins\": {directory_reads},");
    let _ = writeln!(json, "      \"scan_page_ins\": {scan_reads},");
    let _ = writeln!(json, "      \"directory_seconds\": {directory_seconds:.6},");
    let _ = writeln!(json, "      \"scan_seconds\": {scan_seconds:.6},");
    let _ = writeln!(
        json,
        "      \"fewer_ios_than_scan\": {}",
        directory_reads < scan_reads
    );
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"batched_read\": {{");
    let _ = writeln!(
        json,
        "      \"backend\": \"{}\",",
        mode_repo.pool().backend_name()
    );
    let _ = writeln!(json, "      \"batched_seconds\": {batched_seconds:.6},");
    let _ = writeln!(
        json,
        "      \"sequential_seconds\": {sequential_seconds:.6},"
    );
    let _ = writeln!(json, "      \"batched_page_ins\": {batched_reads},");
    let _ = writeln!(json, "      \"sequential_page_ins\": {sequential_reads},");
    let _ = writeln!(json, "      \"bit_identical\": {batched_bit_identical},");
    let _ = writeln!(json, "      \"fewer_or_equal_ios\": {fewer_or_equal_ios}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"residency_curves\": [");
    for (i, e) in curve_entries.iter().enumerate() {
        let total = e.steady_reads + e.steady_hits;
        let hit_rate = if total == 0 {
            0.0
        } else {
            e.steady_hits as f64 / total as f64
        };
        let _ = writeln!(
            json,
            "      {{\"pool_pages\": {}, \"policy\": \"{}\", \"steady_reads\": {}, \"steady_hits\": {}, \"hit_rate\": {:.4}}}{}",
            e.pool_pages,
            e.policy,
            e.steady_reads,
            e.steady_hits,
            hit_rate,
            if i + 1 < curve_entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"pool_sweep\": [");
    for (i, e) in pool_entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"pool_pages\": {},", e.pool_pages);
        let _ = writeln!(json, "        \"cold_seconds\": {:.6},", e.cold_seconds);
        let _ = writeln!(json, "        \"warm_seconds\": {:.6},", e.warm_seconds);
        let _ = writeln!(json, "        \"cold_reads\": {},", e.cold_reads);
        let _ = writeln!(
            json,
            "        \"cold_reads_per_query\": {:.4},",
            e.cold_reads as f64 / n_queries as f64
        );
        let _ = writeln!(json, "        \"warm_reads\": {},", e.warm_reads);
        let _ = writeln!(json, "        \"warm_hits\": {}", e.warm_hits);
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < pool_entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = write!(json, "  }}");

    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = merge_bench_section(&existing, "disk_path", &json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (disk_path section)");

    let _ = std::fs::remove_dir_all(&work_dir);
}
