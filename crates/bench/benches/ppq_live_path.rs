//! Live-ingest path of the crash-safe repository (`ppq-live`), measured
//! end to end and merged into `BENCH_ppq.json` as the `live_path`
//! section (companion of `append_path`).
//!
//! What it records:
//!
//! 1. **Ingest throughput** — the full stream pushed slice by slice
//!    through [`LiveRepo::push_slice`]: every slice WAL-logged
//!    (group-committed fsyncs) and periodically folded into delta
//!    generations with auto-compaction enabled. Slices/s and points/s,
//!    WAL overhead included.
//! 2. **Recovery time** — the process "dies" with a folded chain, a
//!    checkpoint, and an unfolded WAL tail; [`LiveRepo::recover`] is
//!    timed rebuilding the pipeline from checkpoint + tail.
//! 3. **WAL replay throughput** — [`Wal::open_replay`] alone over the
//!    same tail: records and MB per second of raw log decode.
//! 4. **Bit-identity** — the recovered pipeline must match an
//!    uninterrupted in-memory run bit for bit (per-shard summary
//!    serializations), and after a final fold the disk chain must answer
//!    STRQ (all levels) and TPQ (payload bits) exactly like the
//!    in-memory engine over the uninterrupted stream. Recorded as the
//!    `recovery_bit_identical` flag CI gates on.
//!
//! `PPQ_SCALE` shrinks the dataset/workload for CI smoke runs.

use ppq_bench::report::merge_bench_section;
use ppq_bench::{sample_queries, scale};
use ppq_core::query::ShardedQueryEngine;
use ppq_core::shard::ShardedPpqStream;
use ppq_core::summary_io;
use ppq_core::{PpqConfig, Variant};
use ppq_geo::Point;
use ppq_live::{LiveConfig, LiveRepo, Wal, WAL_NAME};
use ppq_repo::{DiskQueryEngine, Repo};
use ppq_traj::synth::{porto_like, PortoConfig};
use std::fmt::Write as _;
use std::time::Instant;

const PAGE_SIZE_BENCH: usize = 4 << 10;
const TPQ_HORIZON: u32 = 10;
const SHARDS: usize = 2;
const POOL_PAGES: usize = 128;
const GROUP_COMMIT: usize = 8;
const FOLD_EVERY: u64 = 16;

fn points_bit_eq(a: &Point, b: &Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

#[allow(clippy::type_complexity)]
fn tpq_bit_identical(
    a: &[Vec<(u32, Vec<(u32, Point)>)>],
    b: &[Vec<(u32, Vec<(u32, Point)>)>],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(qa, qb)| {
            qa.len() == qb.len()
                && qa.iter().zip(qb).all(|((ia, sa), (ib, sb))| {
                    ia == ib
                        && sa.len() == sb.len()
                        && sa
                            .iter()
                            .zip(sb)
                            .all(|((ta, pa), (tb, pb))| ta == tb && points_bit_eq(pa, pb))
                })
        })
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let s = scale();

    let data = porto_like(&PortoConfig {
        trajectories: ((1000.0 * s).round() as usize).max(50),
        mean_len: 45,
        min_len: 30,
        start_spread: 15,
        seed: 0x11FE,
    });
    let n_points = data.num_points();
    let ppq = PpqConfig::variant(Variant::PpqS, 0.1);
    let gc = ppq.tpi.pi.gc;
    let n_queries = ((2000.0 * s).round() as usize).max(200);
    let queries = sample_queries(&data, n_queries, 71);
    let mut cfg = LiveConfig::new(ppq.clone(), SHARDS);
    cfg.page_size = PAGE_SIZE_BENCH;
    cfg.group_commit = GROUP_COMMIT;
    cfg.fold_every = FOLD_EVERY;
    cfg.compact_max_chain = 4;
    let mut slices: Vec<_> = data.time_slices().collect();
    // Recovery must have a real WAL tail to replay: if the last auto-fold
    // would land exactly on the final slice (emptying the log), hold one
    // slice back so a full fold_every-sized tail survives the "crash".
    if slices.len().is_multiple_of(FOLD_EVERY as usize) {
        slices.pop();
    }
    let ingested_points: usize = slices.iter().map(|s| s.points.len()).sum();
    eprintln!(
        "live-path dataset: {n_points} points, {} trajectories, {} slices ingested, {n_queries} queries, {SHARDS} shards",
        data.num_trajectories(),
        slices.len()
    );

    let dir = std::env::temp_dir().join(format!("ppq-live-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Ingest: WAL + periodic folds + auto-compaction. ----------------
    let t = Instant::now();
    {
        let mut live = LiveRepo::recover(&dir, cfg.clone()).expect("fresh live repo");
        for slice in &slices {
            live.push_slice(slice.t, slice.points).expect("push");
            assert!(
                live.last_maintenance_error().is_none(),
                "maintenance must not fail in a fault-free bench run"
            );
        }
        live.sync().expect("final WAL sync");
        // Dropped without a final fold: the unfolded tail is what
        // recovery has to replay.
    }
    let ingest_seconds = t.elapsed().as_secs_f64();

    // ---- Raw WAL replay throughput over the surviving tail. -------------
    let wal_path = dir.join(WAL_NAME);
    let wal_tail_bytes = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
    let t = Instant::now();
    let (_, tail_records) = Wal::open_replay(&wal_path, GROUP_COMMIT).expect("replay valid log");
    let wal_replay_seconds = t.elapsed().as_secs_f64();
    let records_replayed = tail_records.len();
    let tail_points: usize = tail_records.iter().map(|r| r.points.len()).sum();
    drop(tail_records);

    // ---- Recovery: checkpoint decode + tail replay into the pipeline. ---
    let t = Instant::now();
    let mut live = LiveRepo::recover(&dir, cfg.clone()).expect("recover");
    let recovery_seconds = t.elapsed().as_secs_f64();

    // ---- Bit-identity vs an uninterrupted in-memory run. ----------------
    let mut control = ShardedPpqStream::new(ppq, SHARDS);
    for slice in &slices {
        control.push_slice(slice.t, slice.points);
    }
    let full = control.finish();
    let recovered = live.snapshot();
    let mut recovery_bit_identical = recovered.shards().len() == full.shards().len()
        && recovered
            .shards()
            .iter()
            .zip(full.shards())
            .all(|(a, b)| summary_io::to_bytes(a) == summary_io::to_bytes(b));

    live.fold().expect("final fold");
    drop(live);
    let repo = Repo::open(&dir, POOL_PAGES).expect("folded chain opens");
    let generations = repo.num_generations();
    let disk = DiskQueryEngine::new(&repo, &data, gc);
    let mem = ShardedQueryEngine::new(&full, &data, gc);
    recovery_bit_identical &= disk.strq_batch(&queries).unwrap() == mem.strq_batch(&queries);
    recovery_bit_identical &= tpq_bit_identical(
        &disk.tpq_batch(&queries, TPQ_HORIZON).unwrap(),
        &mem.tpq_batch(&queries, TPQ_HORIZON),
    );
    assert!(
        recovery_bit_identical,
        "recovered pipeline and folded chain must answer bit-identically to the uninterrupted run"
    );

    assert!(
        records_replayed > 0,
        "recovery must exercise a non-empty WAL tail"
    );
    let slices_per_sec = slices.len() as f64 / ingest_seconds.max(1e-9);
    let points_per_sec = ingested_points as f64 / ingest_seconds.max(1e-9);
    let replay_mb_per_sec = wal_tail_bytes as f64 / 1_048_576.0 / wal_replay_seconds.max(1e-9);

    // ---- Report. --------------------------------------------------------
    println!(
        "\n=== PPQ live path (cores={cores}, {n_points} points, {} slices, {n_queries} queries, {SHARDS} shards) ===",
        slices.len()
    );
    println!(
        "ingest: {ingest_seconds:.4}s ({slices_per_sec:.0} slices/s, {points_per_sec:.0} points/s, group_commit={GROUP_COMMIT}, fold_every={FOLD_EVERY})"
    );
    println!(
        "recovery: {recovery_seconds:.4}s (checkpoint + {records_replayed} tail records, {tail_points} points); raw WAL replay {wal_replay_seconds:.6}s over {wal_tail_bytes} B ({replay_mb_per_sec:.1} MB/s)"
    );
    println!("chain after final fold: {generations} generation(s); recovery_bit_identical: {recovery_bit_identical}");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {cores}, \"profile\": \"release\", \"points\": {n_points}, \"slices\": {}, \"queries\": {n_queries}, \"page_size\": {PAGE_SIZE_BENCH}, \"shards\": {SHARDS}, \"group_commit\": {GROUP_COMMIT}, \"fold_every\": {FOLD_EVERY}}},",
        slices.len()
    );
    let _ = writeln!(
        json,
        "    \"note\": \"Crash-safe live ingest: every slice is WAL-logged (CRC-sealed records, group-committed fsyncs) before entering the sharded pipeline, folded into delta generations every fold_every slices with auto-compaction, then the process is dropped with an unfolded tail. recovery_seconds times LiveRepo::recover (checkpoint decode + tail replay into the pipeline); wal_replay measures Wal::open_replay alone over the same tail. recovery_bit_identical asserts the recovered pipeline equals an uninterrupted in-memory run bit for bit (per-shard summary serializations) and that the folded chain answers STRQ (all levels) and TPQ (payload bits) exactly like the in-memory engine.\","
    );
    let _ = writeln!(
        json,
        "    \"recovery_bit_identical\": {recovery_bit_identical},"
    );
    let _ = writeln!(json, "    \"ingest\": {{");
    let _ = writeln!(json, "      \"seconds\": {ingest_seconds:.6},");
    let _ = writeln!(json, "      \"slices_per_sec\": {slices_per_sec:.1},");
    let _ = writeln!(json, "      \"points_per_sec\": {points_per_sec:.1}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"recovery\": {{");
    let _ = writeln!(json, "      \"seconds\": {recovery_seconds:.6},");
    let _ = writeln!(json, "      \"tail_records\": {records_replayed},");
    let _ = writeln!(json, "      \"tail_points\": {tail_points},");
    let _ = writeln!(json, "      \"generations_after_fold\": {generations}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"wal_replay\": {{");
    let _ = writeln!(json, "      \"seconds\": {wal_replay_seconds:.6},");
    let _ = writeln!(json, "      \"bytes\": {wal_tail_bytes},");
    let _ = writeln!(json, "      \"mb_per_sec\": {replay_mb_per_sec:.2}");
    let _ = writeln!(json, "    }}");
    let _ = write!(json, "  }}");

    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = merge_bench_section(&existing, "live_path", &json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (live_path section)");

    let _ = std::fs::remove_dir_all(&dir);
}
