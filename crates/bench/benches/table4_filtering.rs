//! Table 4 — Average ratio of trajectories visited and MAE against
//! different sizes of C (5–9 bits).
//!
//! Protocol (paper §6.2.3): every method learns per-timestep codebooks of
//! 2^bits codewords; for each query the summary is used as an index and
//! the fraction of (active) trajectories visited during the exact-match
//! refinement is recorded. TrajStore is excluded, as in the paper (its
//! per-cell summaries cannot be fixed per timestep).

use ppq_bench::methods::build_budgeted;
use ppq_bench::report::sig;
use ppq_bench::{geolife_bench, porto_bench, sample_queries, MethodKind, Table};
use ppq_core::query::QueryEngine;
use ppq_core::PpqConfig;
use ppq_traj::{Dataset, DatasetStats};

const BITS: [u32; 5] = [5, 6, 7, 8, 9];

const METHODS: [MethodKind; 8] = [
    MethodKind::PpqA,
    MethodKind::PpqABasic,
    MethodKind::PpqS,
    MethodKind::PpqSBasic,
    MethodKind::EPq,
    MethodKind::QTrajectory,
    MethodKind::ResidualQuantization,
    MethodKind::ProductQuantization,
];

fn evaluate(dataset: &Dataset, name: &str, table: &mut Table, queries: usize) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    let qs = sample_queries(dataset, queries, 0x4411);
    let gc = PpqConfig::default().tpi.pi.gc;
    for kind in METHODS {
        let mut ratio_row = vec![
            name.to_string(),
            kind.name().to_string(),
            "ratio".to_string(),
        ];
        let mut mae_row = vec![
            name.to_string(),
            kind.name().to_string(),
            "MAE(m)".to_string(),
        ];
        for bits in BITS {
            let built = build_budgeted(kind, dataset, bits);
            let engine = QueryEngine::new(built.as_index(), dataset, gc);
            let mut ratio_sum = 0.0;
            for (t, p) in &qs {
                let active = dataset.points_at(*t).len().max(1);
                let out = engine.strq(*t, p);
                ratio_sum += out.visited as f64 / active as f64;
            }
            ratio_row.push(format!("{:.4}", ratio_sum / qs.len() as f64));
            mae_row.push(sig(built.mae_meters(dataset)));
        }
        table.row(ratio_row);
        table.row(mae_row);
    }
}

fn main() {
    let queries = if ppq_bench::scale() < 0.5 { 60 } else { 200 };
    let mut table = Table::new(
        "Table 4: Avg ratio of trajectories visited and MAE vs |C| bits",
        &[
            "Dataset", "Method", "Measure", "5bits", "6bits", "7bits", "8bits", "9bits",
        ],
    );
    let porto = porto_bench();
    evaluate(&porto, "Porto", &mut table, queries);
    let geolife = geolife_bench();
    evaluate(&geolife, "Geolife", &mut table, queries);
    table.emit("table4_filtering");
}
