//! Figure 9 — Compression ratio against the spatial deviation.
//!
//! Panels (a) Porto and (b) Geolife sweep the nine main methods; panel
//! (c) sub-Porto adds REST (which, per §6.1, only functions on data with
//! a highly repeating pattern set — exactly what sub-Porto provides).

use ppq_baselines::{build_rest, RestConfig};
use ppq_bench::methods::build_for_deviation;
use ppq_bench::{geolife_bench, porto_bench, sub_porto_bench, Table, ALL_MAIN_METHODS};
use ppq_geo::coords;
use ppq_traj::{Dataset, DatasetStats};

const DEVIATIONS_M: [f64; 5] = [200.0, 400.0, 600.0, 800.0, 1000.0];

fn panel(dataset: &Dataset, name: &str, table: &mut Table) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    for kind in ALL_MAIN_METHODS {
        let mut row = vec![name.to_string(), kind.name().to_string()];
        for d in DEVIATIONS_M {
            let built = build_for_deviation(kind, dataset, d);
            row.push(format!("{:.2}", built.compression_ratio(dataset)));
        }
        table.row(row);
    }
}

fn rest_panel(table: &mut Table) {
    let (targets, pool) = sub_porto_bench();
    println!("{}", DatasetStats::of(&targets).banner("sub-Porto targets"));
    // The PPQ-side methods compress the same targets.
    for kind in ALL_MAIN_METHODS
        .iter()
        .filter(|k| **k != ppq_bench::MethodKind::TrajStore)
    {
        let mut row = vec!["sub-Porto".to_string(), kind.name().to_string()];
        for d in DEVIATIONS_M {
            let built = build_for_deviation(*kind, &targets, d);
            row.push(format!("{:.2}", built.compression_ratio(&targets)));
        }
        table.row(row);
    }
    let mut row = vec!["sub-Porto".to_string(), "REST".to_string()];
    for d in DEVIATIONS_M {
        let cfg = RestConfig {
            eps: coords::meters_to_deg(d),
            min_match_len: 3,
        };
        let rest = build_rest(&targets, &pool, &cfg, None);
        row.push(format!("{:.2}", rest.compression_ratio(&targets)));
    }
    table.row(row);
}

fn main() {
    let mut table = Table::new(
        "Figure 9: Compression ratio against spatial deviation",
        &["Dataset", "Method", "200m", "400m", "600m", "800m", "1000m"],
    );
    let porto = porto_bench();
    panel(&porto, "Porto", &mut table);
    let geolife = geolife_bench();
    panel(&geolife, "Geolife", &mut table);
    rest_panel(&mut table);
    table.emit("fig9_compression");
}
