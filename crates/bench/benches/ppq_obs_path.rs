//! The observability surface itself, under load, merged into
//! `BENCH_ppq.json` as the `obs_path` section.
//!
//! Four contracts, all CI-gated:
//!
//! 1. **Wire-level consistency** — a loopback `ppq-server` serves an
//!    open-loop mixed schedule while a scrape lane polls the `Metrics`
//!    frame (`run_open_loop_scraped` + `RemoteConn::metrics`). The
//!    registry deltas over the run must equal the client's own
//!    accounting *exactly*: per-class server request counters match
//!    client completions, and the total matches the sum of every
//!    request this process sent (metrics polls included).
//! 2. **Pool accounting** — a quiescent disk-engine pass reconciles the
//!    registry's `ppq_pool_hits`/`ppq_pool_misses` deltas against the
//!    per-query [`IoStats`] sums: hits+misses is page-in attempts, and
//!    misses is exactly the real reads.
//! 3. **Slow-query capture** — with the threshold forced to zero, a
//!    burst of remote queries must land in the slow-query ring with
//!    latency attached.
//! 4. **Instrumentation overhead** — the same in-process STRQ hot path
//!    timed with the registry enabled and disabled (interleaved rounds,
//!    min per mode); the ratio must stay under a small bound
//!    (`PPQ_OBS_BOUND`, default 1.30). This is the claim that
//!    observability rides along for free.
//!
//! Env knobs match `ppq_load_path` (`PPQ_SCALE`, `PPQ_LOAD_RATE`,
//! `PPQ_LOAD_OPS`, `PPQ_LOAD_WORKERS`), plus `PPQ_OBS_BOUND`.

use ppq_bench::report::merge_bench_section;
use ppq_bench::scale;
use ppq_core::query::{ShardedQueryEngine, ShardedQueryWorkspace};
use ppq_core::{PpqConfig, ShardedSummary, Variant};
use ppq_live::{LiveConfig, LiveService, MaintenanceConfig};
use ppq_load::{run_open_loop_scraped, MixConfig, Schedule, ScheduleConfig};
use ppq_repo::{DiskQueryEngine, DiskQueryWorkspace, Repo, RepoWriter};
use ppq_server::{RemoteClient, RemoteConn, ServerConfig};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::TrajId;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE_SIZE_BENCH: usize = 4 << 10;
const SHARDS: usize = 2;
const POOL_PAGES: usize = 64;
const SEED: u64 = 0x0B5E_CAFE;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let s = scale();
    let data = Arc::new(porto_like(&PortoConfig {
        trajectories: ((600.0 * s).round() as usize).max(40),
        mean_len: 50,
        min_len: 25,
        start_spread: 40,
        seed: 0x0B5E,
    }));
    let n_points = data.num_points();
    let slices: Vec<(u32, Vec<(TrajId, ppq_geo::Point)>)> = data
        .time_slices()
        .map(|sl| (sl.t, sl.points.to_vec()))
        .collect();

    let rate = env_f64("PPQ_LOAD_RATE", (1500.0 * s).max(150.0));
    let ops = env_usize("PPQ_LOAD_OPS", ((3000.0 * s).round() as usize).max(300));
    let readers = env_usize("PPQ_LOAD_WORKERS", cores.saturating_sub(1).clamp(1, 4));
    let append_frac = (0.8 * slices.len() as f64 / ops as f64).min(0.2);
    let live_sched_cfg = ScheduleConfig {
        seed: SEED,
        rate_per_sec: rate,
        ops,
        mix: MixConfig {
            strq: (1.0 - append_frac) * 0.7,
            tpq: (1.0 - append_frac) * 0.3,
            append: append_frac,
        },
        ..ScheduleConfig::default()
    };
    let schedule = Schedule::generate(&data, &live_sched_cfg);
    eprintln!(
        "obs-path dataset: {n_points} points, {} slices; rate {rate} ops/s, {ops} ops, {readers} readers",
        slices.len()
    );

    let ppq = PpqConfig::variant(Variant::PpqS, 0.1);
    let gc = ppq.tpi.pi.gc;
    let work_dir = std::env::temp_dir().join(format!("ppq-obs-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);

    // ---- 1. Loopback server under load with a metrics scrape lane. ------
    let mut live_cfg = LiveConfig::new(ppq.clone(), SHARDS);
    live_cfg.page_size = PAGE_SIZE_BENCH;
    live_cfg.fold_every = 16;
    live_cfg.compact_max_chain = 4;
    let service = Arc::new(
        LiveService::open(&work_dir.join("live"), live_cfg, data.clone(), 8)
            .expect("open live service"),
    );
    let server = ppq_server::start(
        "127.0.0.1:0",
        service.clone(),
        ServerConfig {
            // Headroom above the reader count: a shed connection answers
            // Busy without decoding a request, which would break the
            // exact request-count reconciliation below (and is asserted
            // not to happen).
            handler_threads: (readers + 3).min(8),
            queue_depth: 64,
            poll_interval: Duration::from_millis(25),
            maintenance: Some(MaintenanceConfig {
                tick: Duration::from_millis(5),
                sync_wal: true,
                publish: true,
            }),
        },
    )
    .expect("bind loopback server");
    let remote = RemoteClient::new(server.addr()).expect("resolve server addr");

    let mut writer_conn = RemoteConn::connect(server.addr()).expect("writer connection");
    let mut scrape_conn = RemoteConn::connect(server.addr()).expect("scrape connection");
    let mut next_slice = 0usize;
    let mut appends_sent = 0u64;
    let (report, scrape) = run_open_loop_scraped(
        &remote,
        &schedule,
        readers,
        || {
            if next_slice < slices.len() {
                let (t, points) = &slices[next_slice];
                let acked = writer_conn
                    .append(*t, points)
                    .expect("remote in-order append");
                assert_eq!(acked, *t + 1);
                next_slice += 1;
                appends_sent += 1;
            }
        },
        Duration::from_millis(50),
        move || scrape_conn.metrics().ok(),
    );
    let scrape = scrape.expect("loopback scrape lane must stay alive");

    // Registry deltas over the run vs the client's own books. Every op
    // the harness completed is exactly one request on the wire (no
    // shedding happened — asserted), and the scrape lane's own Metrics
    // polls are the only other traffic.
    let delta = |name: &str| scrape.counter_delta(name).unwrap_or(0);
    assert_eq!(delta("ppq_server_shed"), 0, "shed under benign load");
    assert_eq!(delta("ppq_server_protocol_errors"), 0);
    let strq_delta = delta("ppq_server_strq_requests");
    let tpq_delta = delta("ppq_server_tpq_requests");
    let append_delta = delta("ppq_server_append_requests");
    let metrics_delta = delta("ppq_server_metrics_requests");
    let requests_delta = delta("ppq_server_requests");
    let client_completions = report.strq.ops + report.tpq.ops + appends_sent;
    let per_class_match = strq_delta == report.strq.ops
        && tpq_delta == report.tpq.ops
        && append_delta == appends_sent;
    let requests_match = requests_delta == client_completions + metrics_delta;
    assert!(
        per_class_match,
        "per-class server counters diverge from client completions: \
         strq {strq_delta}/{}, tpq {tpq_delta}/{}, append {append_delta}/{appends_sent}",
        report.strq.ops, report.tpq.ops
    );
    assert!(
        requests_match,
        "server total {requests_delta} != client {client_completions} + metrics polls {metrics_delta}"
    );
    assert!(
        scrape.samples > 0,
        "scrape lane never landed a mid-run poll"
    );
    let wal_appends_delta = delta("ppq_wal_appends");
    assert_eq!(
        wal_appends_delta, appends_sent,
        "every remote append is exactly one WAL append"
    );

    // ---- 2. Injected outliers land in the slow-query ring. --------------
    ppq_obs::set_slow_threshold(Some(Duration::ZERO));
    let injected = 5u64;
    let probe: Vec<(u32, ppq_geo::Point)> = data
        .iter_points()
        .step_by((n_points / injected as usize).max(1))
        .map(|(_, t, p)| (t, p))
        .take(injected as usize)
        .collect();
    for &(t, p) in &probe {
        writer_conn.strq(t, &p).expect("probe STRQ");
    }
    ppq_obs::set_slow_threshold(None);
    let snap = writer_conn.metrics().expect("metrics after probes");
    let slow_server_strq = snap
        .slow_queries
        .iter()
        .filter(|q| q.name == "server_strq" && q.latency_ns > 0)
        .count() as u64;
    assert!(
        slow_server_strq >= injected,
        "zero-threshold probes missing from the slow log: {slow_server_strq}/{injected}"
    );

    drop(writer_conn);
    server.shutdown().expect("graceful server shutdown");

    // ---- 3. Pool accounting against per-query IoStats (quiescent). ------
    let summary = ShardedSummary::build(&data, &ppq, SHARDS);
    let repo_dir = work_dir.join("repo");
    RepoWriter::with_page_size(&repo_dir, PAGE_SIZE_BENCH)
        .write_sharded(&summary)
        .expect("write repository");
    let repo = Repo::open(&repo_dir, POOL_PAGES).expect("open repository");
    let disk_engine = DiskQueryEngine::new(&repo, &data, gc);
    let disk_queries: Vec<(u32, ppq_geo::Point)> = data
        .iter_points()
        .step_by((n_points / 128).max(1))
        .map(|(_, t, p)| (t, p))
        .collect();
    let before_pool = ppq_obs::snapshot();
    let mut ws = DiskQueryWorkspace::new();
    let (mut io_reads, mut io_hits) = (0u64, 0u64);
    for &(t, p) in &disk_queries {
        let outcome = disk_engine
            .strq_online_with(t, &p, &mut ws)
            .expect("disk STRQ");
        std::hint::black_box(outcome.exact.len());
        io_reads += ws.last_io.0;
        io_hits += ws.last_io.1;
    }
    let after_pool = ppq_obs::snapshot();
    let pool_delta =
        |name: &str| after_pool.counter(name).unwrap_or(0) - before_pool.counter(name).unwrap_or(0);
    let (hits_delta, misses_delta) = (pool_delta("ppq_pool_hits"), pool_delta("ppq_pool_misses"));
    let pool_match = hits_delta + misses_delta == io_reads + io_hits
        && misses_delta == io_reads
        && hits_delta == io_hits;
    assert!(
        pool_match,
        "pool counters diverge from IoStats: hits {hits_delta}/{io_hits}, misses {misses_delta}/{io_reads}"
    );
    assert!(io_reads + io_hits > 0, "disk pass did no page-in attempts");

    // ---- 4. Overhead: enabled vs disabled on the in-process hot path. ---
    let engine = ShardedQueryEngine::new(&summary, &data, gc);
    let hot_queries: Vec<(u32, ppq_geo::Point)> = data
        .iter_points()
        .step_by((n_points / ((400.0 * s) as usize).clamp(64, 512)).max(1))
        .map(|(_, t, p)| (t, p))
        .collect();
    let mut hot_ws = ShardedQueryWorkspace::new();
    let pass = |enabled: bool, ws: &mut ShardedQueryWorkspace| -> (u64, u64) {
        ppq_obs::set_enabled(enabled);
        let start = Instant::now();
        let mut ck = 0u64;
        for &(t, p) in &hot_queries {
            let o = engine.strq_online_with(t, &p, ws);
            ck = ck.wrapping_mul(31).wrapping_add(o.exact.len() as u64);
        }
        (start.elapsed().as_nanos() as u64, ck)
    };
    // Warm both modes once, then interleave and keep the per-mode min —
    // the noise-robust estimator for a bound check.
    let _ = pass(true, &mut hot_ws);
    let _ = pass(false, &mut hot_ws);
    let rounds = 5;
    let (mut min_en, mut min_dis) = (u64::MAX, u64::MAX);
    let (mut ck_en, mut ck_dis) = (0u64, 0u64);
    for _ in 0..rounds {
        let (ns, ck) = pass(true, &mut hot_ws);
        min_en = min_en.min(ns);
        ck_en = ck;
        let (ns, ck) = pass(false, &mut hot_ws);
        min_dis = min_dis.min(ns);
        ck_dis = ck;
    }
    ppq_obs::set_enabled(true);
    assert_eq!(ck_en, ck_dis, "instrumentation changed query answers");
    let n = hot_queries.len() as u64;
    let (en_ns_op, dis_ns_op) = (min_en / n.max(1), min_dis / n.max(1));
    let bound = env_f64("PPQ_OBS_BOUND", 1.30);
    let ratio = min_en as f64 / min_dis.max(1) as f64;
    let overhead_within_bound = ratio <= bound;
    assert!(
        overhead_within_bound,
        "instrumented hot path {ratio:.3}x over the registry-disabled build (bound {bound})"
    );

    // ---- Report. --------------------------------------------------------
    let final_snap = ppq_obs::snapshot();
    let server_requests = final_snap.counter("ppq_server_requests").unwrap_or(0);
    let pool_attempts = final_snap.counter("ppq_pool_hits").unwrap_or(0)
        + final_snap.counter("ppq_pool_misses").unwrap_or(0);
    let wal_appends = final_snap.counter("ppq_wal_appends").unwrap_or(0);
    println!(
        "\n=== PPQ obs path (cores={cores}, {n_points} points, {ops} ops @ {rate:.0}/s, {readers} readers) ==="
    );
    println!(
        "consistency: requests {requests_delta} == {client_completions} client + {metrics_delta} polls; \
         per-class strq {strq_delta} tpq {tpq_delta} append {append_delta}; {} scrape samples",
        scrape.samples
    );
    println!(
        "pool: {hits_delta} hits + {misses_delta} misses == {} page-in attempts ({io_reads} real reads)",
        io_reads + io_hits
    );
    println!("slow log: {slow_server_strq} server_strq records captured at zero threshold");
    println!(
        "overhead: enabled {en_ns_op} ns/op vs disabled {dis_ns_op} ns/op, ratio {ratio:.3} (bound {bound})"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {cores}, \"profile\": \"release\", \"points\": {n_points}, \"slices\": {}, \"readers\": {readers}, \"shards\": {SHARDS}, \"page_size\": {PAGE_SIZE_BENCH}}},",
        slices.len()
    );
    let _ = writeln!(
        json,
        "    \"note\": \"Observability surface under load. consistency: a loopback ppq-server served an open-loop mixed schedule while a scrape lane polled the wire Metrics frame; the registry's per-class request counters and total must equal the client's completion counts exactly (metrics polls accounted). pool: a quiescent disk-engine pass reconciles ppq_pool_hits/ppq_pool_misses deltas against per-query IoStats — hits+misses is page-in attempts, misses is real reads. slow_query_log: remote STRQs issued under a zero slow-threshold must appear in the ring with latency attached. overhead: the in-process STRQ hot path timed with the registry enabled vs disabled (interleaved rounds, min per mode); overhead_within_bound gates the ratio.\","
    );
    let _ = writeln!(
        json,
        "    \"consistency\": {{\"server_requests_delta\": {requests_delta}, \"client_completions\": {client_completions}, \"metrics_polls\": {metrics_delta}, \"requests_match\": {requests_match}, \"per_class_match\": {per_class_match}, \"scrape_samples\": {}, \"wal_appends_delta\": {wal_appends_delta}}},",
        scrape.samples
    );
    let _ = writeln!(
        json,
        "    \"pool\": {{\"hits_delta\": {hits_delta}, \"misses_delta\": {misses_delta}, \"io_reads\": {io_reads}, \"io_buffer_hits\": {io_hits}, \"pool_match\": {pool_match}}},"
    );
    let _ = writeln!(
        json,
        "    \"slow_query_log\": {{\"injected\": {injected}, \"captured_server_strq\": {slow_server_strq}, \"capacity\": {}}},",
        ppq_obs::SLOW_LOG_CAPACITY
    );
    let _ = writeln!(
        json,
        "    \"counters\": {{\"server_requests\": {server_requests}, \"pool_attempts\": {pool_attempts}, \"wal_appends\": {wal_appends}}},"
    );
    let _ = writeln!(
        json,
        "    \"overhead\": {{\"queries_per_round\": {n}, \"rounds\": {rounds}, \"enabled_ns_per_op\": {en_ns_op}, \"disabled_ns_per_op\": {dis_ns_op}, \"ratio\": {ratio:.4}, \"bound\": {bound:.2}, \"overhead_within_bound\": {overhead_within_bound}}}"
    );
    let _ = write!(json, "  }}");

    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = merge_bench_section(&existing, "obs_path", &json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (obs_path section)");

    let _ = std::fs::remove_dir_all(&work_dir);
}
