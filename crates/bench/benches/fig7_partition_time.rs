//! Figure 7 — Temporal partitioning running time against ε_p.
//!
//! The incremental temporal partitioning component (§3.2.2) is timed in
//! isolation (the pipeline's partitioning timer) for PPQ-A and PPQ-S over
//! a sweep of ε_p; larger ε_p ⇒ fewer partitions ⇒ less time.

use ppq_bench::report::secs;
use ppq_bench::{geolife_bench, porto_bench, Table};
use ppq_core::{PartitionMode, PpqConfig, PpqTrajectory, Variant};
use ppq_traj::{Dataset, DatasetStats};

fn run(dataset: &Dataset, name: &str, mode: PartitionMode, eps_ps: &[f64], table: &mut Table) {
    for &eps_p in eps_ps {
        let variant = if mode == PartitionMode::Autocorrelation {
            Variant::PpqA
        } else {
            Variant::PpqS
        };
        let mut cfg = PpqConfig::variant(variant, eps_p);
        cfg.eps_p = eps_p;
        cfg.build_index = false;
        let built = PpqTrajectory::build(dataset, &cfg);
        let stats = built.summary().stats();
        let max_q = stats
            .partitions_per_step
            .iter()
            .map(|(_, q)| *q)
            .max()
            .unwrap_or(0);
        table.row(vec![
            name.into(),
            variant.name().into(),
            format!("{eps_p}"),
            secs(stats.partitioning),
            max_q.to_string(),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "Figure 7: Temporal partitioning running time against eps_p",
        &[
            "Dataset",
            "Variant",
            "eps_p",
            "Partitioning time(s)",
            "max q",
        ],
    );
    let porto = porto_bench();
    println!("{}", DatasetStats::of(&porto).banner("Porto"));
    run(
        &porto,
        "Porto",
        PartitionMode::Autocorrelation,
        &[0.01, 0.03, 0.05],
        &mut table,
    );
    run(
        &porto,
        "Porto",
        PartitionMode::Spatial,
        &[0.1, 0.3, 0.5],
        &mut table,
    );
    let geolife = geolife_bench();
    println!("{}", DatasetStats::of(&geolife).banner("Geolife"));
    run(
        &geolife,
        "Geolife",
        PartitionMode::Autocorrelation,
        &[0.01, 0.03, 0.05],
        &mut table,
    );
    run(
        &geolife,
        "Geolife",
        PartitionMode::Spatial,
        &[1.0, 3.0, 5.0],
        &mut table,
    );
    table.emit("fig7_partition_time");
}
