//! The served path (`ppq-server`) under the open-loop harness, merged
//! into `BENCH_ppq.json` as the `service_path` section.
//!
//! What it records:
//!
//! 1. **Round-trip latency per op class** — the same coordinated-
//!    omission-safe open-loop schedules as `load_path`, but every op
//!    crosses the wire protocol: STRQ/TPQ via [`RemoteClient`] worker
//!    connections, appends via a dedicated writer connection — while
//!    the server's background worker folds/compacts/syncs off the
//!    ingest thread.
//! 2. **In-process vs TCP overhead** — the identical read-only schedule
//!    fired at the in-process [`LiveService`] and at the server over
//!    loopback; the p50 delta is the transport's price.
//! 3. **Bit-identity** — after the run, a quiescent pass asks every
//!    sampled query both remotely and in-process at the same published
//!    version and requires the *full* answer structure (all STRQ tiers,
//!    TPQ tracks by f64 bits) to match. Recorded as
//!    `bit_identical_to_inprocess`, which CI gates on.
//! 4. **Maintenance placement** — `maintenance_off_ingest_thread`
//!    asserts background folds actually ran with inline maintenance
//!    disabled (CI-gated).
//!
//! With `PPQ_SERVICE_ADDR` set, the bench instead drives an already-
//! running server (the CI server-smoke job starts
//! `examples/live_server.rs --serve`) read-only, and checks answer
//! determinism across independent connections at a stable version.
//! Env knobs otherwise match `ppq_load_path`.

use ppq_bench::report::merge_bench_section;
use ppq_bench::scale;
use ppq_core::query::ShardedQueryWorkspace;
use ppq_core::{PpqConfig, Variant};
use ppq_live::{LiveConfig, LiveService, MaintenanceConfig};
use ppq_load::{run_open_loop, ClassStats, MixConfig, OpKind, Schedule, ScheduleConfig};
use ppq_server::{RemoteClient, RemoteConn, ServerConfig};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::{Dataset, TrajId};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

const PAGE_SIZE_BENCH: usize = 4 << 10;
const SHARDS: usize = 2;
const SEED: u64 = 0x5E4E_CAFE;
const TPQ_HORIZON: u32 = 8;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn class_json(stats: &ClassStats) -> String {
    match &stats.latency {
        Some(summary) => format!(
            "{{\"ops\": {}, \"mean_service_us\": {:.3}, \"latency\": {}}}",
            stats.ops,
            stats.mean_service_us,
            summary.json()
        ),
        None => format!("{{\"ops\": {}}}", stats.ops),
    }
}

/// The service-shell synthetic dataset — `examples/live_server.rs
/// --serve` builds the identical one, so external-mode queries hit the
/// same slices the server ingested.
pub fn service_dataset(s: f64) -> Dataset {
    porto_like(&PortoConfig {
        trajectories: ((600.0 * s).round() as usize).max(40),
        mean_len: 50,
        min_len: 25,
        start_spread: 40,
        seed: 0x5E4E,
    })
}

fn points_bit_eq(a: &ppq_geo::Point, b: &ppq_geo::Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

fn tpq_bit_eq(
    a: &[(TrajId, Vec<(u32, ppq_geo::Point)>)],
    b: &[(TrajId, Vec<(u32, ppq_geo::Point)>)],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((ia, sa), (ib, sb))| {
            ia == ib
                && sa.len() == sb.len()
                && sa
                    .iter()
                    .zip(sb)
                    .all(|((ta, pa), (tb, pb))| ta == tb && points_bit_eq(pa, pb))
        })
}

fn write_section(json: &str) {
    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = merge_bench_section(&existing, "service_path", json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (service_path section)");
}

fn main() {
    match std::env::var("PPQ_SERVICE_ADDR") {
        Ok(addr) => external(&addr),
        Err(_) => inprocess(),
    }
}

// --- Default mode: own server over loopback, full contract checks. ----------

fn inprocess() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let s = scale();
    let data = Arc::new(service_dataset(s));
    let slices: Vec<(u32, Vec<(TrajId, ppq_geo::Point)>)> = data
        .time_slices()
        .map(|sl| (sl.t, sl.points.to_vec()))
        .collect();
    let n_points = data.num_points();

    let rate = env_f64("PPQ_LOAD_RATE", (1500.0 * s).max(150.0));
    let ops = env_usize("PPQ_LOAD_OPS", ((3000.0 * s).round() as usize).max(300));
    let readers = env_usize("PPQ_LOAD_WORKERS", cores.saturating_sub(1).clamp(1, 4));
    let append_frac = (0.8 * slices.len() as f64 / ops as f64).min(0.2);

    let read_cfg = ScheduleConfig {
        seed: SEED,
        rate_per_sec: rate,
        ops,
        mix: MixConfig::read_only(0.7, 0.3),
        ..ScheduleConfig::default()
    };
    let live_cfg_sched = ScheduleConfig {
        seed: SEED ^ 1,
        rate_per_sec: rate,
        ops,
        mix: MixConfig {
            strq: (1.0 - append_frac) * 0.7,
            tpq: (1.0 - append_frac) * 0.3,
            append: append_frac,
        },
        ..ScheduleConfig::default()
    };
    let read_schedule = Schedule::generate(&data, &read_cfg);
    let live_schedule = Schedule::generate(&data, &live_cfg_sched);
    eprintln!(
        "service-path dataset: {n_points} points, {} slices; rate {rate} ops/s, {ops} ops, {readers} readers",
        slices.len()
    );

    let ppq = PpqConfig::variant(Variant::PpqS, 0.1);
    let mut live_cfg = LiveConfig::new(ppq, SHARDS);
    live_cfg.page_size = PAGE_SIZE_BENCH;
    live_cfg.fold_every = 16;
    live_cfg.compact_max_chain = 4;
    let work_dir = std::env::temp_dir().join(format!("ppq-service-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);
    let service = Arc::new(
        LiveService::open(&work_dir, live_cfg, data.clone(), 8).expect("open live service"),
    );
    let server = ppq_server::start(
        "127.0.0.1:0",
        service.clone(),
        ServerConfig {
            handler_threads: (readers + 2).min(8),
            queue_depth: 32,
            poll_interval: Duration::from_millis(25),
            maintenance: Some(MaintenanceConfig {
                tick: Duration::from_millis(5),
                sync_wal: true,
                publish: true,
            }),
        },
    )
    .expect("bind loopback server");
    let remote = RemoteClient::new(server.addr()).expect("resolve server addr");

    // ---- 1. Served live path: TCP queries while TCP appends ingest. -----
    let mut writer_conn = RemoteConn::connect(server.addr()).expect("writer connection");
    let mut next_slice = 0usize;
    let tcp_live_report = run_open_loop(&remote, &live_schedule, readers, || {
        if next_slice < slices.len() {
            let (t, points) = &slices[next_slice];
            let acked = writer_conn
                .append(*t, points)
                .expect("remote in-order append");
            assert_eq!(acked, *t + 1);
            next_slice += 1;
        }
    });

    // Finish ingest so both read passes and the bit-identity pass see
    // the full stream at one stable version.
    while next_slice < slices.len() {
        let (t, points) = &slices[next_slice];
        writer_conn
            .append(*t, points)
            .expect("remote in-order append");
        next_slice += 1;
    }
    let final_version = writer_conn.publish().expect("publish");

    // ---- 2. Same read-only schedule: TCP vs in-process. ------------------
    let tcp_read_report = run_open_loop(&remote, &read_schedule, readers, || {
        unreachable!("read-only schedule")
    });
    let inproc_read_report = run_open_loop(&*service, &read_schedule, readers, || {
        unreachable!("read-only schedule")
    });

    // ---- 3. Quiescent bit-identity, remote vs in-process. ----------------
    let queries: Vec<(u32, ppq_geo::Point)> = data
        .iter_points()
        .step_by((n_points / 64).max(1))
        .map(|(_, t, p)| (t, p))
        .collect();
    let mut ws = ShardedQueryWorkspace::new();
    let mut bit_identical = true;
    for &(t, p) in &queries {
        let (rv, remote_strq) = writer_conn.strq(t, &p).expect("remote STRQ");
        let (lv, local_strq) = service.strq(t, &p, &mut ws);
        let (rv2, remote_tpq) = writer_conn.tpq(t, &p, TPQ_HORIZON).expect("remote TPQ");
        let (lv2, local_tpq) = service.tpq(t, &p, TPQ_HORIZON, &mut ws);
        if rv != final_version
            || lv != final_version
            || rv2 != final_version
            || lv2 != final_version
        {
            bit_identical = false;
        }
        if remote_strq != local_strq || !tpq_bit_eq(&remote_tpq, &local_tpq) {
            bit_identical = false;
        }
    }
    assert!(
        bit_identical,
        "served answers must bit-match in-process answers at version {final_version}"
    );

    // ---- 4. Maintenance ran on the worker thread, not the ingest path. ---
    let status = service.status();
    let wstats = server.worker_stats().expect("server owns the worker");
    let maintenance_off_ingest_thread =
        wstats.folds > 0 && !status.inline_maintenance && status.worker_attached;
    assert!(
        maintenance_off_ingest_thread,
        "background worker must own maintenance (stats: {wstats:?}, status: {status:?})"
    );
    assert_eq!(
        wstats.maintenance_failures, 0,
        "maintenance failed mid-bench"
    );
    let shed = server.stats().shed;

    // ---- Report. ---------------------------------------------------------
    println!(
        "\n=== PPQ service path (cores={cores}, {n_points} points, {ops} ops @ {rate:.0}/s, {readers} readers, {SHARDS} shards) ==="
    );
    for (name, report) in [
        ("tcp-live", &tcp_live_report),
        ("tcp-read", &tcp_read_report),
        ("inproc-read", &inproc_read_report),
    ] {
        println!(
            "{name}: offered {:.0}/s achieved {:.0}/s over {:.2}s",
            report.offered_ops_per_sec, report.achieved_ops_per_sec, report.wall_seconds
        );
        for (class, stats) in [
            ("strq", &report.strq),
            ("tpq", &report.tpq),
            ("append", &report.append),
        ] {
            if let Some(l) = &stats.latency {
                println!(
                    "  {class}: {} ops, p50 {:.1}us p99 {:.1}us p999 {:.1}us max {:.1}us",
                    stats.ops, l.p50_us, l.p99_us, l.p999_us, l.max_us
                );
            }
        }
    }
    let overhead = |remote: &ClassStats, local: &ClassStats| -> f64 {
        match (&remote.latency, &local.latency) {
            (Some(r), Some(l)) => r.p50_us - l.p50_us,
            _ => 0.0,
        }
    };
    let strq_overhead = overhead(&tcp_read_report.strq, &inproc_read_report.strq);
    let tpq_overhead = overhead(&tcp_read_report.tpq, &inproc_read_report.tpq);
    println!(
        "transport overhead p50: strq {strq_overhead:+.1}us, tpq {tpq_overhead:+.1}us; \
         bit_identical_to_inprocess=true, maintenance folds={} compactions={}, shed={shed}",
        wstats.folds, wstats.compactions
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {cores}, \"profile\": \"release\", \"points\": {n_points}, \"slices\": {}, \"readers\": {readers}, \"shards\": {SHARDS}, \"page_size\": {PAGE_SIZE_BENCH}}},",
        slices.len()
    );
    let _ = writeln!(
        json,
        "    \"note\": \"Service shell over loopback TCP: the open-loop harness drives the wire protocol end to end (length-prefixed frames, handler thread pool) while a dedicated writer connection ingests the dataset's slices and the background maintenance worker folds/compacts/syncs off the ingest thread. tcp_live is the served ingest+query mix; tcp_read and inproc_read fire the identical read-only schedule at the server and at the in-process LiveService, so transport_overhead_p50_us is the wire's price. bit_identical_to_inprocess: after ingest, every sampled query was asked remotely and in-process at the same published version and compared on the full answer structure (all STRQ tiers, TPQ tracks by f64 bits). maintenance_off_ingest_thread: background folds ran with inline maintenance disabled.\","
    );
    let _ = writeln!(json, "    \"mode\": \"inprocess\",");
    let _ = writeln!(
        json,
        "    \"schedule\": {{\"seed\": {SEED}, \"ops\": {ops}, \"rate_per_sec\": {rate:.1}, \"read_fingerprint\": \"{:#018x}\", \"live_fingerprint\": \"{:#018x}\", \"live_appends\": {}}},",
        read_schedule.fingerprint(),
        live_schedule.fingerprint(),
        live_schedule.count(OpKind::Append)
    );
    let _ = writeln!(json, "    \"bit_identical_to_inprocess\": true,");
    let _ = writeln!(json, "    \"maintenance_off_ingest_thread\": true,");
    let _ = writeln!(
        json,
        "    \"maintenance\": {{\"folds\": {}, \"compactions\": {}, \"wal_syncs\": {}, \"publishes\": {}, \"failures\": {}}},",
        wstats.folds, wstats.compactions, wstats.wal_syncs, wstats.publishes, wstats.maintenance_failures
    );
    let _ = writeln!(
        json,
        "    \"transport\": {{\"requests\": {}, \"shed\": {shed}, \"overhead_p50_us\": {{\"strq\": {strq_overhead:.3}, \"tpq\": {tpq_overhead:.3}}}}},",
        server.stats().requests
    );
    for (name, report, trailing_comma) in [
        ("tcp_live", &tcp_live_report, true),
        ("tcp_read", &tcp_read_report, true),
        ("inproc_read", &inproc_read_report, false),
    ] {
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(
            json,
            "      \"wall_seconds\": {:.4}, \"offered_ops_per_sec\": {:.1}, \"achieved_ops_per_sec\": {:.1},",
            report.wall_seconds, report.offered_ops_per_sec, report.achieved_ops_per_sec
        );
        let _ = writeln!(json, "      \"strq\": {},", class_json(&report.strq));
        let _ = writeln!(json, "      \"tpq\": {},", class_json(&report.tpq));
        let _ = writeln!(json, "      \"append\": {}", class_json(&report.append));
        let _ = writeln!(json, "    }}{}", if trailing_comma { "," } else { "" });
    }
    let _ = write!(json, "  }}");
    write_section(&json);

    drop(writer_conn);
    server.shutdown().expect("graceful server shutdown");
    let _ = std::fs::remove_dir_all(&work_dir);
}

// --- External mode: drive an already-running server (CI server smoke). ------

fn external(addr: &str) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let s = scale();
    let data = Arc::new(service_dataset(s));
    let rate = env_f64("PPQ_LOAD_RATE", (1000.0 * s).max(100.0));
    let ops = env_usize("PPQ_LOAD_OPS", ((2000.0 * s).round() as usize).max(200));
    let readers = env_usize("PPQ_LOAD_WORKERS", cores.saturating_sub(1).clamp(1, 4));

    let read_cfg = ScheduleConfig {
        seed: SEED,
        rate_per_sec: rate,
        ops,
        mix: MixConfig::read_only(0.7, 0.3),
        ..ScheduleConfig::default()
    };
    let schedule = Schedule::generate(&data, &read_cfg);
    let remote = RemoteClient::new(addr).expect("resolve PPQ_SERVICE_ADDR");
    eprintln!(
        "service-path external mode against {addr}: rate {rate} ops/s, {ops} ops, {readers} readers"
    );

    let report = run_open_loop(&remote, &schedule, readers, || {
        unreachable!("read-only schedule")
    });

    // Determinism across connections: at a stable version, two
    // independent connections must get bit-identical answers.
    let queries: Vec<(u32, ppq_geo::Point)> = data
        .iter_points()
        .step_by((data.num_points() / 32).max(1))
        .map(|(_, t, p)| (t, p))
        .collect();
    let mut a = RemoteConn::connect(addr).expect("connect");
    let mut b = RemoteConn::connect(addr).expect("connect");
    let mut deterministic = true;
    for &(t, p) in &queries {
        // Retry while the server is still ingesting (versions differ).
        let mut ok = false;
        for _ in 0..50 {
            let (va, sa) = a.strq(t, &p).expect("remote STRQ");
            let (vb, sb) = b.strq(t, &p).expect("remote STRQ");
            if va == vb {
                ok = sa == sb;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        deterministic &= ok;
    }
    assert!(
        deterministic,
        "independent connections diverged at a stable version"
    );
    let stats = a.stats().expect("remote stats");

    println!(
        "\n=== PPQ service path (external {addr}: {ops} ops @ {rate:.0}/s, {readers} readers) ==="
    );
    println!(
        "achieved {:.0}/s over {:.2}s; server next_t={:?} version={} worker_attached={}",
        report.achieved_ops_per_sec,
        report.wall_seconds,
        stats.next_t,
        stats.published_version,
        stats.worker_attached
    );
    for (class, cs) in [("strq", &report.strq), ("tpq", &report.tpq)] {
        if let Some(l) = &cs.latency {
            println!(
                "  {class}: {} ops, p50 {:.1}us p99 {:.1}us p999 {:.1}us",
                cs.ops, l.p50_us, l.p99_us, l.p999_us
            );
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {cores}, \"profile\": \"release\", \"readers\": {readers}}},"
    );
    let _ = writeln!(
        json,
        "    \"note\": \"External mode: read-only open-loop run against an already-running ppq-server (PPQ_SERVICE_ADDR), plus a determinism check that two independent connections answer bit-identically at a stable snapshot version.\","
    );
    let _ = writeln!(json, "    \"mode\": \"external\",");
    let _ = writeln!(json, "    \"deterministic_across_connections\": true,");
    let _ = writeln!(
        json,
        "    \"server\": {{\"published_version\": {}, \"worker_attached\": {}}},",
        stats.published_version, stats.worker_attached
    );
    let _ = writeln!(json, "    \"tcp_read\": {{");
    let _ = writeln!(
        json,
        "      \"wall_seconds\": {:.4}, \"offered_ops_per_sec\": {:.1}, \"achieved_ops_per_sec\": {:.1},",
        report.wall_seconds, report.offered_ops_per_sec, report.achieved_ops_per_sec
    );
    let _ = writeln!(json, "      \"strq\": {},", class_json(&report.strq));
    let _ = writeln!(json, "      \"tpq\": {}", class_json(&report.tpq));
    let _ = writeln!(json, "    }}");
    let _ = write!(json, "  }}");
    write_section(&json);
}
