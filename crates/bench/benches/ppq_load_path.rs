//! Open-loop load harness (`ppq-load`) over the disk and live engines,
//! merged into `BENCH_ppq.json` as the `load_path` section.
//!
//! What it records:
//!
//! 1. **Schedule determinism** — the seeded arrival plan regenerated
//!    under forced 1-thread and 4-thread rayon pools must be
//!    byte-identical ([`Schedule::to_bytes`]); recorded as the
//!    `schedule_deterministic` flag CI gates on, alongside the
//!    schedule's FNV fingerprint for cross-run comparison.
//! 2. **Disk read path** — a read-only STRQ/TPQ mix (Zipf trajectory
//!    popularity + hotspot spatial skew) fired open-loop at the target
//!    rate against [`DiskQueryEngine`] on a freshly written repository.
//!    Latency is scheduled-arrival → completion (coordinated-omission
//!    safe); p50/p99/p999 per class, plus a closed-loop saturation
//!    ceiling.
//! 3. **Live ingest+serve path** — the same query mix with an append
//!    lane: a [`LiveService`] ingests the dataset's time slices (WAL,
//!    folds, auto-compaction, snapshot republish) on the schedule's
//!    append instants while readers query published snapshots.
//!
//! Env knobs: `PPQ_SCALE` (dataset/workload scale), `PPQ_LOAD_RATE`
//! (target ops/s), `PPQ_LOAD_OPS` (ops per run), `PPQ_LOAD_WORKERS`
//! (reader threads). With `PPQ_DATA_DIR` set, the real Porto CSV dump
//! replaces the synthetic dataset (see `ppq_traj::io::real`).

use ppq_bench::report::merge_bench_section;
use ppq_bench::scale;
use ppq_core::{PpqConfig, ShardedSummary, Variant};
use ppq_live::{LiveConfig, LiveService};
use ppq_load::{
    run_open_loop, run_open_loop_scraped, saturation_throughput, ClassStats, MixConfig, OpKind,
    Schedule, ScheduleConfig,
};
use ppq_repo::{DiskQueryEngine, Repo, RepoWriter};
use ppq_traj::io::real::{real_dataset_from_env, RealDataset};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::{Dataset, TrajId};
use std::fmt::Write as _;
use std::sync::Arc;

const PAGE_SIZE_BENCH: usize = 4 << 10;
const SHARDS: usize = 2;
const POOL_PAGES: usize = 128;
const SEED: u64 = 0x10AD_CAFE;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn class_json(stats: &ClassStats) -> String {
    match &stats.latency {
        Some(summary) => format!(
            "{{\"ops\": {}, \"mean_service_us\": {:.3}, \"latency\": {}}}",
            stats.ops,
            stats.mean_service_us,
            summary.json()
        ),
        None => format!("{{\"ops\": {}}}", stats.ops),
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let s = scale();

    // ---- Dataset: real Porto dump behind PPQ_DATA_DIR, else synthetic. --
    let (data, dataset_source) = match real_dataset_from_env(RealDataset::Porto) {
        Some(Ok(d)) => (d, "porto-real"),
        Some(Err(e)) => {
            eprintln!("PPQ_DATA_DIR set but real dataset failed to load ({e}); using synthetic");
            (synthetic(s), "synthetic")
        }
        None => (synthetic(s), "synthetic"),
    };
    let data = Arc::new(data);
    let n_points = data.num_points();
    let slices: Vec<(u32, Vec<(TrajId, ppq_geo::Point)>)> = data
        .time_slices()
        .map(|sl| (sl.t, sl.points.to_vec()))
        .collect();

    let rate = env_f64("PPQ_LOAD_RATE", (2000.0 * s).max(200.0));
    let ops = env_usize("PPQ_LOAD_OPS", ((4000.0 * s).round() as usize).max(400));
    let readers = env_usize("PPQ_LOAD_WORKERS", cores.saturating_sub(1).clamp(1, 4));
    // The live mix cannot schedule more appends than there are slices
    // (slices enter in timestep order, exactly once).
    let append_frac = (0.8 * slices.len() as f64 / ops as f64).min(0.2);

    let read_cfg = ScheduleConfig {
        seed: SEED,
        rate_per_sec: rate,
        ops,
        mix: MixConfig::read_only(0.7, 0.3),
        ..ScheduleConfig::default()
    };
    let live_cfg_sched = ScheduleConfig {
        seed: SEED ^ 1,
        rate_per_sec: rate,
        ops,
        mix: MixConfig {
            strq: (1.0 - append_frac) * 0.7,
            tpq: (1.0 - append_frac) * 0.3,
            append: append_frac,
        },
        ..ScheduleConfig::default()
    };
    eprintln!(
        "load-path dataset: {dataset_source}, {n_points} points, {} trajectories, {} slices; rate {rate} ops/s, {ops} ops, {readers} readers",
        data.num_trajectories(),
        slices.len()
    );

    // ---- 1. Schedule determinism across forced thread counts. -----------
    let read_schedule = Schedule::generate(&data, &read_cfg);
    let live_schedule = Schedule::generate(&data, &live_cfg_sched);
    let schedule_deterministic = {
        let one = rayon::with_thread_count(1, || {
            (
                Schedule::generate(&data, &read_cfg).to_bytes(),
                Schedule::generate(&data, &live_cfg_sched).to_bytes(),
            )
        });
        let four = rayon::with_thread_count(4, || {
            (
                Schedule::generate(&data, &read_cfg).to_bytes(),
                Schedule::generate(&data, &live_cfg_sched).to_bytes(),
            )
        });
        one == four && one.0 == read_schedule.to_bytes() && one.1 == live_schedule.to_bytes()
    };
    assert!(
        schedule_deterministic,
        "schedule generation must be thread-count independent"
    );

    let ppq = PpqConfig::variant(Variant::PpqS, 0.1);
    let gc = ppq.tpi.pi.gc;
    let work_dir = std::env::temp_dir().join(format!("ppq-load-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);

    // ---- 2. Open-loop against the disk-resident engine (read-only). -----
    let summary = ShardedSummary::build(&data, &ppq, SHARDS);
    let repo_dir = work_dir.join("repo");
    RepoWriter::with_page_size(&repo_dir, PAGE_SIZE_BENCH)
        .write_sharded(&summary)
        .expect("write repository");
    let repo = Repo::open(&repo_dir, POOL_PAGES).expect("open repository");
    let disk_engine = DiskQueryEngine::new(&repo, &data, gc);
    let disk_report = run_open_loop(&disk_engine, &read_schedule, readers, || {
        unreachable!("read-only schedule")
    });
    let disk_saturation = saturation_throughput(
        &disk_engine,
        &read_schedule,
        readers,
        (ops / readers.max(1)).clamp(100, 2000),
    );

    // ---- 3. Open-loop against the live ingest+serve service. ------------
    let live_dir = work_dir.join("live");
    let mut live_cfg = LiveConfig::new(ppq.clone(), SHARDS);
    live_cfg.page_size = PAGE_SIZE_BENCH;
    live_cfg.fold_every = 16;
    live_cfg.compact_max_chain = 4;
    let service =
        LiveService::open(&live_dir, live_cfg, data.clone(), 8).expect("open live service");
    let mut next_slice = 0usize;
    // The scrape lane polls the process-wide metrics registry while the
    // schedule plays — the same closure shape a TCP run uses with
    // `RemoteConn::metrics` (the `ppq_obs_path` bench does exactly
    // that); here the target is in-process, so the registry *is* the
    // server side.
    let (live_report, live_scrape) = run_open_loop_scraped(
        &service,
        &live_schedule,
        readers,
        || {
            if next_slice < slices.len() {
                let (t, points) = &slices[next_slice];
                service.push_slice(*t, points).expect("in-order append");
                next_slice += 1;
            }
        },
        std::time::Duration::from_millis(50),
        || Some(ppq_obs::snapshot()),
    );
    assert!(
        service.status().last_maintenance_error.is_none(),
        "maintenance must not fail in a fault-free bench run"
    );

    // ---- Server-vs-client agreement from the scrape. --------------------
    // The engine-side span population: every client STRQ records one
    // `ppq_strq_ns` sample, and every client TPQ records one
    // `ppq_tpq_ns` sample *plus* one `ppq_strq_ns` sample (TPQ runs its
    // selection STRQ through the same entry point). Counts must match
    // exactly; and because the engine span is strictly inside the
    // client's scheduled-arrival → completion window, the engine's TPQ
    // p50 cannot exceed the client's (modulo ≤1.6% histogram
    // quantization on each side).
    let scrape = live_scrape.expect("in-process scrape cannot fail");
    let engine_strq = scrape
        .histogram_count_delta("ppq_strq_ns")
        .expect("strq histogram registered");
    let engine_tpq = scrape
        .histogram_count_delta("ppq_tpq_ns")
        .expect("tpq histogram registered");
    let counts_match = engine_strq == live_report.strq.ops + live_report.tpq.ops
        && engine_tpq == live_report.tpq.ops;
    assert!(
        counts_match,
        "engine span counts diverge from client completions: \
         engine strq {engine_strq} vs client {}+{}, engine tpq {engine_tpq} vs client {}",
        live_report.strq.ops, live_report.tpq.ops, live_report.tpq.ops
    );
    let server_tpq_p50_us = scrape
        .after
        .histogram("ppq_tpq_ns")
        .map_or(0.0, |h| h.p50_ns as f64 / 1_000.0);
    let client_tpq_p50_us = live_report
        .tpq
        .latency
        .as_ref()
        .map_or(f64::INFINITY, |l| l.p50_us);
    let server_not_slower = server_tpq_p50_us <= client_tpq_p50_us * 1.05 + 1.0;
    assert!(
        server_not_slower,
        "engine-side p50 ({server_tpq_p50_us:.1}us) exceeds client-observed p50 \
         ({client_tpq_p50_us:.1}us) — the span is inside the client window, impossible"
    );
    service.publish();
    let live_saturation = saturation_throughput(
        &service,
        &live_schedule,
        readers,
        (ops / readers.max(1)).clamp(100, 2000),
    );

    // ---- Report. --------------------------------------------------------
    println!(
        "\n=== PPQ load path (cores={cores}, {n_points} points, {ops} ops @ {rate:.0}/s, {readers} readers, {SHARDS} shards) ==="
    );
    println!(
        "schedule: deterministic={schedule_deterministic}, fingerprints {:#018x} / {:#018x}",
        read_schedule.fingerprint(),
        live_schedule.fingerprint()
    );
    for (name, report, saturation) in [
        ("disk", &disk_report, disk_saturation),
        ("live", &live_report, live_saturation),
    ] {
        println!(
            "{name}: offered {:.0}/s achieved {:.0}/s saturation {:.0}/s over {:.2}s",
            report.offered_ops_per_sec,
            report.achieved_ops_per_sec,
            saturation,
            report.wall_seconds
        );
        for (class, stats) in [
            ("strq", &report.strq),
            ("tpq", &report.tpq),
            ("append", &report.append),
        ] {
            if let Some(l) = &stats.latency {
                println!(
                    "  {class}: {} ops, p50 {:.1}us p99 {:.1}us p999 {:.1}us max {:.1}us",
                    stats.ops, l.p50_us, l.p99_us, l.p999_us, l.max_us
                );
            }
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {cores}, \"profile\": \"release\", \"points\": {n_points}, \"slices\": {}, \"readers\": {readers}, \"shards\": {SHARDS}, \"page_size\": {PAGE_SIZE_BENCH}}},",
        slices.len()
    );
    let _ = writeln!(
        json,
        "    \"note\": \"Open-loop load harness: a precomputed seeded schedule (Poisson arrivals at rate_per_sec, Zipf trajectory popularity, hotspot-cell spatial skew) fired against the disk engine (read-only STRQ/TPQ) and a LiveService (same mix plus an append lane ingesting the dataset's time slices through WAL/fold/compaction with snapshot republish). Latencies are recorded from *scheduled arrival* to completion — the coordinated-omission-safe convention — into log-linear histograms; saturation_ops_per_sec is a closed-loop ceiling measured with zero think time. schedule_deterministic asserts the plan is byte-identical regenerated under forced 1-thread and 4-thread pools.\","
    );
    let _ = writeln!(json, "    \"dataset\": \"{dataset_source}\",");
    let _ = writeln!(
        json,
        "    \"schedule_deterministic\": {schedule_deterministic},"
    );
    let _ = writeln!(
        json,
        "    \"schedule\": {{\"seed\": {SEED}, \"ops\": {ops}, \"rate_per_sec\": {rate:.1}, \"read_fingerprint\": \"{:#018x}\", \"live_fingerprint\": \"{:#018x}\", \"live_appends\": {}}},",
        read_schedule.fingerprint(),
        live_schedule.fingerprint(),
        live_schedule.count(OpKind::Append)
    );
    let _ = writeln!(
        json,
        "    \"observability\": {{\"scrape_samples\": {}, \"engine_strq_samples\": {engine_strq}, \"engine_tpq_samples\": {engine_tpq}, \"client_strq_completions\": {}, \"client_tpq_completions\": {}, \"counts_match\": {counts_match}, \"server_tpq_p50_us\": {server_tpq_p50_us:.3}, \"client_tpq_p50_us\": {client_tpq_p50_us:.3}, \"server_not_slower_than_client\": {server_not_slower}}},",
        scrape.samples, live_report.strq.ops, live_report.tpq.ops
    );
    for (name, report, saturation, trailing_comma) in [
        ("disk", &disk_report, disk_saturation, true),
        ("live", &live_report, live_saturation, false),
    ] {
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(
            json,
            "      \"wall_seconds\": {:.4}, \"offered_ops_per_sec\": {:.1}, \"achieved_ops_per_sec\": {:.1}, \"saturation_ops_per_sec\": {:.1},",
            report.wall_seconds, report.offered_ops_per_sec, report.achieved_ops_per_sec, saturation
        );
        let _ = writeln!(json, "      \"strq\": {},", class_json(&report.strq));
        let _ = writeln!(json, "      \"tpq\": {},", class_json(&report.tpq));
        let _ = writeln!(json, "      \"append\": {}", class_json(&report.append));
        let _ = writeln!(json, "    }}{}", if trailing_comma { "," } else { "" });
    }
    let _ = write!(json, "  }}");

    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = merge_bench_section(&existing, "load_path", &json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (load_path section)");

    drop(service);
    let _ = std::fs::remove_dir_all(&work_dir);
}

fn synthetic(s: f64) -> Dataset {
    porto_like(&PortoConfig {
        trajectories: ((800.0 * s).round() as usize).max(50),
        mean_len: 60,
        min_len: 30,
        start_spread: 60,
        seed: 0x10AD,
    })
}
