//! Criterion micro-benchmarks for the hot components: quantizer
//! assignment/growth, CQC encode/decode, grid-index construction,
//! Huffman ID-list compression, and least-squares predictor fitting.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ppq_cqc::CqcTemplate;
use ppq_geo::{BBox, Point};
use ppq_predict::linear::{fit_predictor, TrainingRow};
use ppq_quantize::IncrementalQuantizer;
use ppq_sindex::{CompressedIdList, GridIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn points(n: usize, spread: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(-spread..spread),
                rng.gen_range(-spread..spread),
            )
        })
        .collect()
}

fn bench_quantizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantizer");
    g.sample_size(10);
    // ε = 0.2 over a ±1 spread ≈ 80 codewords — the regime PPQ's
    // prediction errors actually live in (errors concentrate near zero).
    let batch = points(2000, 1.0, 1);
    g.bench_function("assign_2k_warm", |b| {
        let mut q = IncrementalQuantizer::new(0.2);
        q.quantize_batch(&batch); // warm the codebook
        b.iter(|| {
            let mut qq = q.clone();
            black_box(qq.quantize_batch(black_box(&batch)))
        })
    });
    g.bench_function("grow_2k_cold", |b| {
        b.iter_batched(
            || IncrementalQuantizer::new(0.2),
            |mut q| black_box(q.quantize_batch(black_box(&batch))),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cqc(c: &mut Criterion) {
    let mut g = c.benchmark_group("cqc");
    g.sample_size(15);
    let tpl = CqcTemplate::new(0.001, 0.001 / 11.0);
    let devs = points(1000, 0.001, 2);
    g.bench_function("encode_1k", |b| {
        b.iter(|| {
            for d in &devs {
                black_box(tpl.encode(black_box(*d)));
            }
        })
    });
    let codes: Vec<_> = devs.iter().map(|d| tpl.encode(*d)).collect();
    g.bench_function("decode_1k", |b| {
        b.iter(|| {
            for code in &codes {
                black_box(tpl.decode(black_box(*code)));
            }
        })
    });
    g.finish();
}

fn bench_sindex(c: &mut Criterion) {
    let mut g = c.benchmark_group("sindex");
    g.sample_size(10);
    let pts: Vec<(u32, Point)> = points(5000, 50.0, 3)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u32, p))
        .collect();
    let region = BBox::from_extents(-50.0, -50.0, 50.0, 50.0);
    g.bench_function("grid_index_build_5k", |b| {
        b.iter(|| black_box(GridIndex::build(region, 1.0, black_box(&pts))))
    });
    let ids: Vec<u32> = (0..2000u32).map(|i| i * 3 + (i % 7)).collect();
    g.bench_function("idlist_compress_2k", |b| {
        b.iter(|| black_box(CompressedIdList::compress(black_box(&ids))))
    });
    let compressed = CompressedIdList::compress(&ids);
    g.bench_function("idlist_decompress_2k", |b| {
        b.iter(|| black_box(compressed.decompress()))
    });
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("predict");
    g.sample_size(15);
    let mut rng = StdRng::seed_from_u64(4);
    let histories: Vec<[Point; 3]> = (0..500)
        .map(|_| {
            [
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
            ]
        })
        .collect();
    let rows: Vec<TrainingRow> = histories
        .iter()
        .map(|h| TrainingRow {
            target: h[0] * 2.0 - h[1] + h[2] * 0.1,
            history: &h[..],
        })
        .collect();
    g.bench_function("fit_k3_500rows", |b| {
        b.iter(|| black_box(fit_predictor(black_box(&rows), 3)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_quantizer,
    bench_cqc,
    bench_sindex,
    bench_predict
);
criterion_main!(benches);
