//! Serial-vs-parallel (and optimized-vs-seed) throughput for the PPQ
//! build path, recorded to `BENCH_ppq.json` at the workspace root.
//!
//! Workloads on ≥100k-point synthetic datasets, each measured three ways
//! where a reference exists: the pre-optimization *reference* path (the
//! seed's AoS point-outer kernels, per-iteration allocations, and
//! from-scratch quadratic bounded growth, reproduced below
//! verbatim-in-spirit), the current path forced serial
//! (`RAYON_NUM_THREADS=1`), and the current path at the machine's
//! default thread count:
//!
//! 1. **kmeans** — one full Lloyd fit over the point cloud.
//! 2. **Codebook build** — `bounded_kmeans`, the primitive behind PPQ
//!    partitioning and codeword growth (the seed schedule is quadratic in
//!    the final codeword count, so it runs once; the ratio dwarfs noise).
//! 3. **Product-quantizer fit** — the per-axis scalar codebooks.
//! 4. **Ingest quantize phase** — the incremental quantizer over a
//!    per-step error stream (~97% of streaming ingest time).
//! 5. **Ingest end-to-end** — `PpqStream::push_slice` over a wide dataset
//!    (thousands of concurrent trajectories per timestep).
//!
//! Every serial/parallel pair is also checked for bit-identical output —
//! the determinism contract the quantize kernels advertise.
//!
//! Thread-count control uses the rayon shim's `with_thread_count`
//! (an in-process override; no environment mutation); with upstream
//! rayon this bench would need to fork per configuration instead.

use ppq_bench::report::time_median;
use ppq_core::{PpqConfig, PpqStream, Variant};
use ppq_geo::Point;
use ppq_quantize::{bounded_kmeans, kmeans, IncrementalQuantizer, KMeansConfig, ProductQuantizer};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::Dataset;
use std::fmt::Write as _;

/// The seed's pre-SoA kernels and pre-optimization growth schedule, kept
/// as the honest baseline for the recorded speedup numbers.
mod reference {
    use ppq_geo::Point;
    use ppq_quantize::{GridNN, KMeansConfig};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn init_centroids(points: &[Point], k: usize, seed: u64) -> Vec<Point> {
        let mut state = seed ^ (points.len() as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut centroids = Vec::with_capacity(k);
        centroids.push(points[(splitmix64(&mut state) as usize) % points.len()]);
        while centroids.len() < k.min(8) {
            let mut far_idx = 0;
            let mut far_d = -1.0;
            let stride = (points.len() / 512).max(1);
            let mut i = (splitmix64(&mut state) as usize) % stride.max(1);
            while i < points.len() {
                let p = &points[i];
                let d = centroids
                    .iter()
                    .map(|c| p.dist2(c))
                    .fold(f64::INFINITY, f64::min);
                if d > far_d {
                    far_d = d;
                    far_idx = i;
                }
                i += stride;
            }
            centroids.push(points[far_idx]);
        }
        while centroids.len() < k {
            centroids.push(points[(splitmix64(&mut state) as usize) % points.len()]);
        }
        centroids
    }

    fn assign_all(points: &[Point], centroids: &[Point], assign: &mut [u32]) {
        for (p, slot) in points.iter().zip(assign.iter_mut()) {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d = p.dist2(cent);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            *slot = best;
        }
    }

    /// The seed's Lloyd loop: AoS input, point-outer branchy assignment,
    /// `sums`/`counts` reallocated every iteration.
    pub fn kmeans(points: &[Point], k: usize, cfg: &KMeansConfig) -> (Vec<Point>, Vec<u32>) {
        let k = k.clamp(1, points.len());
        let mut centroids = init_centroids(points, k, cfg.seed);
        let mut assign = vec![0u32; points.len()];
        for _ in 0..cfg.max_iters {
            assign_all(points, &centroids, &mut assign);
            let mut sums = vec![Point::ORIGIN; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                let a = assign[i] as usize;
                sums[a] += *p;
                counts[a] += 1;
            }
            let mut moved: f64 = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    let (wi, _) = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, p.dist2(&centroids[assign[i] as usize])))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                        .unwrap();
                    centroids[c] = points[wi];
                    moved = f64::INFINITY;
                    continue;
                }
                let new_c = sums[c] / counts[c] as f64;
                moved += centroids[c].dist2(&new_c);
                centroids[c] = new_c;
            }
            if moved <= cfg.tol * cfg.tol {
                break;
            }
        }
        assign_all(points, &centroids, &mut assign);
        (centroids, assign)
    }

    /// The seed's bounded growth: restart k-means from scratch with
    /// `q + grow_step` clusters per round (quadratic in the final count).
    pub fn bounded_kmeans(
        points: &[Point],
        bound: f64,
        cfg: &KMeansConfig,
    ) -> (Vec<Point>, Vec<u32>) {
        let mut q = 1;
        loop {
            let (centroids, assign) = kmeans(points, q, cfg);
            let worst = points
                .iter()
                .zip(&assign)
                .map(|(p, &a)| p.dist(&centroids[a as usize]))
                .fold(0.0f64, f64::max);
            if worst <= bound {
                return (centroids, assign);
            }
            if q >= points.len() || q + cfg.grow_step > cfg.max_clusters {
                let (mut centroids, mut assign) = (centroids, assign);
                for (i, p) in points.iter().enumerate() {
                    if p.dist(&centroids[assign[i] as usize]) > bound {
                        centroids.push(*p);
                        assign[i] = (centroids.len() - 1) as u32;
                    }
                }
                return (centroids, assign);
            }
            q += cfg.grow_step;
        }
    }

    /// The seed's incremental quantize loop: probe, then grow the codebook
    /// for the uncovered remainder with the from-scratch bounded k-means.
    pub fn quantize_batches(batches: &[Vec<Point>], eps: f64, cfg: &KMeansConfig) -> usize {
        let mut nn = GridNN::new(eps);
        let mut words: Vec<Point> = Vec::new();
        for batch in batches {
            let uncovered: Vec<Point> = batch
                .iter()
                .filter(|e| nn.nearest_within_eps(e).is_none())
                .copied()
                .collect();
            if uncovered.is_empty() {
                continue;
            }
            let (centroids, assign) = bounded_kmeans(&uncovered, eps, cfg);
            let mut used = vec![false; centroids.len()];
            for &a in &assign {
                used[a as usize] = true;
            }
            for (c, centroid) in centroids.iter().enumerate() {
                if used[c] {
                    nn.insert(words.len() as u32, *centroid);
                    words.push(*centroid);
                }
            }
        }
        words.len()
    }

    /// The seed's 1-D Lloyd loop (per-iteration allocations, value-outer).
    pub fn kmeans_1d(values: &[f64], k: usize, iters: usize) -> (Vec<f64>, Vec<u32>) {
        let k = k.clamp(1, values.len());
        let (lo, hi) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        let mut cents: Vec<f64> = (0..k)
            .map(|i| {
                if k == 1 {
                    (lo + hi) * 0.5
                } else {
                    lo + (hi - lo) * i as f64 / (k - 1) as f64
                }
            })
            .collect();
        let mut assign = vec![0u32; values.len()];
        for _ in 0..iters {
            for (i, &v) in values.iter().enumerate() {
                let mut best = 0u32;
                let mut bd = f64::INFINITY;
                for (c, &cc) in cents.iter().enumerate() {
                    let d = (v - cc).abs();
                    if d < bd {
                        bd = d;
                        best = c as u32;
                    }
                }
                assign[i] = best;
            }
            let mut sums = vec![0.0f64; k];
            let mut counts = vec![0usize; k];
            for (i, &v) in values.iter().enumerate() {
                sums[assign[i] as usize] += v;
                counts[assign[i] as usize] += 1;
            }
            let mut moved = 0.0;
            for c in 0..k {
                if counts[c] > 0 {
                    let nc = sums[c] / counts[c] as f64;
                    moved += (nc - cents[c]).abs();
                    cents[c] = nc;
                } else {
                    let (wi, _) = values
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (i, (v - cents[assign[i] as usize]).abs()))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                        .unwrap();
                    cents[c] = values[wi];
                    moved = f64::INFINITY;
                }
            }
            if moved < 1e-12 {
                break;
            }
        }
        for (i, &v) in values.iter().enumerate() {
            let mut best = 0u32;
            let mut bd = f64::INFINITY;
            for (c, &cc) in cents.iter().enumerate() {
                let d = (v - cc).abs();
                if d < bd {
                    bd = d;
                    best = c as u32;
                }
            }
            assign[i] = best;
        }
        (cents, assign)
    }
}

/// Median-of-`runs` wall-clock seconds for `f` (result of the last run
/// returned for output checks).
fn points_eq(a: &[Point], b: &[Point]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(p, q)| p.x.to_bits() == q.x.to_bits() && p.y.to_bits() == q.y.to_bits())
}

/// A wide dataset: many concurrent walkers so per-step slices are in the
/// parallel regime (~`trajectories` points per timestep). `PPQ_SCALE`
/// shrinks it proportionally for smoke runs (CI runs the bench at tiny
/// scale to catch report regressions).
fn wide_dataset(trajectories: usize) -> Dataset {
    let trajectories = ((trajectories as f64 * ppq_bench::scale()).round() as usize).max(50);
    porto_like(&PortoConfig {
        trajectories,
        mean_len: 30,
        min_len: 20,
        start_spread: 8,
        seed: 0x9EED,
    })
}

struct Entry {
    name: String,
    reference_s: Option<f64>,
    serial_s: f64,
    parallel_s: f64,
    bit_identical: bool,
    detail: String,
}

fn main() {
    let runs: usize = std::env::var("PPQ_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads_default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut entries: Vec<Entry> = Vec::new();

    // ---- Workload 1: codebook build over >=100k points. ----------------
    let data = wide_dataset(4000);
    let all_points: Vec<Point> = data.iter_points().map(|(_, _, p)| p).collect();
    let n = all_points.len();
    assert!(
        n >= 100_000 || ppq_bench::scale() < 1.0,
        "dataset too small: {n}"
    );
    eprintln!("codebook-build dataset: {n} points");

    let cfg = KMeansConfig::default();
    let k = 64;
    let (ref_s, ref_out) = time_median(runs, || reference::kmeans(&all_points, k, &cfg));
    let (ser_s, ser_out) = time_median(runs, || {
        rayon::with_thread_count(1, || kmeans(&all_points, k, &cfg))
    });
    let (par_s, par_out) = time_median(runs, || kmeans(&all_points, k, &cfg));
    entries.push(Entry {
        name: format!("kmeans_k{k}_n{n}"),
        reference_s: Some(ref_s),
        serial_s: ser_s,
        parallel_s: par_s,
        bit_identical: points_eq(&ser_out.0, &par_out.0) && ser_out.1 == par_out.1,
        detail: format!(
            "reference centroids match serial: {}",
            points_eq(&ref_out.0, &ser_out.0)
        ),
    });

    // Bounded growth — the codebook-build primitive behind PPQ
    // partitioning and codeword growth. The reference (seed) schedule is
    // quadratic in the final codeword count, so it runs once; the ratio
    // dwarfs run-to-run noise.
    let bound = 0.02;
    let (bref_s, bref_out) = time_median(1, || reference::bounded_kmeans(&all_points, bound, &cfg));
    let (bser_s, bser_out) = time_median(runs, || {
        rayon::with_thread_count(1, || bounded_kmeans(&all_points, bound, &cfg))
    });
    let (bpar_s, bpar_out) = time_median(runs, || bounded_kmeans(&all_points, bound, &cfg));
    entries.push(Entry {
        name: format!("bounded_kmeans_eps{bound}_n{n}"),
        reference_s: Some(bref_s),
        serial_s: bser_s,
        parallel_s: bpar_s,
        bit_identical: points_eq(&bser_out.centroids, &bpar_out.centroids)
            && bser_out.assign == bpar_out.assign,
        detail: format!(
            "{} codewords, {} rounds (reference: {} codewords)",
            bser_out.centroids.len(),
            bser_out.rounds,
            bref_out.0.len()
        ),
    });

    // ---- Workload 2: product-quantizer fit. ----------------------------
    let words = 64;
    let (pref_s, pref_out) = time_median(runs, || {
        let xs: Vec<f64> = all_points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = all_points.iter().map(|p| p.y).collect();
        let (xw, xc) = reference::kmeans_1d(&xs, words, 16);
        let (yw, yc) = reference::kmeans_1d(&ys, words, 16);
        (xw, xc, yw, yc)
    });
    let (pser_s, pser_out) = time_median(runs, || {
        rayon::with_thread_count(1, || ProductQuantizer::fit(&all_points, words))
    });
    let (ppar_s, ppar_out) = time_median(runs, || ProductQuantizer::fit(&all_points, words));
    entries.push(Entry {
        name: format!("product_fit_w{words}_n{n}"),
        reference_s: Some(pref_s),
        serial_s: pser_s,
        parallel_s: ppar_s,
        bit_identical: pser_out.x_codes == ppar_out.x_codes
            && pser_out.y_codes == ppar_out.y_codes
            && pser_out.x_words == ppar_out.x_words
            && pser_out.y_words == ppar_out.y_words,
        detail: format!(
            "reference words match serial: {}",
            pref_out.0 == pser_out.x_words && pref_out.2 == pser_out.y_words
        ),
    });

    // ---- Workload 3: the ingest quantize phase, seed vs now. -----------
    // The quantize phase is ~97% of streaming ingest. Feed both the seed
    // quantize loop (from-scratch bounded growth) and the current
    // `IncrementalQuantizer` the same per-step error stream: consecutive
    // position deltas of the wide dataset, a faithful stand-in for
    // last-value prediction errors.
    let delta_data = wide_dataset(4000);
    let mut prev: std::collections::HashMap<u32, Point> = std::collections::HashMap::new();
    let mut batches: Vec<Vec<Point>> = Vec::new();
    for slice in delta_data.time_slices() {
        let mut batch = Vec::new();
        for &(id, p) in slice.points {
            if let Some(q) = prev.get(&id) {
                batch.push(p - *q);
            }
            prev.insert(id, p);
        }
        if !batch.is_empty() {
            batches.push(batch);
        }
        if batches.len() >= 16 {
            break;
        }
    }
    let mut mags: Vec<f64> = batches.iter().flatten().map(|e| e.norm()).collect();
    let eps_q = (ppq_bench::report::median(&mut mags) / 12.0).max(1e-9);
    let q_points: usize = batches.iter().map(Vec::len).sum();
    eprintln!(
        "quantize-proxy: {} batches, {} errors, eps={eps_q:.2e}",
        batches.len(),
        q_points
    );
    let (qref_s, qref_words) =
        time_median(1, || reference::quantize_batches(&batches, eps_q, &cfg));
    let run_quant = || {
        let mut q = IncrementalQuantizer::with_config(eps_q, cfg.clone());
        let codes: Vec<Vec<u32>> = batches.iter().map(|b| q.quantize_batch(b)).collect();
        (codes, q.codebook().len())
    };
    let (qser_s, (qser_codes, qser_words)) =
        time_median(runs, || rayon::with_thread_count(1, run_quant));
    let (qpar_s, (qpar_codes, qpar_words)) = time_median(runs, run_quant);
    entries.push(Entry {
        name: format!("ingest_quantize_phase_n{q_points}"),
        reference_s: Some(qref_s),
        serial_s: qser_s,
        parallel_s: qpar_s,
        bit_identical: qser_codes == qpar_codes && qser_words == qpar_words,
        detail: format!("{qser_words} codewords (reference: {qref_words})"),
    });

    // ---- Workload 4: streaming ingest. ---------------------------------
    let ingest_data = wide_dataset(6000);
    let ingest_points = ingest_data.num_points();
    eprintln!("ingest dataset: {ingest_points} points");
    let mut ppq_cfg = PpqConfig::variant(Variant::PpqS, 0.05);
    ppq_cfg.build_index = false;
    let ingest = |cfg: &PpqConfig| {
        let mut stream = PpqStream::new(cfg.clone());
        for slice in ingest_data.time_slices() {
            stream.push_slice(slice.t, slice.points);
        }
        stream.finish()
    };
    let (iser_s, iser_sum) = time_median(runs, || rayon::with_thread_count(1, || ingest(&ppq_cfg)));
    let (ipar_s, ipar_sum) = time_median(runs, || ingest(&ppq_cfg));
    let ingest_identical = iser_sum.num_points() == ipar_sum.num_points()
        && iser_sum.codebook_len() == ipar_sum.codebook_len()
        && ingest_data.trajectories().iter().all(|t| {
            (0..t.len()).all(|off| {
                let ts = t.start + off as u32;
                match (
                    iser_sum.reconstruct(t.id, ts),
                    ipar_sum.reconstruct(t.id, ts),
                ) {
                    (Some(a), Some(b)) => {
                        a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
                    }
                    _ => false,
                }
            })
        });
    entries.push(Entry {
        name: format!("ingest_ppqs_n{ingest_points}"),
        reference_s: None,
        serial_s: iser_s,
        parallel_s: ipar_s,
        bit_identical: ingest_identical,
        detail: format!(
            "{} codewords; {:.0} kpts/s serial, {:.0} kpts/s parallel",
            iser_sum.codebook_len(),
            ingest_points as f64 / iser_s / 1e3,
            ingest_points as f64 / ipar_s / 1e3
        ),
    });

    // ---- Report. -------------------------------------------------------
    println!("\n=== PPQ build-path speedup (runs={runs}, cores={threads_default}) ===");
    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>9} {:>9}  bit-identical",
        "workload", "reference(s)", "serial(s)", "parallel(s)", "ref/ser", "ser/par"
    );
    for e in &entries {
        println!(
            "{:<34} {:>12} {:>12.4} {:>12.4} {:>9} {:>9.2} {:>8}   {}",
            e.name,
            e.reference_s
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "-".into()),
            e.serial_s,
            e.parallel_s,
            e.reference_s
                .map(|r| format!("{:.2}", r / e.serial_s))
                .unwrap_or_else(|| "-".into()),
            e.serial_s / e.parallel_s,
            e.bit_identical,
            e.detail
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {threads_default}, \"runs\": {runs}, \"profile\": \"release\"}},"
    );
    let _ = writeln!(
        json,
        "    \"note\": \"reference = seed implementation (scalar AoS kernels, per-iteration allocations, from-scratch quadratic bounded growth); serial = current path with RAYON_NUM_THREADS=1; parallel = current path at default threads. On a single-core runner serial==parallel by design; speedup_vs_reference captures the SoA register-blocked kernels, allocation-lean workspaces, and violator-seeded growth schedule.\","
    );
    let _ = writeln!(json, "    \"workloads\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"name\": \"{}\",", e.name);
        if let Some(r) = e.reference_s {
            let _ = writeln!(json, "        \"reference_seconds\": {r:.6},");
            let _ = writeln!(
                json,
                "        \"speedup_vs_reference\": {:.3},",
                r / e.serial_s.min(e.parallel_s)
            );
        }
        let _ = writeln!(json, "        \"serial_seconds\": {:.6},", e.serial_s);
        let _ = writeln!(json, "        \"parallel_seconds\": {:.6},", e.parallel_s);
        let _ = writeln!(
            json,
            "        \"parallel_speedup\": {:.3},",
            e.serial_s / e.parallel_s
        );
        let _ = writeln!(json, "        \"bit_identical\": {},", e.bit_identical);
        let _ = writeln!(json, "        \"detail\": \"{}\"", e.detail);
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = write!(json, "  }}");

    // Merge as the `build_path` section so the companion
    // `ppq_query_speedup` results survive a build-path re-run (and vice
    // versa).
    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = ppq_bench::report::merge_bench_section(&existing, "build_path", &json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (build_path section)");
}
