//! Table 2 — Quality of summaries and STRQ evaluation.
//!
//! Protocol (paper §6.2.1): the PPQ variants are built error-bounded with
//! the default ε₁; the per-timestep baselines receive the same number of
//! codewords per timestep as PPQ-A referenced (budget parity); TrajStore
//! receives the summed budget distributed per cell. Reported per method ×
//! dataset: summary MAE (m), STRQ precision, STRQ recall. The CQC methods
//! answer with local search + refinement (P = R = 1 by construction);
//! everything else answers approximately from its reconstructions.

use ppq_bench::methods::build_error_bounded;
use ppq_bench::report::sig;
use ppq_bench::{
    geolife_bench, porto_bench, sample_queries, AnySummary, MethodKind, Table, ALL_MAIN_METHODS,
};
use ppq_core::query::{precision_recall, QueryEngine};
use ppq_core::PpqConfig;
use ppq_traj::{Dataset, DatasetStats};

fn evaluate(dataset: &Dataset, name: &str, table: &mut Table, queries: usize) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    // Budget parity source: PPQ-A's distinct codewords per step.
    let ppq_a = build_error_bounded(MethodKind::PpqA, dataset, None, true);
    let parity: Vec<(u32, u32)> = match &ppq_a {
        AnySummary::Ppq(s) => s.stats().codewords_per_step.clone(),
        AnySummary::Baseline(_) => unreachable!(),
    };
    let qs = sample_queries(dataset, queries, 0xBEEF);
    let gc = PpqConfig::default().tpi.pi.gc;
    for kind in ALL_MAIN_METHODS {
        let built = if kind == MethodKind::PpqA {
            match &ppq_a {
                AnySummary::Ppq(s) => AnySummary::Ppq(s.clone()),
                AnySummary::Baseline(_) => unreachable!(),
            }
        } else {
            build_error_bounded(kind, dataset, Some(&parity), true)
        };
        let engine = QueryEngine::new(built.as_index(), dataset, gc);
        let (mut p_sum, mut r_sum) = (0.0, 0.0);
        for (t, p) in &qs {
            let out = engine.strq(*t, p);
            let returned = if kind.has_cqc() {
                &out.exact
            } else {
                &out.approx
            };
            let (prec, rec) = precision_recall(returned, &out.truth);
            p_sum += prec;
            r_sum += rec;
        }
        let n = qs.len() as f64;
        table.row(vec![
            name.into(),
            kind.name().into(),
            sig(built.mae_meters(dataset)),
            format!("{:.3}", p_sum / n),
            format!("{:.3}", r_sum / n),
        ]);
    }
}

fn main() {
    let queries = if ppq_bench::scale() < 0.5 { 100 } else { 400 };
    let mut table = Table::new(
        "Table 2: Quality of summaries and STRQ evaluation",
        &["Dataset", "Method", "MAE(m)", "Precision", "Recall"],
    );
    let porto = porto_bench();
    evaluate(&porto, "Porto", &mut table, queries);
    let geolife = geolife_bench();
    evaluate(&geolife, "Geolife", &mut table, queries);
    table.emit("table2_strq");
}
