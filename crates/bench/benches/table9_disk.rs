//! Table 9 — Disk-based index performance: TPI vs PI vs TrajStore.
//!
//! Protocol (paper §6.5): all three indexes are built over the **raw**
//! trajectory points and paged at 1 MiB; queries are sorted by start time
//! (locality for the buffer pool); reported: index size, number of page
//! I/Os over the query batch, total response time, and building time.
//! PI is TPI with ε_d forced below 0 so every timestep re-builds.

use ppq_baselines::trajstore::{build_trajstore, DiskTrajStore, TrajStoreConfig, TsBudget};
use ppq_bench::report::secs;
use ppq_bench::{geolife_bench, porto_bench, sample_queries, Table};
use ppq_tpi::{DiskTpi, Tpi, TpiConfig};
use ppq_traj::{Dataset, DatasetStats};
use std::time::Instant;

const POOL_PAGES: usize = 32;

/// The paper pages at 1 MiB over ~74 M points. Our datasets are ~1500×
/// smaller, so the page is scaled to 4 KiB to keep the pages-per-period /
/// pages-per-cell geometry in the regime the paper measured (a period or
/// quadtree cell spans multiple pages). See EXPERIMENTS.md.
const PAGE_SIZE_BENCH: usize = 4 << 10;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ppq-table9-{name}-{}", std::process::id()));
    p
}

fn evaluate(dataset: &Dataset, name: &str, table: &mut Table, queries_n: usize) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    let mut queries = sample_queries(dataset, queries_n, 0x91D);
    queries.sort_by_key(|(t, _)| *t); // "sort them in the order of their starting times"

    // --- TPI (paper parameters: eps_d = 0.8, eps_c = 0.5). --------------
    let t0 = Instant::now();
    let tpi = Tpi::build(
        dataset,
        &TpiConfig {
            eps_d: 0.8,
            eps_c: 0.5,
            ..TpiConfig::default()
        },
    );
    let path = tmp(&format!("tpi-{name}"));
    let disk_tpi = DiskTpi::create_with(tpi, &path, POOL_PAGES, PAGE_SIZE_BENCH).unwrap();
    let tpi_build = t0.elapsed();
    disk_tpi.clear_cache();
    disk_tpi.io_stats().reset();
    let t0 = Instant::now();
    for (t, p) in &queries {
        disk_tpi.query(*t, p).unwrap();
    }
    let tpi_resp = t0.elapsed();
    table.row(vec![
        name.into(),
        "TPI".into(),
        format!("{:.2}", disk_tpi.size_bytes() as f64 / (1 << 20) as f64),
        disk_tpi.io_stats().reads().to_string(),
        secs(tpi_resp),
        secs(tpi_build),
    ]);
    std::fs::remove_file(&path).ok();

    // --- PI: one period per timestep (ε_d < 0 forces re-build). ---------
    let t0 = Instant::now();
    let pi = Tpi::build(
        dataset,
        &TpiConfig {
            eps_d: -1.0,
            eps_c: 0.5,
            ..TpiConfig::default()
        },
    );
    let path = tmp(&format!("pi-{name}"));
    let disk_pi = DiskTpi::create_with(pi, &path, POOL_PAGES, PAGE_SIZE_BENCH).unwrap();
    let pi_build = t0.elapsed();
    disk_pi.clear_cache();
    disk_pi.io_stats().reset();
    let t0 = Instant::now();
    for (t, p) in &queries {
        disk_pi.query(*t, p).unwrap();
    }
    let pi_resp = t0.elapsed();
    table.row(vec![
        name.into(),
        "PI".into(),
        format!("{:.2}", disk_pi.size_bytes() as f64 / (1 << 20) as f64),
        disk_pi.io_stats().reads().to_string(),
        secs(pi_resp),
        secs(pi_build),
    ]);
    std::fs::remove_file(&path).ok();

    // --- TrajStore (bounded per-cell codebooks, quadtree layout). -------
    let t0 = Instant::now();
    let ts = build_trajstore(
        dataset,
        TsBudget::Bounded(0.001),
        &TrajStoreConfig::default(),
    );
    let path = tmp(&format!("ts-{name}"));
    let disk_ts = DiskTrajStore::create_with(&ts, &path, POOL_PAGES, PAGE_SIZE_BENCH).unwrap();
    let ts_build = t0.elapsed();
    disk_ts.clear_cache();
    disk_ts.io_stats().reset();
    let t0 = Instant::now();
    for (t, p) in &queries {
        disk_ts.query(*t, p).unwrap();
    }
    let ts_resp = t0.elapsed();
    table.row(vec![
        name.into(),
        "TrajStore".into(),
        format!("{:.2}", disk_ts.size_bytes() as f64 / (1 << 20) as f64),
        disk_ts.io_stats().reads().to_string(),
        secs(ts_resp),
        secs(ts_build),
    ]);
    std::fs::remove_file(&path).ok();
}

fn main() {
    let queries = if ppq_bench::scale() < 0.5 { 300 } else { 1000 };
    let mut table = Table::new(
        "Table 9: Disk-based index performance",
        &[
            "Dataset",
            "Index",
            "Size(MB)",
            "No.I/Os",
            "Response Time(s)",
            "Building Time(s)",
        ],
    );
    let porto = porto_bench();
    evaluate(&porto, "Porto", &mut table, queries);
    let geolife = geolife_bench();
    evaluate(&geolife, "Geolife", &mut table, queries);
    table.emit("table9_disk");
}
