//! Figure 8 — Number of partitions q over time for different ε_p.
//!
//! Prints the q(t) series (sampled) for PPQ-A and PPQ-S on both datasets;
//! the paper's observation to reproduce is that q stabilises as time
//! grows, with smaller ε_p giving a higher plateau.

use ppq_bench::{geolife_bench, porto_bench, Table};
use ppq_core::{PartitionMode, PpqConfig, PpqTrajectory, Variant};
use ppq_traj::{Dataset, DatasetStats};

fn series(dataset: &Dataset, name: &str, mode: PartitionMode, eps_ps: &[f64], table: &mut Table) {
    for &eps_p in eps_ps {
        let variant = if mode == PartitionMode::Autocorrelation {
            Variant::PpqA
        } else {
            Variant::PpqS
        };
        let mut cfg = PpqConfig::variant(variant, eps_p);
        cfg.eps_p = eps_p;
        cfg.build_index = false;
        let built = PpqTrajectory::build(dataset, &cfg);
        let steps = &built.summary().stats().partitions_per_step;
        // Sample ~12 evenly-spaced checkpoints of the series.
        let stride = (steps.len() / 12).max(1);
        let sampled: Vec<String> = steps
            .iter()
            .step_by(stride)
            .map(|(t, q)| format!("{t}:{q}"))
            .collect();
        let max_q = steps.iter().map(|(_, q)| *q).max().unwrap_or(0);
        table.row(vec![
            name.into(),
            variant.name().into(),
            format!("{eps_p}"),
            max_q.to_string(),
            sampled.join(" "),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "Figure 8: Number of partitions q against eps_p (series t:q)",
        &["Dataset", "Variant", "eps_p", "max q", "q over time"],
    );
    let porto = porto_bench();
    println!("{}", DatasetStats::of(&porto).banner("Porto"));
    series(
        &porto,
        "Porto",
        PartitionMode::Autocorrelation,
        &[0.01, 0.03, 0.05],
        &mut table,
    );
    series(
        &porto,
        "Porto",
        PartitionMode::Spatial,
        &[0.1, 0.3, 0.5],
        &mut table,
    );
    let geolife = geolife_bench();
    println!("{}", DatasetStats::of(&geolife).banner("Geolife"));
    series(
        &geolife,
        "Geolife",
        PartitionMode::Autocorrelation,
        &[0.01, 0.03, 0.05],
        &mut table,
    );
    series(
        &geolife,
        "Geolife",
        PartitionMode::Spatial,
        &[1.0, 3.0, 5.0],
        &mut table,
    );
    table.emit("fig8_partition_count");
}
