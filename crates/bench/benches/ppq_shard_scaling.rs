//! Sharded-pipeline scaling: ingest throughput, STRQ/TPQ latency, and
//! cross-shard answer quality at S ∈ {1, 2, 4, 8}, merged into
//! `BENCH_ppq.json` as the `shard_path` section (companion of
//! `ppq_speedup` / `ppq_query_speedup`, which cover the unsharded build
//! and query paths).
//!
//! Per shard count the bench measures:
//!
//! 1. **Ingest** — `ShardedPpqStream::push_slice` over the full stream +
//!    `finish()`, forced serial and at the default thread count. Shards
//!    are independent, so the fan-out is the scaling lever the ROADMAP's
//!    "Streaming sharding" item asks for.
//! 2. **STRQ / TPQ latency** — `ShardedQueryEngine` batches (production
//!    STRQ form and TPQ with horizon 10), serial vs parallel.
//! 3. **Quality** — precision/recall of the approximate answer against
//!    ground truth, candidate recall, and the per-query visited ratio,
//!    next to the summed codebook size and MAE. Fragmented per-shard
//!    codebooks cost summary bytes and can shift reconstructions within
//!    the ε bound; this records that cost instead of hiding it (exact
//!    answers stay perfect — per-shard local search keeps recall 1).
//!
//! Checked before anything is recorded: S=1 is bit-identical to the
//! unsharded `PpqStream` (reconstruction bits, codebook, breakdown),
//! serial and parallel runs of every workload agree bit-for-bit, and TPQ
//! id sets match across all shard counts.
//!
//! `PPQ_SCALE` shrinks the dataset/workload for CI smoke runs;
//! `PPQ_BENCH_RUNS` overrides the median-of-3 timing runs.

use ppq_bench::report::{merge_bench_section, time_median};
use ppq_bench::{sample_queries, scale};
use ppq_core::query::{precision_recall, ShardedQueryEngine, StrqOutcome};
use ppq_core::shard::ShardedSummary;
use ppq_core::{PpqConfig, PpqTrajectory, Variant};
use ppq_geo::Point;
use ppq_traj::synth::{porto_like, PortoConfig};
use std::fmt::Write as _;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TPQ_HORIZON: u32 = 10;

fn points_bit_eq(a: &Point, b: &Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

/// Mean precision/recall of one answer level across a scored batch.
fn mean_pr(outcomes: &[StrqOutcome], level: impl Fn(&StrqOutcome) -> &[u32]) -> (f64, f64) {
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    for o in outcomes {
        let (p, r) = precision_recall(level(o), &o.truth);
        p_sum += p;
        r_sum += r;
    }
    let n = outcomes.len().max(1) as f64;
    (p_sum / n, r_sum / n)
}

struct Entry {
    shards: usize,
    ingest_serial_s: f64,
    ingest_parallel_s: f64,
    strq_serial_s: f64,
    strq_parallel_s: f64,
    tpq_serial_s: f64,
    tpq_parallel_s: f64,
    bit_identical: bool,
    codebook_len: usize,
    summary_bytes: usize,
    mae_m: f64,
    approx_p: f64,
    approx_r: f64,
    cand_r: f64,
    visited_ratio: f64,
    exact_perfect: bool,
}

fn main() {
    let runs: usize = std::env::var("PPQ_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads_default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let s = scale();

    // A wide stream (many concurrent trajectories per timestep) so the
    // shard fan-out has real per-step work to split.
    let data = porto_like(&PortoConfig {
        trajectories: ((2500.0 * s).round() as usize).max(50),
        mean_len: 40,
        min_len: 25,
        start_spread: 10,
        seed: 0x5AAD,
    });
    let n_points = data.num_points();
    let cfg = PpqConfig::variant(Variant::PpqS, 0.1);
    let gc = cfg.tpi.pi.gc;
    let n_queries = ((4000.0 * s).round() as usize).max(200);
    let queries = sample_queries(&data, n_queries, 42);
    eprintln!(
        "shard-scaling dataset: {n_points} points, {} trajectories, {n_queries} queries",
        data.num_trajectories()
    );

    // Unsharded baseline for the S=1 bit-identity check.
    let unsharded = PpqTrajectory::build(&data, &cfg).into_summary();
    // One untimed warm-up: the first build after the baseline's
    // allocation spike pays a large one-off allocator/page cost (~4× on
    // this workload) that would otherwise land in the first timed config.
    let _ = ShardedSummary::build(&data, &cfg, 1);
    let mut s1_bit_identical = false;

    let mut entries: Vec<Entry> = Vec::new();
    let mut tpq_id_sets: Vec<Vec<Vec<u32>>> = Vec::new();
    for shards in SHARD_COUNTS {
        // ---- Ingest. ---------------------------------------------------
        let (ing_ser_s, ser_summary) = time_median(runs, || {
            rayon::with_thread_count(1, || ShardedSummary::build(&data, &cfg, shards))
        });
        let (ing_par_s, par_summary) =
            time_median(runs, || ShardedSummary::build(&data, &cfg, shards));
        let mut bit_identical = ser_summary.num_points() == par_summary.num_points()
            && ser_summary.codebook_len() == par_summary.codebook_len()
            && data.trajectories().iter().all(|t| {
                (0..t.len()).all(|off| {
                    let ts = t.start + off as u32;
                    match (
                        ser_summary.reconstruct(t.id, ts),
                        par_summary.reconstruct(t.id, ts),
                    ) {
                        (Some(a), Some(b)) => points_bit_eq(&a, &b),
                        _ => false,
                    }
                })
            });
        if shards == 1 {
            s1_bit_identical = ser_summary.num_points() == unsharded.num_points()
                && ser_summary.codebook_len() == unsharded.codebook_len()
                && ser_summary.breakdown() == unsharded.breakdown()
                && data.trajectories().iter().all(|t| {
                    (0..t.len()).all(|off| {
                        let ts = t.start + off as u32;
                        match (
                            ser_summary.reconstruct(t.id, ts),
                            unsharded.reconstruct(t.id, ts),
                        ) {
                            (Some(a), Some(b)) => points_bit_eq(&a, &b),
                            _ => false,
                        }
                    })
                });
            assert!(
                s1_bit_identical,
                "S=1 sharded summary must be bit-identical to the unsharded pipeline"
            );
        }
        let summary = par_summary;
        let engine = ShardedQueryEngine::new(&summary, &data, gc);

        // ---- Query latency (production STRQ + TPQ). --------------------
        let (strq_ser_s, strq_ser) = time_median(runs, || {
            rayon::with_thread_count(1, || engine.strq_online_batch(&queries))
        });
        let (strq_par_s, strq_par) = time_median(runs, || engine.strq_online_batch(&queries));
        bit_identical &= strq_ser == strq_par;
        let (tpq_ser_s, tpq_ser) = time_median(runs, || {
            rayon::with_thread_count(1, || engine.tpq_batch(&queries, TPQ_HORIZON))
        });
        let (tpq_par_s, tpq_par) = time_median(runs, || engine.tpq_batch(&queries, TPQ_HORIZON));
        bit_identical &= tpq_ser.len() == tpq_par.len()
            && tpq_ser.iter().zip(&tpq_par).all(|(a, b)| {
                a.len() == b.len()
                    && a.iter().zip(b).all(|((ia, pa), (ib, pb))| {
                        ia == ib
                            && pa.len() == pb.len()
                            && pa
                                .iter()
                                .zip(pb)
                                .all(|((ta, qa), (tb, qb))| ta == tb && points_bit_eq(qa, qb))
                    })
            });
        tpq_id_sets.push(
            tpq_ser
                .iter()
                .map(|r| r.iter().map(|(id, _)| *id).collect())
                .collect(),
        );

        // ---- Quality (scored against ground truth, untimed). -----------
        let scored = engine.strq_batch(&queries);
        let (approx_p, approx_r) = mean_pr(&scored, |o| &o.approx);
        let (_, cand_r) = mean_pr(&scored, |o| &o.candidates);
        let exact_perfect = scored.iter().all(|o| o.exact == o.truth);
        let visited: usize = scored.iter().map(|o| o.visited).sum();
        let visited_ratio =
            visited as f64 / (scored.len().max(1) * data.num_trajectories().max(1)) as f64;

        entries.push(Entry {
            shards,
            ingest_serial_s: ing_ser_s,
            ingest_parallel_s: ing_par_s,
            strq_serial_s: strq_ser_s,
            strq_parallel_s: strq_par_s,
            tpq_serial_s: tpq_ser_s,
            tpq_parallel_s: tpq_par_s,
            bit_identical,
            codebook_len: summary.codebook_len(),
            summary_bytes: summary.breakdown().total(),
            mae_m: summary.mae_meters(&data),
            approx_p,
            approx_r,
            cand_r,
            visited_ratio,
            exact_perfect,
        });
    }

    // TPQ id sets must agree across shard counts (exact refinement pins
    // them to the ground truth at every S).
    for (i, sets) in tpq_id_sets.iter().enumerate().skip(1) {
        assert_eq!(
            &tpq_id_sets[0], sets,
            "TPQ id sets differ between S={} and S={}",
            SHARD_COUNTS[0], SHARD_COUNTS[i]
        );
    }

    // ---- Report. -------------------------------------------------------
    println!("\n=== PPQ shard scaling (runs={runs}, cores={threads_default}, {n_points} points, {n_queries} queries) ===");
    println!(
        "{:>6} {:>12} {:>12} {:>11} {:>11} {:>10} {:>10} {:>9} {:>8} {:>8} {:>8}  bit-identical",
        "shards",
        "ingest-1t(s)",
        "ingest-Nt(s)",
        "strq-1t(s)",
        "strq-Nt(s)",
        "tpq-1t(s)",
        "tpq-Nt(s)",
        "codebook",
        "MAE(m)",
        "approxP",
        "approxR"
    );
    for e in &entries {
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>11.4} {:>11.4} {:>10.4} {:>10.4} {:>9} {:>8.2} {:>8.4} {:>8.4}  {}",
            e.shards,
            e.ingest_serial_s,
            e.ingest_parallel_s,
            e.strq_serial_s,
            e.strq_parallel_s,
            e.tpq_serial_s,
            e.tpq_parallel_s,
            e.codebook_len,
            e.mae_m,
            e.approx_p,
            e.approx_r,
            e.bit_identical
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {threads_default}, \"runs\": {runs}, \"profile\": \"release\", \"points\": {n_points}, \"queries\": {n_queries}}},"
    );
    let _ = writeln!(
        json,
        "    \"note\": \"ShardedPpqStream hash-partitions trajectory ids over S independent PpqStreams; ShardedQueryEngine fans STRQ out across shards and merges with two-pointer unions, TPQ payloads route to the owning shard. serial = RAYON_NUM_THREADS=1, parallel = default threads; on a 1-core runner serial==parallel by design. Quality rows track the codebook-fragmentation cost vs the S=1 baseline (which is verified bit-identical to the unsharded pipeline): approximate-answer precision/recall vs ground truth, candidate recall (stays 1 — per-shard local search preserves the paper's guarantee), summed codebook size, and MAE. exact_equals_truth must stay true at every S.\","
    );
    let _ = writeln!(
        json,
        "    \"s1_bit_identical_to_unsharded\": {s1_bit_identical},"
    );
    let _ = writeln!(json, "    \"configs\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"shards\": {},", e.shards);
        let _ = writeln!(
            json,
            "        \"ingest_serial_seconds\": {:.6},",
            e.ingest_serial_s
        );
        let _ = writeln!(
            json,
            "        \"ingest_parallel_seconds\": {:.6},",
            e.ingest_parallel_s
        );
        let _ = writeln!(
            json,
            "        \"ingest_kpts_per_second\": {:.1},",
            n_points as f64 / e.ingest_parallel_s.min(e.ingest_serial_s) / 1e3
        );
        let _ = writeln!(
            json,
            "        \"strq_serial_seconds\": {:.6},",
            e.strq_serial_s
        );
        let _ = writeln!(
            json,
            "        \"strq_parallel_seconds\": {:.6},",
            e.strq_parallel_s
        );
        let _ = writeln!(
            json,
            "        \"tpq_serial_seconds\": {:.6},",
            e.tpq_serial_s
        );
        let _ = writeln!(
            json,
            "        \"tpq_parallel_seconds\": {:.6},",
            e.tpq_parallel_s
        );
        let _ = writeln!(json, "        \"bit_identical\": {},", e.bit_identical);
        let _ = writeln!(json, "        \"codebook_words\": {},", e.codebook_len);
        let _ = writeln!(json, "        \"summary_bytes\": {},", e.summary_bytes);
        let _ = writeln!(json, "        \"mae_meters\": {:.4},", e.mae_m);
        let _ = writeln!(json, "        \"approx_precision\": {:.6},", e.approx_p);
        let _ = writeln!(json, "        \"approx_recall\": {:.6},", e.approx_r);
        let _ = writeln!(json, "        \"candidate_recall\": {:.6},", e.cand_r);
        let _ = writeln!(json, "        \"visited_ratio\": {:.6},", e.visited_ratio);
        let _ = writeln!(json, "        \"exact_equals_truth\": {}", e.exact_perfect);
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = write!(json, "  }}");

    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = merge_bench_section(&existing, "shard_path", &json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (shard_path section)");
}
