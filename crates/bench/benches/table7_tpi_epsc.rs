//! Table 7 — Statistics of TPI on different ε_c.
//!
//! The TRD dropping-rate threshold ε_c sweeps {0.2, 0.4, 0.6, 0.8};
//! reported: index size, build time, number of periods, number of
//! insertions — on both datasets, raw trajectory points (§6.3.2).

use ppq_bench::report::secs;
use ppq_bench::{geolife_bench, porto_bench, Table};
use ppq_tpi::{Tpi, TpiConfig};
use ppq_traj::{Dataset, DatasetStats};
use std::time::Instant;

const EPS_C: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

fn evaluate(dataset: &Dataset, name: &str, table: &mut Table) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    for eps_c in EPS_C {
        let cfg = TpiConfig {
            eps_c,
            ..TpiConfig::default()
        };
        let t0 = Instant::now();
        let tpi = Tpi::build(dataset, &cfg);
        let elapsed = t0.elapsed();
        table.row(vec![
            name.into(),
            format!("{eps_c}"),
            format!("{:.2}", tpi.size_bytes() as f64 / (1 << 20) as f64),
            secs(elapsed),
            tpi.stats().periods.to_string(),
            tpi.stats().insertions.to_string(),
        ]);
    }
}

fn main() {
    let mut table = Table::new(
        "Table 7: Statistics of TPI on different eps_c",
        &[
            "Dataset",
            "eps_c",
            "Index Size(MB)",
            "Time Cost(s)",
            "No.Periods",
            "No.Insertions",
        ],
    );
    let porto = porto_bench();
    evaluate(&porto, "Porto", &mut table);
    let geolife = geolife_bench();
    evaluate(&geolife, "Geolife", &mut table);
    table.emit("table7_tpi_epsc");
}
