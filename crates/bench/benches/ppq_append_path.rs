//! Incremental append + compaction path of the persistent repository
//! (`ppq-repo`), measured end to end and merged into `BENCH_ppq.json` as
//! the `append_path` section (companion of `disk_path`).
//!
//! What it records:
//!
//! 1. **Bit-identity** — a repository grown by `RepoWriter::append`
//!    (base + two delta generations) must answer STRQ (all levels) and
//!    TPQ (payload bits) exactly like a single-shot `write` of the same
//!    data, like the in-memory `ShardedQueryEngine`, and must keep doing
//!    so after `Repo::compact` collapses the chain. Recorded as the
//!    `bit_identical` flag CI gates on.
//! 2. **Append vs full rewrite** — the same three persistence points
//!    (½, ¾, full of the stream) written once incrementally and once as
//!    three full rewrites: wall time and bytes written per stage. The
//!    delta stages must write strictly fewer bytes
//!    (`delta_bytes_smaller`, also CI-gated).
//! 3. **Post-compaction page-ins** — the same cold STRQ batch before and
//!    after compaction (Table 9 I/O accounting: a buffer hit is not an
//!    I/O), plus the generation/page counts the chain collapsed from.
//!
//! `PPQ_SCALE` shrinks the dataset/workload for CI smoke runs.

use ppq_bench::report::merge_bench_section;
use ppq_bench::{sample_queries, scale};
use ppq_core::query::{ShardedQueryEngine, StrqOutcome};
use ppq_core::shard::{ShardedPpqStream, ShardedSummary};
use ppq_core::{PpqConfig, Variant};
use ppq_geo::Point;
use ppq_repo::{DiskQueryEngine, Manifest, Repo, RepoWriter};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::Dataset;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

const PAGE_SIZE_BENCH: usize = 4 << 10; // same regime choice as ppq_disk_path
const TPQ_HORIZON: u32 = 10;
const SHARDS: usize = 2;
const POOL_PAGES: usize = 128;

fn points_bit_eq(a: &Point, b: &Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

#[allow(clippy::type_complexity)]
fn tpq_bit_identical(
    a: &[Vec<(u32, Vec<(u32, Point)>)>],
    b: &[Vec<(u32, Vec<(u32, Point)>)>],
) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(qa, qb)| {
            qa.len() == qb.len()
                && qa.iter().zip(qb).all(|((ia, sa), (ib, sb))| {
                    ia == ib
                        && sa.len() == sb.len()
                        && sa
                            .iter()
                            .zip(sb)
                            .all(|((ta, pa), (tb, pb))| ta == tb && points_bit_eq(pa, pb))
                })
        })
}

/// Bytes the newest generation of `manifest` put on disk (summary/delta +
/// directory segments + data pages).
fn newest_generation_bytes(manifest: &Manifest) -> u64 {
    let g = manifest.newest();
    g.shards
        .iter()
        .map(|s| s.summary_len + s.dir_len + s.tpi_pages * manifest.page_size as u64)
        .sum()
}

struct Stage {
    name: &'static str,
    seconds: f64,
    bytes: u64,
}

/// Time one write/append call and account the new generation's bytes.
fn stage(name: &'static str, f: impl FnOnce() -> Result<Manifest, ppq_repo::RepoError>) -> Stage {
    let t = Instant::now();
    let manifest = f().expect("persistence stage failed");
    Stage {
        name,
        seconds: t.elapsed().as_secs_f64(),
        bytes: newest_generation_bytes(&manifest),
    }
}

/// Cold page-ins of one full STRQ batch against the store at `dir`.
fn cold_batch_reads(dir: &Path, data: &Dataset, gc: f64, queries: &[(u32, Point)]) -> (u64, u64) {
    let repo = Repo::open(dir, POOL_PAGES).unwrap();
    let engine = DiskQueryEngine::new(&repo, data, gc);
    repo.clear_cache();
    repo.io_stats().reset();
    let _ = engine.strq_online_batch(queries).unwrap();
    (repo.io_stats().reads(), repo.total_pages())
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let s = scale();

    let data = porto_like(&PortoConfig {
        trajectories: ((1200.0 * s).round() as usize).max(50),
        mean_len: 45,
        min_len: 30,
        start_spread: 15,
        seed: 0xA44E,
    });
    let n_points = data.num_points();
    let cfg = PpqConfig::variant(Variant::PpqS, 0.1);
    let gc = cfg.tpi.pi.gc;
    let n_queries = ((2000.0 * s).round() as usize).max(200);
    let queries = sample_queries(&data, n_queries, 53);
    eprintln!(
        "append-path dataset: {n_points} points, {} trajectories, {n_queries} queries, {SHARDS} shards",
        data.num_trajectories()
    );

    // ---- Stream with snapshots at ½ and ¾ of the timeline. -------------
    let slices: Vec<_> = data.time_slices().collect();
    let cuts = [slices.len() / 2, 3 * slices.len() / 4];
    let mut stream = ShardedPpqStream::new(cfg.clone(), SHARDS);
    let mut snaps: Vec<ShardedSummary> = Vec::new();
    for (i, slice) in slices.iter().enumerate() {
        stream.push_slice(slice.t, slice.points);
        if cuts.contains(&(i + 1)) {
            snaps.push(stream.snapshot());
        }
    }
    let full = stream.finish();

    let work_dir = std::env::temp_dir().join(format!("ppq-append-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);
    let inc_dir = work_dir.join("incremental");
    let rw_dir = work_dir.join("rewrite");

    // ---- Incremental path: base write + two appends. --------------------
    let inc_writer = RepoWriter::with_page_size(&inc_dir, PAGE_SIZE_BENCH);
    let append_stages = [
        stage("write_base_half", || inc_writer.write_sharded(&snaps[0])),
        stage("append_to_3q", || inc_writer.append_sharded(&snaps[1])),
        stage("append_to_full", || inc_writer.append_sharded(&full)),
    ];

    // ---- Control path: the same three points as full rewrites. ----------
    let rw_writer = RepoWriter::with_page_size(&rw_dir, PAGE_SIZE_BENCH);
    let rewrite_stages = [
        stage("write_half", || rw_writer.write_sharded(&snaps[0])),
        stage("rewrite_3q", || rw_writer.write_sharded(&snaps[1])),
        stage("rewrite_full", || rw_writer.write_sharded(&full)),
    ];
    // After three rewrites only the last generation is live — the
    // single-shot control store for the bit-identity check.

    // ---- Bit-identity: appended vs single-shot vs in-memory. ------------
    let appended = Repo::open(&inc_dir, POOL_PAGES).unwrap();
    let generations_before = appended.num_generations();
    let pages_before = appended.total_pages();
    let control = Repo::open(&rw_dir, POOL_PAGES).unwrap();
    let mem = ShardedQueryEngine::new(&full, &data, gc);
    let appended_engine = DiskQueryEngine::new(&appended, &data, gc);
    let control_engine = DiskQueryEngine::new(&control, &data, gc);
    let appended_strq: Vec<StrqOutcome> = appended_engine.strq_batch(&queries).unwrap();
    let mut bit_identical = appended_strq == control_engine.strq_batch(&queries).unwrap();
    bit_identical &= appended_strq == mem.strq_batch(&queries);
    let appended_tpq = appended_engine.tpq_batch(&queries, TPQ_HORIZON).unwrap();
    bit_identical &= tpq_bit_identical(
        &appended_tpq,
        &control_engine.tpq_batch(&queries, TPQ_HORIZON).unwrap(),
    );
    bit_identical &= tpq_bit_identical(&appended_tpq, &mem.tpq_batch(&queries, TPQ_HORIZON));

    // ---- Cold page-ins before/after compaction. -------------------------
    let (appended_cold_reads, _) = cold_batch_reads(&inc_dir, &data, gc, &queries);
    let t = Instant::now();
    appended.compact(None).unwrap();
    let compact_seconds = t.elapsed().as_secs_f64();
    drop(appended);
    let (compacted_cold_reads, pages_after) = cold_batch_reads(&inc_dir, &data, gc, &queries);

    // Post-compaction answers must still be bit-identical.
    let compacted = Repo::open(&inc_dir, POOL_PAGES).unwrap();
    let generations_after = compacted.num_generations();
    let compacted_engine = DiskQueryEngine::new(&compacted, &data, gc);
    bit_identical &= appended_strq == compacted_engine.strq_batch(&queries).unwrap();
    bit_identical &= tpq_bit_identical(
        &appended_tpq,
        &compacted_engine.tpq_batch(&queries, TPQ_HORIZON).unwrap(),
    );
    assert!(
        bit_identical,
        "appended and compacted stores must answer bit-identically to the single-shot build"
    );

    let append_total_bytes: u64 = append_stages[1..].iter().map(|s| s.bytes).sum();
    let rewrite_total_bytes: u64 = rewrite_stages[1..].iter().map(|s| s.bytes).sum();
    let delta_bytes_smaller = append_total_bytes < rewrite_total_bytes;
    assert!(
        delta_bytes_smaller,
        "delta generations ({append_total_bytes} B) must write fewer bytes than rewrites ({rewrite_total_bytes} B)"
    );
    let append_seconds: f64 = append_stages[1..].iter().map(|s| s.seconds).sum();
    let rewrite_seconds: f64 = rewrite_stages[1..].iter().map(|s| s.seconds).sum();

    // ---- Report. --------------------------------------------------------
    println!(
        "\n=== PPQ append path (cores={cores}, {n_points} points, {n_queries} queries, {} B pages, {SHARDS} shards) ===",
        PAGE_SIZE_BENCH
    );
    println!(
        "{:>18} {:>12} {:>14} | {:>18} {:>12} {:>14}",
        "append", "s", "bytes", "rewrite", "s", "bytes"
    );
    for (a, r) in append_stages.iter().zip(&rewrite_stages) {
        println!(
            "{:>18} {:>12.4} {:>14} | {:>18} {:>12.4} {:>14}",
            a.name, a.seconds, a.bytes, r.name, r.seconds, r.bytes
        );
    }
    println!(
        "post-base stages: append {append_seconds:.4}s / {append_total_bytes} B vs rewrite {rewrite_seconds:.4}s / {rewrite_total_bytes} B ({:.1}x fewer bytes)",
        rewrite_total_bytes as f64 / append_total_bytes.max(1) as f64
    );
    println!(
        "compaction: {generations_before} gens / {pages_before} pages -> {generations_after} gen / {pages_after} pages in {compact_seconds:.4}s; cold batch page-ins {appended_cold_reads} -> {compacted_cold_reads}; bit-identical: {bit_identical}"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "    \"runner\": {{\"cores\": {cores}, \"profile\": \"release\", \"points\": {n_points}, \"queries\": {n_queries}, \"page_size\": {PAGE_SIZE_BENCH}, \"shards\": {SHARDS}}},"
    );
    let _ = writeln!(
        json,
        "    \"note\": \"Incremental repository growth: the stream is persisted at 1/2, 3/4 and full, once as base + two delta generations (RepoWriter::append — summary-delta segment, new-window TPI pages, delta block directory) and once as three full rewrites. bit_identical asserts the appended store answers STRQ (all levels) and TPQ (payload bits) exactly like the single-shot store, like the in-memory ShardedQueryEngine, and still does after Repo::compact collapses the chain. Bytes per stage are the new generation's segment bytes; page_ins compares the same cold STRQ batch (cleared pool, Table 9 accounting) against the 3-generation chain and the compacted single generation.\","
    );
    let _ = writeln!(json, "    \"bit_identical\": {bit_identical},");
    let _ = writeln!(json, "    \"delta_bytes_smaller\": {delta_bytes_smaller},");
    let _ = writeln!(json, "    \"append_stages\": [");
    for (i, st) in append_stages.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"stage\": \"{}\", \"seconds\": {:.6}, \"bytes\": {}}}{}",
            st.name,
            st.seconds,
            st.bytes,
            if i + 1 < append_stages.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"rewrite_stages\": [");
    for (i, st) in rewrite_stages.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"stage\": \"{}\", \"seconds\": {:.6}, \"bytes\": {}}}{}",
            st.name,
            st.seconds,
            st.bytes,
            if i + 1 < rewrite_stages.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(
        json,
        "    \"post_base_append_seconds\": {append_seconds:.6},"
    );
    let _ = writeln!(
        json,
        "    \"post_base_rewrite_seconds\": {rewrite_seconds:.6},"
    );
    let _ = writeln!(
        json,
        "    \"post_base_append_bytes\": {append_total_bytes},"
    );
    let _ = writeln!(
        json,
        "    \"post_base_rewrite_bytes\": {rewrite_total_bytes},"
    );
    let _ = writeln!(
        json,
        "    \"rewrite_over_append_bytes\": {:.4},",
        rewrite_total_bytes as f64 / append_total_bytes.max(1) as f64
    );
    let _ = writeln!(json, "    \"compaction\": {{");
    let _ = writeln!(json, "      \"seconds\": {compact_seconds:.6},");
    let _ = writeln!(json, "      \"generations_before\": {generations_before},");
    let _ = writeln!(json, "      \"generations_after\": {generations_after},");
    let _ = writeln!(json, "      \"pages_before\": {pages_before},");
    let _ = writeln!(json, "      \"pages_after\": {pages_after},");
    let _ = writeln!(
        json,
        "      \"cold_batch_page_ins_before\": {appended_cold_reads},"
    );
    let _ = writeln!(
        json,
        "      \"cold_batch_page_ins_after\": {compacted_cold_reads}"
    );
    let _ = writeln!(json, "    }}");
    let _ = write!(json, "  }}");

    let out_path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ppq.json").into());
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let merged = merge_bench_section(&existing, "append_path", &json);
    std::fs::write(&out_path, merged).expect("write BENCH_ppq.json");
    eprintln!("wrote {out_path} (append_path section)");

    let _ = std::fs::remove_dir_all(&work_dir);
}
