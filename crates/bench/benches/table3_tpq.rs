//! Table 3 — MAE against different lengths of TPQ.
//!
//! Protocol (paper §6.2.2): the same trajectory/timestep anchors are used
//! for every method; each method reconstructs the next 10–50 positions
//! and the MAE against the original sub-trajectories is reported in
//! units of 1.0e3 m, exactly like the paper's table.

use ppq_bench::methods::build_error_bounded;
use ppq_bench::queries::sample_tpq_anchors;
use ppq_bench::{geolife_bench, porto_bench, AnySummary, MethodKind, Table, ALL_MAIN_METHODS};
use ppq_geo::coords;
use ppq_traj::{Dataset, DatasetStats};

const LENGTHS: [u32; 5] = [10, 20, 30, 40, 50];

fn tpq_mae_km(built: &AnySummary, dataset: &Dataset, anchors: &[(u32, u32)], l: u32) -> f64 {
    let index = built.as_index();
    let mut sum = 0.0;
    let mut n = 0usize;
    for &(id, t) in anchors {
        let traj = dataset.trajectory(id);
        for tt in t..=t + l {
            if let (Some(truth), Some(rec)) = (traj.at(tt), index.recon(id, tt)) {
                sum += truth.dist(&rec);
                n += 1;
            }
        }
    }
    coords::deg_to_meters(sum / n.max(1) as f64) / 1000.0
}

fn evaluate(dataset: &Dataset, name: &str, table: &mut Table, anchors_n: usize) {
    println!("{}", DatasetStats::of(dataset).banner(name));
    let ppq_a = build_error_bounded(MethodKind::PpqA, dataset, None, false);
    let parity: Vec<(u32, u32)> = match &ppq_a {
        AnySummary::Ppq(s) => s.stats().codewords_per_step.clone(),
        AnySummary::Baseline(_) => unreachable!(),
    };
    let anchors = sample_tpq_anchors(dataset, anchors_n, 50, 0x7790);
    for kind in ALL_MAIN_METHODS {
        let built = if kind == MethodKind::PpqA {
            match &ppq_a {
                AnySummary::Ppq(s) => AnySummary::Ppq(s.clone()),
                AnySummary::Baseline(_) => unreachable!(),
            }
        } else {
            build_error_bounded(kind, dataset, Some(&parity), false)
        };
        let mut row = vec![name.to_string(), kind.name().to_string()];
        for l in LENGTHS {
            row.push(format!("{:.4}", tpq_mae_km(&built, dataset, &anchors, l)));
        }
        table.row(row);
    }
}

fn main() {
    let anchors = if ppq_bench::scale() < 0.5 { 60 } else { 200 };
    let mut table = Table::new(
        "Table 3: MAE against different lengths of TPQ (1.0e3 m)",
        &["Dataset", "Method", "l=10", "l=20", "l=30", "l=40", "l=50"],
    );
    let porto = porto_bench();
    evaluate(&porto, "Porto", &mut table, anchors);
    let geolife = geolife_bench();
    evaluate(&geolife, "Geolife", &mut table, anchors);
    table.emit("table3_tpq");
}
