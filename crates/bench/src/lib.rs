//! Shared experiment harness for the paper-reproduction benches.
//!
//! Every `cargo bench -p ppq-bench` target reproduces one table or figure
//! of the paper's evaluation (§6). This library holds what they share:
//! scaled dataset construction, the method registry, query workloads, the
//! deviation-budget parameterisation of §6.3.1, and plain-text table
//! rendering. Scale the experiments with the `PPQ_SCALE` environment
//! variable (default 1.0; the paper-scale datasets would be ~100×).

pub mod datasets;
pub mod methods;
pub mod queries;
pub mod report;

pub use datasets::{geolife_bench, porto_bench, scale, sub_porto_bench};
pub use methods::{AnySummary, MethodKind, ALL_MAIN_METHODS};
pub use queries::sample_queries;
pub use report::Table;
