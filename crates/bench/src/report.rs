//! Plain-text table rendering in the style of the paper's tables, plus a
//! CSV sink under `target/experiments/` so EXPERIMENTS.md can reference
//! machine-readable results.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple fixed-width table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line: String = {
            let mut s = String::new();
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    s.push_str("-+-");
                }
                s.push_str(&"-".repeat(*w));
            }
            s
        };
        let fmt_row = |cells: &[String]| {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    s.push_str(" | ");
                }
                let _ = write!(s, "{cell:<w$}");
            }
            s
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Print to stdout and persist as CSV under `target/experiments/`.
    pub fn emit(&self, file_stem: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(file_stem) {
            eprintln!("warning: could not persist {file_stem}.csv: {e}");
        }
    }

    fn write_csv(&self, file_stem: &str) -> std::io::Result<()> {
        let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop(); // workspace root
        dir.push("target");
        dir.push("experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file_stem}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }
}

/// Merge one top-level section into the `BENCH_ppq.json` report without
/// disturbing the others.
///
/// The file is written by two benches (`ppq_speedup` owns the build-path
/// sections, `ppq_query_speedup` the `"query_path"` section), so each
/// rewrites only its own keys and running either bench preserves the
/// other's results. `rendered` is the fully rendered JSON value (its
/// continuation lines indented by two spaces). This is a line-oriented
/// splicer for the fixed layout these benches emit — top-level keys on
/// lines starting with `  "` — not a general JSON rewriter.
pub fn merge_bench_section(existing: &str, key: &str, rendered: &str) -> String {
    // Split the existing document into ordered (key, value-lines) pairs.
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in existing.lines() {
        if let Some(rest) = line.strip_prefix("  \"") {
            if let Some(q) = rest.find('"') {
                let k = rest[..q].to_string();
                let value = line[4 + q..].trim_start_matches(':').trim_start();
                sections.push((k, value.trim_end_matches(',').to_string()));
                continue;
            }
        }
        // Continuation line of the current section (or the outer braces).
        if line == "{" || line == "}" || line.trim().is_empty() {
            continue;
        }
        if let Some((_, v)) = sections.last_mut() {
            v.push('\n');
            let cont = line.strip_suffix(',').filter(|l| {
                // Only strip a section-separating comma on a closing line.
                matches!(l.trim_end(), "  ]" | "  }")
            });
            v.push_str(cont.unwrap_or(line));
        }
    }
    // Replace or append our section.
    let rendered = rendered.trim_end().to_string();
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = rendered,
        None => sections.push((key.to_string(), rendered)),
    }
    // Re-emit with correct commas.
    let mut out = String::new();
    out.push_str("{\n");
    let n = sections.len();
    for (i, (k, v)) in sections.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(out, "  \"{k}\": {v}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Median-of-`runs` wall-clock seconds for `f` (the last run's result is
/// returned alongside). The shared timing methodology of the
/// `BENCH_ppq.json`-writing benches; `runs` is clamped to at least 1.
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let runs = runs.max(1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = std::time::Instant::now();
        last = Some(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    (median(&mut times), last.unwrap())
}

/// Median of a sample, in place. Panics on an empty slice or NaNs — bench
/// inputs are always finite wall-clock numbers.
pub fn median(values: &mut [f64]) -> f64 {
    percentile(values, 50.0)
}

/// The `q`-th percentile (0–100) of a sample by the nearest-rank method,
/// in place. The single implementation every bench target shares — the
/// per-bench copies of `sort + index` this replaces each picked a subtly
/// different rank convention.
pub fn percentile(values: &mut [f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&q), "percentile {q} out of range");
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = ((q / 100.0) * (values.len() - 1) as f64).round() as usize;
    values[rank]
}

/// Number of linear sub-buckets per power-of-two range of the latency
/// histogram: values are resolved to a relative error of at most
/// `1/SUB_BUCKETS` (≈ 1.6%), HdrHistogram's default precision class.
const SUB_BUCKETS: usize = 64;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Power-of-two ranges tracked above the linear region. The top bucket
/// ends at `2^(SUB_BITS + RANGES)` ns ≈ 1100 s — far beyond any latency a
/// load run can record without the run itself timing out.
const RANGES: usize = 34;

/// Fixed-bucket log-linear latency histogram (HdrHistogram-style).
///
/// Values (nanoseconds) up to `SUB_BUCKETS` land in exact unit buckets;
/// above that, each power-of-two range is split into `SUB_BUCKETS` linear
/// sub-buckets, bounding the relative quantization error by
/// `1/SUB_BUCKETS` at every magnitude. Recording is O(1) and allocation
/// free, so it is safe inside a latency-sensitive measurement loop; the
/// layout is fixed at construction, so histograms recorded on different
/// worker threads merge bucket-by-bucket without rebinning.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; SUB_BUCKETS * (RANGES + 1)],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Largest value the histogram resolves; anything above is clamped
    /// into the top bucket.
    const MAX_TRACKABLE: u64 = ((2 * SUB_BUCKETS as u64) - 1) << (RANGES as u32 - 1);

    /// Bucket index of a value: identity in the unit region, log-linear
    /// above it. For `range ≥ 1` a value `v ∈ [64·2^(r-1), 128·2^(r-1))`
    /// stores the 6 bits below its leading bit, so the pair `(range, sub)`
    /// identifies the interval `[(64+sub)·2^(r-1), (64+sub+1)·2^(r-1))`.
    #[inline]
    fn index(nanos: u64) -> usize {
        let nanos = nanos.min(Self::MAX_TRACKABLE);
        if nanos < SUB_BUCKETS as u64 {
            return nanos as usize;
        }
        let msb = 63 - nanos.leading_zeros();
        let range = msb - SUB_BITS + 1;
        let sub = (nanos >> (range - 1)) as usize & (SUB_BUCKETS - 1);
        range as usize * SUB_BUCKETS + sub
    }

    /// Lowest value that maps to bucket `i` (the reported quantile value;
    /// using the lower edge keeps reported percentiles ≤ the true value,
    /// never inflating a tail claim).
    #[inline]
    fn value_of(i: usize) -> u64 {
        let range = (i / SUB_BUCKETS) as u32;
        let sub = (i % SUB_BUCKETS) as u64;
        if range == 0 {
            sub
        } else {
            (sub + SUB_BUCKETS as u64) << (range - 1)
        }
    }

    /// Record one latency observation in nanoseconds.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::index(nanos)] += 1;
        self.count += 1;
        self.sum += nanos as u128;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Record a [`std::time::Duration`].
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram (same fixed layout) into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Value at quantile `q` in [0, 1]: the bucket holding the
    /// `ceil(q * count)`-th observation, reported at its lower edge
    /// (clamped to the recorded min/max so exact extremes survive).
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max; // the top observation is tracked exactly
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (exact, not bucket-quantized).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Condense into the fixed percentile set the reports use.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: self.mean() / 1_000.0,
            min_us: if self.count == 0 {
                0.0
            } else {
                self.min as f64 / 1_000.0
            },
            p50_us: self.value_at_quantile(0.50) as f64 / 1_000.0,
            p90_us: self.value_at_quantile(0.90) as f64 / 1_000.0,
            p99_us: self.value_at_quantile(0.99) as f64 / 1_000.0,
            p999_us: self.value_at_quantile(0.999) as f64 / 1_000.0,
            max_us: self.max as f64 / 1_000.0,
        }
    }
}

/// The percentile digest of one op class, in microseconds — the shared
/// latency-summary shape every bench target reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: f64,
    pub min_us: f64,
    pub p50_us: f64,
    pub p90_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub max_us: f64,
}

impl LatencySummary {
    /// Render as a JSON object (single line, for `merge_bench_section`
    /// payloads).
    pub fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_us\": {:.3}, \"min_us\": {:.3}, \"p50_us\": {:.3}, \"p90_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, \"max_us\": {:.3}}}",
            self.count,
            self.mean_us,
            self.min_us,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.p999_us,
            self.max_us
        )
    }
}

/// Format seconds with adaptive precision.
pub fn secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Format a float with 3–4 significant digits, paper-style.
pub fn sig(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new("Demo", &["Method", "MAE(m)"]);
        t.row(vec!["PPQ-A".into(), "18.35".into()]);
        t.row(vec!["Residual Quantization".into(), "868.96".into()]);
        let out = t.render();
        assert!(out.contains("=== Demo ==="));
        assert!(out.contains("PPQ-A"));
        let lines: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        // All data lines share the same column positions.
        let bar = lines[0].find('|').unwrap();
        for l in &lines {
            assert_eq!(l.find('|').unwrap(), bar);
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn merge_section_roundtrips_and_replaces() {
        let v1 = "[\n    {\n      \"name\": \"q1\",\n      \"x\": 1\n    }\n  ]";
        // Fresh file.
        let doc = merge_bench_section("", "query_path", v1);
        assert!(doc.starts_with("{\n  \"query_path\": [\n"));
        assert!(doc.trim_end().ends_with('}'));
        // Adding a second section keeps the first byte-for-byte.
        let doc2 = merge_bench_section(&doc, "build", "{\"runs\": 3}");
        assert!(doc2.contains("\"query_path\": [\n    {\n      \"name\": \"q1\""));
        assert!(doc2.contains("\"build\": {\"runs\": 3}"));
        // Replacing the first leaves the second alone, idempotently.
        let v2 = "[\n    {\n      \"name\": \"q2\"\n    }\n  ]";
        let doc3 = merge_bench_section(&doc2, "query_path", v2);
        assert!(doc3.contains("\"name\": \"q2\""));
        assert!(!doc3.contains("\"name\": \"q1\""));
        assert!(doc3.contains("\"build\": {\"runs\": 3}"));
        assert_eq!(doc3, merge_bench_section(&doc3, "query_path", v2));
        // Comma discipline: every section line but the last ends with one.
        let brace_lines: Vec<&str> = doc3.lines().filter(|l| l.starts_with("  \"")).collect();
        assert_eq!(brace_lines.len(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(sig(0.0), "0");
        assert_eq!(sig(18.349), "18.3");
        assert_eq!(sig(0.123), "0.123");
        assert_eq!(sig(1752.29), "1752");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.50");
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&mut v), 3.0);
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 100.0), 5.0);
        let mut one = vec![7.0];
        assert_eq!(median(&mut one), 7.0);
        let mut two = vec![10.0, 20.0];
        // Nearest-rank on 2 samples: p50 rounds to the upper one.
        assert_eq!(median(&mut two), 20.0);
    }

    #[test]
    fn histogram_is_exact_in_unit_region() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), SUB_BUCKETS as u64 - 1);
        // Every recorded unit value is recoverable exactly.
        for (q, want) in [(0.5, 31), (0.25, 15)] {
            assert_eq!(h.value_at_quantile(q), want);
        }
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        // Log-spaced probes across nine decades: the bucket's lower edge
        // must be within 1/SUB_BUCKETS of the true value.
        let mut v = 1u64;
        while v < 1_000_000_000_000 {
            let mut h = LatencyHistogram::new();
            h.record(v);
            let got = h.value_at_quantile(0.5);
            let err = (v as f64 - got as f64).abs() / v as f64;
            assert!(
                err <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "value {v}: reported {got}, rel err {err}"
            );
            assert!(
                got <= v,
                "lower-edge reporting must never exceed the true value"
            );
            v = v * 7 / 2 + 1;
        }
    }

    #[test]
    fn histogram_quantiles_match_exact_on_known_sample() {
        // 1..=10_000 ns: percentiles are analytic.
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [
            (0.5, 5_000.0),
            (0.9, 9_000.0),
            (0.99, 9_900.0),
            (0.999, 9_990.0),
        ] {
            let got = h.value_at_quantile(q) as f64;
            assert!(
                (got - want).abs() / want <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "q={q}: got {got}, want ~{want}"
            );
        }
        assert_eq!(h.value_at_quantile(1.0), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..5_000u64 {
            let v = (i * 2_654_435_761) % 50_000_000; // spread over ranges
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.value_at_quantile(q), all.value_at_quantile(q), "q={q}");
        }
        assert_eq!(a.summary(), all.summary());
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX); // clamped into the top bucket, no panic
        assert_eq!(h.count(), 2);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX); // clamped to recorded max
        let empty = LatencyHistogram::new();
        assert_eq!(empty.value_at_quantile(0.5), 0);
        assert_eq!(empty.summary().count, 0);
    }

    #[test]
    fn summary_json_shape() {
        let mut h = LatencyHistogram::new();
        for v in [1_000u64, 2_000, 3_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        let json = s.json();
        for key in [
            "\"count\"",
            "\"p50_us\"",
            "\"p99_us\"",
            "\"p999_us\"",
            "\"max_us\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
