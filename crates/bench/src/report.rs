//! Plain-text table rendering in the style of the paper's tables, plus a
//! CSV sink under `target/experiments/` so EXPERIMENTS.md can reference
//! machine-readable results.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple fixed-width table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line: String = {
            let mut s = String::new();
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    s.push_str("-+-");
                }
                s.push_str(&"-".repeat(*w));
            }
            s
        };
        let fmt_row = |cells: &[String]| {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    s.push_str(" | ");
                }
                let _ = write!(s, "{cell:<w$}");
            }
            s
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Print to stdout and persist as CSV under `target/experiments/`.
    pub fn emit(&self, file_stem: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(file_stem) {
            eprintln!("warning: could not persist {file_stem}.csv: {e}");
        }
    }

    fn write_csv(&self, file_stem: &str) -> std::io::Result<()> {
        let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop(); // workspace root
        dir.push("target");
        dir.push("experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file_stem}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }
}

/// Merge one top-level section into the `BENCH_ppq.json` report without
/// disturbing the others.
///
/// The file is written by two benches (`ppq_speedup` owns the build-path
/// sections, `ppq_query_speedup` the `"query_path"` section), so each
/// rewrites only its own keys and running either bench preserves the
/// other's results. `rendered` is the fully rendered JSON value (its
/// continuation lines indented by two spaces). This is a line-oriented
/// splicer for the fixed layout these benches emit — top-level keys on
/// lines starting with `  "` — not a general JSON rewriter.
pub fn merge_bench_section(existing: &str, key: &str, rendered: &str) -> String {
    // Split the existing document into ordered (key, value-lines) pairs.
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in existing.lines() {
        if let Some(rest) = line.strip_prefix("  \"") {
            if let Some(q) = rest.find('"') {
                let k = rest[..q].to_string();
                let value = line[4 + q..].trim_start_matches(':').trim_start();
                sections.push((k, value.trim_end_matches(',').to_string()));
                continue;
            }
        }
        // Continuation line of the current section (or the outer braces).
        if line == "{" || line == "}" || line.trim().is_empty() {
            continue;
        }
        if let Some((_, v)) = sections.last_mut() {
            v.push('\n');
            let cont = line.strip_suffix(',').filter(|l| {
                // Only strip a section-separating comma on a closing line.
                matches!(l.trim_end(), "  ]" | "  }")
            });
            v.push_str(cont.unwrap_or(line));
        }
    }
    // Replace or append our section.
    let rendered = rendered.trim_end().to_string();
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = rendered,
        None => sections.push((key.to_string(), rendered)),
    }
    // Re-emit with correct commas.
    let mut out = String::new();
    out.push_str("{\n");
    let n = sections.len();
    for (i, (k, v)) in sections.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(out, "  \"{k}\": {v}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Median-of-`runs` wall-clock seconds for `f` (the last run's result is
/// returned alongside). The shared timing methodology of the
/// `BENCH_ppq.json`-writing benches; `runs` is clamped to at least 1.
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let runs = runs.max(1);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = std::time::Instant::now();
        last = Some(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    (median(&mut times), last.unwrap())
}

/// Median of a sample, in place. Panics on an empty slice or NaNs — bench
/// inputs are always finite wall-clock numbers.
pub fn median(values: &mut [f64]) -> f64 {
    percentile(values, 50.0)
}

/// The `q`-th percentile (0–100) of a sample by the nearest-rank method,
/// in place. The single implementation every bench target shares — the
/// per-bench copies of `sort + index` this replaces each picked a subtly
/// different rank convention.
pub fn percentile(values: &mut [f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&q), "percentile {q} out of range");
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = ((q / 100.0) * (values.len() - 1) as f64).round() as usize;
    values[rank]
}

/// The latency-histogram machinery now lives in `ppq-obs` (the live
/// metrics registry records into the same bucket layout); re-exported
/// here so every bench keeps its `ppq_bench::report::LatencyHistogram`
/// imports unchanged.
pub use ppq_obs::{LatencyHistogram, LatencySummary};

/// Format seconds with adaptive precision.
pub fn secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

/// Format a float with 3–4 significant digits, paper-style.
pub fn sig(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new("Demo", &["Method", "MAE(m)"]);
        t.row(vec!["PPQ-A".into(), "18.35".into()]);
        t.row(vec!["Residual Quantization".into(), "868.96".into()]);
        let out = t.render();
        assert!(out.contains("=== Demo ==="));
        assert!(out.contains("PPQ-A"));
        let lines: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        // All data lines share the same column positions.
        let bar = lines[0].find('|').unwrap();
        for l in &lines {
            assert_eq!(l.find('|').unwrap(), bar);
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn merge_section_roundtrips_and_replaces() {
        let v1 = "[\n    {\n      \"name\": \"q1\",\n      \"x\": 1\n    }\n  ]";
        // Fresh file.
        let doc = merge_bench_section("", "query_path", v1);
        assert!(doc.starts_with("{\n  \"query_path\": [\n"));
        assert!(doc.trim_end().ends_with('}'));
        // Adding a second section keeps the first byte-for-byte.
        let doc2 = merge_bench_section(&doc, "build", "{\"runs\": 3}");
        assert!(doc2.contains("\"query_path\": [\n    {\n      \"name\": \"q1\""));
        assert!(doc2.contains("\"build\": {\"runs\": 3}"));
        // Replacing the first leaves the second alone, idempotently.
        let v2 = "[\n    {\n      \"name\": \"q2\"\n    }\n  ]";
        let doc3 = merge_bench_section(&doc2, "query_path", v2);
        assert!(doc3.contains("\"name\": \"q2\""));
        assert!(!doc3.contains("\"name\": \"q1\""));
        assert!(doc3.contains("\"build\": {\"runs\": 3}"));
        assert_eq!(doc3, merge_bench_section(&doc3, "query_path", v2));
        // Comma discipline: every section line but the last ends with one.
        let brace_lines: Vec<&str> = doc3.lines().filter(|l| l.starts_with("  \"")).collect();
        assert_eq!(brace_lines.len(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(sig(0.0), "0");
        assert_eq!(sig(18.349), "18.3");
        assert_eq!(sig(0.123), "0.123");
        assert_eq!(sig(1752.29), "1752");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.50");
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&mut v), 3.0);
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 100.0), 5.0);
        let mut one = vec![7.0];
        assert_eq!(median(&mut one), 7.0);
        let mut two = vec![10.0, 20.0];
        // Nearest-rank on 2 samples: p50 rounds to the upper one.
        assert_eq!(median(&mut two), 20.0);
    }

    #[test]
    fn histogram_reexport_is_live() {
        // The full histogram suite lives in `ppq-obs`; this only pins
        // the re-export path every bench imports through.
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        assert_eq!(h.summary().count, 1);
    }
}
