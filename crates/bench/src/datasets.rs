//! Bench-scale datasets (scaled-down analogues of Porto / GeoLife /
//! sub-Porto; see DESIGN.md §3 for the substitution rationale).

use ppq_traj::synth::{
    geolife_like, porto_like, sub_porto, GeolifeConfig, PortoConfig, SubPortoConfig,
};
use ppq_traj::Dataset;

/// Global experiment scale factor from `PPQ_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("PPQ_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

fn scaled(n: usize) -> usize {
    ((n as f64 * scale()).round() as usize).max(10)
}

/// The Porto-like benchmark dataset (~45k points at scale 1).
pub fn porto_bench() -> Dataset {
    porto_like(&PortoConfig {
        trajectories: scaled(450),
        mean_len: 100,
        min_len: 30,
        start_spread: 120,
        seed: 0x7060,
    })
}

/// The GeoLife-like benchmark dataset (~35k points at scale 1, wide
/// extent, long trajectories).
pub fn geolife_bench() -> Dataset {
    geolife_like(&GeolifeConfig {
        trajectories: scaled(90),
        mean_len: 400,
        min_len: 30,
        start_spread: 60,
        seed: 0x6E0,
    })
}

/// The sub-Porto construction for the REST comparison:
/// `(targets, reference pool)`.
pub fn sub_porto_bench() -> (Dataset, Dataset) {
    sub_porto(&SubPortoConfig {
        base_trajectories: scaled(100),
        mean_len: 90,
        seed: 0x5B,
        noise_m: 40.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_traj::DatasetStats;

    #[test]
    fn bench_datasets_have_expected_shape() {
        let porto = porto_bench();
        let s = DatasetStats::of(&porto);
        assert!(s.points > 10_000);
        assert!(s.min_len >= 30);
        let geo = geolife_bench();
        let g = DatasetStats::of(&geo);
        assert!(g.bbox.unwrap().width() > 2.0, "geolife extent must be wide");
    }
}
