//! Query workload generation: random spatio-temporal queries drawn from
//! true trajectory positions (so every query has a non-empty answer),
//! matching the paper's "we randomly select 10,000 queries".

use ppq_geo::Point;
use ppq_traj::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample `n` queries `(t, position)` at true trajectory points.
pub fn sample_queries(dataset: &Dataset, n: usize, seed: u64) -> Vec<(u32, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let trajs = dataset.trajectories();
    assert!(!trajs.is_empty());
    (0..n)
        .map(|_| {
            let traj = &trajs[rng.gen_range(0..trajs.len())];
            let off = rng.gen_range(0..traj.len());
            (traj.start + off as u32, traj.points[off])
        })
        .collect()
}

/// Sample `n` (trajectory, t) pairs that still have at least `horizon`
/// points remaining — the TPQ workload of Table 3.
pub fn sample_tpq_anchors(
    dataset: &Dataset,
    n: usize,
    horizon: usize,
    seed: u64,
) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let eligible: Vec<&ppq_traj::Trajectory> = dataset
        .trajectories()
        .iter()
        .filter(|t| t.len() > horizon)
        .collect();
    assert!(
        !eligible.is_empty(),
        "no trajectory long enough for horizon {horizon}"
    );
    (0..n)
        .map(|_| {
            let traj = eligible[rng.gen_range(0..eligible.len())];
            let off = rng.gen_range(0..traj.len() - horizon);
            (traj.id, traj.start + off as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_traj::synth::{porto_like, PortoConfig};

    #[test]
    fn queries_hit_true_points() {
        let d = porto_like(&PortoConfig {
            trajectories: 10,
            mean_len: 40,
            min_len: 30,
            start_spread: 5,
            seed: 2,
        });
        let qs = sample_queries(&d, 50, 1);
        assert_eq!(qs.len(), 50);
        for (t, p) in qs {
            assert!(
                d.points_at(t).iter().any(|(_, q)| q == &p),
                "query not on a true point"
            );
        }
    }

    #[test]
    fn tpq_anchors_have_enough_future() {
        let d = porto_like(&PortoConfig {
            trajectories: 10,
            mean_len: 80,
            min_len: 60,
            start_spread: 5,
            seed: 2,
        });
        for (id, t) in sample_tpq_anchors(&d, 30, 50, 7) {
            let traj = d.trajectory(id);
            assert!(traj.active_at(t + 50), "anchor too close to the end");
        }
    }
}
