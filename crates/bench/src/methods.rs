//! The method registry: one uniform handle over the core variants and the
//! baselines, plus the deviation-budget parameterisation of §6.3.1.

use ppq_baselines::{build_pq, build_rq, trajstore, BaselineSummary, PerStepBudget};
use ppq_core::query::ReconIndex;
use ppq_core::{BuildBudget, PpqConfig, PpqSummary, PpqTrajectory, Variant};
use ppq_geo::coords;
use ppq_tpi::TpiConfig;
use ppq_traj::Dataset;
use std::time::Duration;

/// All methods of the main comparison tables, in the paper's row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodKind {
    PpqA,
    PpqABasic,
    PpqS,
    PpqSBasic,
    EPq,
    QTrajectory,
    ResidualQuantization,
    ProductQuantization,
    TrajStore,
}

pub const ALL_MAIN_METHODS: [MethodKind; 9] = [
    MethodKind::PpqA,
    MethodKind::PpqABasic,
    MethodKind::PpqS,
    MethodKind::PpqSBasic,
    MethodKind::EPq,
    MethodKind::QTrajectory,
    MethodKind::ResidualQuantization,
    MethodKind::ProductQuantization,
    MethodKind::TrajStore,
];

impl MethodKind {
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::PpqA => "PPQ-A",
            MethodKind::PpqABasic => "PPQ-A-basic",
            MethodKind::PpqS => "PPQ-S",
            MethodKind::PpqSBasic => "PPQ-S-basic",
            MethodKind::EPq => "E-PQ",
            MethodKind::QTrajectory => "Q-trajectory",
            MethodKind::ResidualQuantization => "Residual Quantization",
            MethodKind::ProductQuantization => "Product Quantization",
            MethodKind::TrajStore => "TrajStore",
        }
    }

    pub fn core_variant(&self) -> Option<Variant> {
        match self {
            MethodKind::PpqA => Some(Variant::PpqA),
            MethodKind::PpqABasic => Some(Variant::PpqABasic),
            MethodKind::PpqS => Some(Variant::PpqS),
            MethodKind::PpqSBasic => Some(Variant::PpqSBasic),
            MethodKind::EPq => Some(Variant::EPq),
            MethodKind::QTrajectory => Some(Variant::QTrajectory),
            _ => None,
        }
    }

    /// Does this method use CQC (and therefore the local-search exact
    /// query guarantee)?
    pub fn has_cqc(&self) -> bool {
        matches!(self, MethodKind::PpqA | MethodKind::PpqS)
    }
}

/// A built method of either family.
// The size difference between the variants is irrelevant here: a handful
// of AnySummary values exist per experiment.
#[allow(clippy::large_enum_variant)]
pub enum AnySummary {
    Ppq(PpqSummary),
    Baseline(BaselineSummary),
}

impl AnySummary {
    pub fn as_index(&self) -> &dyn ReconIndex {
        match self {
            AnySummary::Ppq(s) => s,
            AnySummary::Baseline(s) => s,
        }
    }

    pub fn mae_meters(&self, dataset: &Dataset) -> f64 {
        match self {
            AnySummary::Ppq(s) => s.mae_meters(dataset),
            AnySummary::Baseline(s) => s.mae_meters(dataset),
        }
    }

    pub fn codewords(&self) -> usize {
        match self {
            AnySummary::Ppq(s) => s.codebook_len(),
            AnySummary::Baseline(s) => s.codewords,
        }
    }

    pub fn summary_bytes(&self) -> usize {
        match self {
            AnySummary::Ppq(s) => s.breakdown().total(),
            AnySummary::Baseline(s) => s.summary_bytes,
        }
    }

    pub fn build_time(&self) -> Duration {
        match self {
            AnySummary::Ppq(s) => s.stats().total,
            AnySummary::Baseline(s) => s.build_time,
        }
    }

    pub fn compression_ratio(&self, dataset: &Dataset) -> f64 {
        dataset.raw_size_bytes() as f64 / self.summary_bytes() as f64
    }
}

/// Spatial-partition threshold per dataset, mirroring the paper's
/// "ε_p defaults to 0.1 for Porto and 5 for GeoLife".
pub fn eps_p_spatial_for(dataset: &Dataset) -> f64 {
    let wide = dataset
        .bbox()
        .map(|b| b.width().max(b.height()) > 1.0)
        .unwrap_or(false);
    if wide {
        5.0
    } else {
        0.1
    }
}

/// Core-variant config with the paper's per-dataset defaults.
pub fn core_config(dataset: &Dataset, v: Variant) -> PpqConfig {
    PpqConfig::variant(v, eps_p_spatial_for(dataset))
}

/// Build a method under the error-bounded regime with paper-default
/// parameters. `parity` supplies the per-step codeword budget for the
/// per-step baselines (from PPQ-A's build, §6.2.1); TrajStore receives
/// the summed budget.
pub fn build_error_bounded(
    kind: MethodKind,
    dataset: &Dataset,
    parity: Option<&[(u32, u32)]>,
    with_index: bool,
) -> AnySummary {
    let tpi_cfg = with_index.then(TpiConfig::default);
    match kind.core_variant() {
        Some(v) => {
            let mut cfg = core_config(dataset, v);
            cfg.build_index = with_index;
            // Q-trajectory quantizes raw coordinates; under the Table 2
            // protocol it gets the same per-step codeword budget as the
            // other raw-coordinate baselines.
            if v == Variant::QTrajectory {
                if let Some(p) = parity {
                    cfg.budget = BuildBudget::PerStepWords(p.to_vec());
                }
            }
            AnySummary::Ppq(PpqTrajectory::build(dataset, &cfg).into_summary())
        }
        None => match kind {
            MethodKind::ProductQuantization => {
                let budget = parity
                    .map(|p| PerStepBudget::Words(p.to_vec()))
                    .unwrap_or(PerStepBudget::Bounded(0.001));
                AnySummary::Baseline(build_pq(dataset, &budget, tpi_cfg.as_ref()))
            }
            MethodKind::ResidualQuantization => {
                let budget = parity
                    .map(|p| PerStepBudget::Words(p.to_vec()))
                    .unwrap_or(PerStepBudget::Bounded(0.001));
                AnySummary::Baseline(build_rq(dataset, &budget, tpi_cfg.as_ref()))
            }
            MethodKind::TrajStore => {
                let budget = match parity {
                    Some(p) => trajstore::TsBudget::TotalWords(
                        p.iter().map(|(_, w)| *w as usize).sum::<usize>().max(1),
                    ),
                    None => trajstore::TsBudget::Bounded(0.001),
                };
                let ts = trajstore::build_trajstore(
                    dataset,
                    budget,
                    &trajstore::TrajStoreConfig::default(),
                );
                let mut summary = ts.summary;
                if let Some(cfg) = &tpi_cfg {
                    // TrajStore normally queries through its quadtree; for
                    // precision/recall parity we let it reuse the shared
                    // evaluation index over its reconstructions.
                    summary = BaselineSummary::assemble(
                        "TrajStore",
                        dataset,
                        summary.recon,
                        summary.summary_bytes,
                        summary.codewords,
                        summary.build_time,
                        Some(cfg),
                    );
                }
                AnySummary::Baseline(summary)
            }
            _ => unreachable!(),
        },
    }
}

/// Build a method under the fixed-bits budget of Table 4.
pub fn build_budgeted(kind: MethodKind, dataset: &Dataset, bits: u32) -> AnySummary {
    let tpi_cfg = TpiConfig::default();
    match kind.core_variant() {
        Some(v) => {
            let mut cfg = core_config(dataset, v);
            cfg.budget = BuildBudget::PerStepBits(bits);
            AnySummary::Ppq(PpqTrajectory::build(dataset, &cfg).into_summary())
        }
        None => match kind {
            MethodKind::ProductQuantization => AnySummary::Baseline(build_pq(
                dataset,
                &PerStepBudget::Bits(bits),
                Some(&tpi_cfg),
            )),
            MethodKind::ResidualQuantization => AnySummary::Baseline(build_rq(
                dataset,
                &PerStepBudget::Bits(bits),
                Some(&tpi_cfg),
            )),
            MethodKind::TrajStore => {
                unreachable!("Table 4 excludes TrajStore, as in the paper")
            }
            _ => unreachable!(),
        },
    }
}

/// §6.3.1 deviation parameterisation: for a requested spatial deviation
/// `D` (metres), CQC methods set `g_s = √2·D` (so `(√2/2)·g_s = D`) and
/// `ε₁ᴹ = 2·g_s`; everything else sets `ε₁ᴹ = D` directly.
pub fn build_for_deviation(kind: MethodKind, dataset: &Dataset, deviation_m: f64) -> AnySummary {
    let d_deg = coords::meters_to_deg(deviation_m);
    match kind.core_variant() {
        Some(v) => {
            let mut cfg = core_config(dataset, v);
            cfg.build_index = false;
            if kind.has_cqc() {
                cfg.gs = std::f64::consts::SQRT_2 * d_deg;
                cfg.eps1 = 2.0 * cfg.gs;
            } else {
                cfg.eps1 = d_deg;
                cfg.use_cqc = false;
            }
            AnySummary::Ppq(PpqTrajectory::build(dataset, &cfg).into_summary())
        }
        None => match kind {
            MethodKind::ProductQuantization => {
                AnySummary::Baseline(build_pq(dataset, &PerStepBudget::Bounded(d_deg), None))
            }
            MethodKind::ResidualQuantization => {
                AnySummary::Baseline(build_rq(dataset, &PerStepBudget::Bounded(d_deg), None))
            }
            MethodKind::TrajStore => {
                let ts = trajstore::build_trajstore(
                    dataset,
                    trajstore::TsBudget::Bounded(d_deg),
                    &trajstore::TrajStoreConfig::default(),
                );
                AnySummary::Baseline(ts.summary)
            }
            _ => unreachable!(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_traj::synth::{porto_like, PortoConfig};

    fn tiny() -> Dataset {
        porto_like(&PortoConfig {
            trajectories: 15,
            mean_len: 35,
            min_len: 30,
            start_spread: 5,
            seed: 3,
        })
    }

    #[test]
    fn all_methods_build_error_bounded() {
        let d = tiny();
        let parity: Vec<(u32, u32)> = (0..40).map(|t| (t, 8)).collect();
        for kind in ALL_MAIN_METHODS {
            let s = build_error_bounded(kind, &d, Some(&parity), false);
            assert!(s.mae_meters(&d).is_finite(), "{}", kind.name());
            assert!(s.summary_bytes() > 0, "{}", kind.name());
        }
    }

    #[test]
    fn deviation_parameterisation() {
        let d = tiny();
        for kind in [
            MethodKind::PpqA,
            MethodKind::PpqSBasic,
            MethodKind::QTrajectory,
        ] {
            let s = build_for_deviation(kind, &d, 400.0);
            // The guaranteed deviation translates to ≤ 400 m of error.
            let worst_m = match &s {
                AnySummary::Ppq(p) => coords::deg_to_meters(p.max_error(&d)),
                AnySummary::Baseline(b) => coords::deg_to_meters(b.max_error(&d)),
            };
            assert!(worst_m <= 400.0 + 1e-6, "{}: {worst_m}", kind.name());
        }
    }
}
