//! Property tests: the error-bound invariant is the contract everything
//! above this crate relies on (paper Definition 3.2).

use ppq_geo::Point;
use ppq_quantize::bits::{pack_indices, unpack_indices};
use ppq_quantize::{bounded_kmeans, IncrementalQuantizer, KMeansConfig};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition 3.2: every point within eps of its codeword.
    #[test]
    fn incremental_quantizer_error_bound(pts in arb_points(200), eps in 0.05f64..5.0) {
        let mut q = IncrementalQuantizer::new(eps);
        let codes = q.quantize_batch(&pts);
        for (p, &b) in pts.iter().zip(&codes) {
            prop_assert!(p.dist(&q.word(b)) <= eps + 1e-9);
        }
    }

    /// The bound holds across multiple batches (the online setting).
    #[test]
    fn incremental_quantizer_multi_batch(batches in prop::collection::vec(arb_points(60), 1..5),
                                         eps in 0.1f64..3.0) {
        let mut q = IncrementalQuantizer::new(eps);
        for batch in &batches {
            let codes = q.quantize_batch(batch);
            for (p, &b) in batch.iter().zip(&codes) {
                prop_assert!(p.dist(&q.word(b)) <= eps + 1e-9);
            }
        }
    }

    /// Bounded k-means honours its radius constraint (Eqs. 7/8).
    #[test]
    fn bounded_kmeans_bound(pts in arb_points(150), bound in 0.5f64..20.0) {
        let res = bounded_kmeans(&pts, bound, &KMeansConfig::default());
        prop_assert!(res.bounded);
        for (p, &a) in pts.iter().zip(&res.assign) {
            prop_assert!(p.dist(&res.centroids[a as usize]) <= bound + 1e-9);
        }
    }

    /// Bit packing is lossless at any width.
    #[test]
    fn bitpack_roundtrip(width in 1u32..21, values in prop::collection::vec(0u32..u32::MAX, 0..100)) {
        let masked: Vec<u32> = values.iter().map(|v| v & ((1u64 << width) as u32).wrapping_sub(1)).collect();
        let bytes = pack_indices(&masked, width);
        prop_assert_eq!(unpack_indices(&bytes, width, masked.len()), masked);
    }
}
