//! Parallel determinism: every parallel kernel in this crate must be
//! *bit-identical* to its serial execution. The kernels guarantee this by
//! construction — chunk boundaries are fixed constants and per-chunk
//! partials merge in chunk order — and these tests pin the property by
//! running the same fit under `rayon::with_thread_count(1, ..)` and
//! `with_thread_count(4, ..)` (the shim's lock-serialized in-process
//! override) and comparing outputs exactly.

use ppq_geo::Point;
use ppq_quantize::{bounded_kmeans, kmeans, IncrementalQuantizer, KMeansConfig, ProductQuantizer};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Clustered points, large enough to clear the parallel work thresholds.
fn clustered_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..12)
        .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % centers.len()];
            Point::new(
                c.x + rng.gen_range(-3.0..3.0),
                c.y + rng.gen_range(-3.0..3.0),
            )
        })
        .collect()
}

proptest! {
    // Each case runs several full fits over ≥20k points; keep case counts
    // low and sizes varied instead.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// kmeans: identical centroids and assignment at 1 vs 4 threads.
    /// Sizes sit above PARALLEL_MIN_WORK (n·k ≥ 2^18) so the parallel
    /// sweep genuinely engages.
    #[test]
    fn kmeans_thread_count_invariant(seed in 0u64..1_000_000, k in 8usize..24, extra in 0usize..3000) {
        let pts = clustered_points(36_000 + extra, seed);
        let cfg = KMeansConfig::default();
        let serial = rayon::with_thread_count(1, || kmeans(&pts, k, &cfg));
        let parallel = rayon::with_thread_count(4, || kmeans(&pts, k, &cfg));
        prop_assert_eq!(&serial.1, &parallel.1, "assignments diverged");
        prop_assert_eq!(serial.0.len(), parallel.0.len());
        for (a, b) in serial.0.iter().zip(&parallel.0) {
            prop_assert!(a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                "centroid bits diverged: {:?} vs {:?}", a, b);
        }
    }

    /// ProductQuantizer::fit: identical words and codes at 1 vs 4 threads.
    #[test]
    fn product_fit_thread_count_invariant(seed in 0u64..1_000_000, words in 16usize..64) {
        let pts = clustered_points(24_000, seed);
        let serial = rayon::with_thread_count(1, || ProductQuantizer::fit(&pts, words));
        let parallel = rayon::with_thread_count(4, || ProductQuantizer::fit(&pts, words));
        prop_assert_eq!(&serial.x_codes, &parallel.x_codes);
        prop_assert_eq!(&serial.y_codes, &parallel.y_codes);
        for (a, b) in serial.x_words.iter().zip(&parallel.x_words) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
        for (a, b) in serial.y_words.iter().zip(&parallel.y_words) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
    }
}

/// bounded_kmeans drives the incremental quantizer's growth; pin it too.
#[test]
fn bounded_kmeans_thread_count_invariant() {
    let pts = clustered_points(40_000, 0xB0B);
    let cfg = KMeansConfig::default();
    let serial = rayon::with_thread_count(1, || bounded_kmeans(&pts, 4.0, &cfg));
    let parallel = rayon::with_thread_count(4, || bounded_kmeans(&pts, 4.0, &cfg));
    assert_eq!(serial.assign, parallel.assign);
    assert_eq!(serial.rounds, parallel.rounds);
    assert_eq!(serial.bounded, parallel.bounded);
    for (a, b) in serial.centroids.iter().zip(&parallel.centroids) {
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
}

/// The streaming quantizer's parallel probe phase must leave the codebook
/// and code stream identical to the serial path across multiple batches.
#[test]
fn incremental_quantizer_thread_count_invariant() {
    let batches: Vec<Vec<Point>> = (0..4)
        .map(|b| clustered_points(8_000, 0xFEED + b as u64))
        .collect();
    let run = || {
        let mut q = IncrementalQuantizer::new(1.5);
        let codes: Vec<Vec<u32>> = batches.iter().map(|b| q.quantize_batch(b)).collect();
        (codes, q.codebook().clone())
    };
    let (serial_codes, serial_book) = rayon::with_thread_count(1, run);
    let (parallel_codes, parallel_book) = rayon::with_thread_count(4, run);
    assert_eq!(serial_codes, parallel_codes);
    assert_eq!(serial_book.len(), parallel_book.len());
    for i in 0..serial_book.len() {
        let (a, b) = (serial_book.word(i as u32), parallel_book.word(i as u32));
        assert_eq!(a.x.to_bits(), b.x.to_bits());
        assert_eq!(a.y.to_bits(), b.y.to_bits());
    }
}
