//! The error-bounded codebook `C` (paper Definition 3.2).

use ppq_geo::Point;

/// A codebook: an append-only list of 2-D codewords.
///
/// Codeword indices (`b_i^t` in the paper) are `u32`; the summary-size
/// accounting charges `ceil(log2 |C|)` bits per stored index (see
/// [`crate::bits`]).
#[derive(Clone, Debug, Default)]
pub struct Codebook {
    words: Vec<Point>,
}

impl Codebook {
    pub fn new() -> Self {
        Codebook { words: Vec::new() }
    }

    pub fn from_words(words: Vec<Point>) -> Self {
        Codebook { words }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Append a codeword, returning its index.
    #[inline]
    pub fn push(&mut self, w: Point) -> u32 {
        let idx = self.words.len() as u32;
        self.words.push(w);
        idx
    }

    /// The codeword assigned to index `b` — `C(b)` in the paper.
    #[inline]
    pub fn word(&self, b: u32) -> Point {
        self.words[b as usize]
    }

    #[inline]
    pub fn words(&self) -> &[Point] {
        &self.words
    }

    /// Exhaustive nearest-codeword search. The hot path uses
    /// [`crate::GridNN`] instead; this is the reference implementation and
    /// the fallback for tiny codebooks.
    pub fn nearest(&self, p: &Point) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for (i, w) in self.words.iter().enumerate() {
            let d2 = p.dist2(w);
            if best.is_none_or(|(_, bd2)| d2 < bd2) {
                best = Some((i as u32, d2));
            }
        }
        best.map(|(i, d2)| (i, d2.sqrt()))
    }

    /// Bits needed to address a codeword: `ceil(log2 |C|)`, minimum 1.
    pub fn index_bits(&self) -> u32 {
        index_bits_for(self.words.len())
    }

    /// Serialized size of the codebook itself: two `f64` per codeword.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 2 * std::mem::size_of::<f64>()
    }
}

/// Bits needed to address `n` entries: `ceil(log2 n)`, minimum 1.
pub fn index_bits_for(n: usize) -> u32 {
    match n {
        0..=2 => 1,
        n => (usize::BITS - (n - 1).leading_zeros()).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut cb = Codebook::new();
        assert!(cb.is_empty());
        let a = cb.push(Point::new(1.0, 1.0));
        let b = cb.push(Point::new(-1.0, 2.0));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.word(1), Point::new(-1.0, 2.0));
    }

    #[test]
    fn nearest_exhaustive() {
        let cb = Codebook::from_words(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 10.0),
        ]);
        let (idx, d) = cb.nearest(&Point::new(9.0, 1.0)).unwrap();
        assert_eq!(idx, 1);
        assert!((d - 2.0f64.sqrt()).abs() < 1e-12);
        assert!(Codebook::new().nearest(&Point::ORIGIN).is_none());
    }

    #[test]
    fn index_bit_widths() {
        assert_eq!(index_bits_for(0), 1);
        assert_eq!(index_bits_for(1), 1);
        assert_eq!(index_bits_for(2), 1);
        assert_eq!(index_bits_for(3), 2);
        assert_eq!(index_bits_for(4), 2);
        assert_eq!(index_bits_for(5), 3);
        assert_eq!(index_bits_for(256), 8);
        assert_eq!(index_bits_for(257), 9);
    }

    #[test]
    fn size_accounting() {
        let mut cb = Codebook::new();
        cb.push(Point::ORIGIN);
        cb.push(Point::ORIGIN);
        assert_eq!(cb.size_bytes(), 32);
    }
}
