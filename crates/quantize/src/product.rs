//! Product Quantization baseline (Jégou et al., TPAMI 2011), restated for
//! 2-D trajectory points as in the paper's evaluation (§6.1).
//!
//! The point space is split into its two natural sub-dimensions (x and y);
//! each gets an independent scalar codebook. A point's code is the pair of
//! sub-codeword indices, so PQ pays *two* index streams per point — exactly
//! the extra-index cost the paper calls out when comparing compression
//! ratios (§6.4).

use crate::codebook::index_bits_for;
use ppq_geo::Point;

/// A fitted product quantizer over one batch of points.
#[derive(Clone, Debug)]
pub struct ProductQuantizer {
    pub x_words: Vec<f64>,
    pub y_words: Vec<f64>,
    pub x_codes: Vec<u32>,
    pub y_codes: Vec<u32>,
}

/// 1-D Lloyd's k-means (exact assignment via sort + binary search would be
/// possible, but the 1-D Lloyd loop is simple and fast enough for the
/// codebook sizes the experiments use).
pub fn kmeans_1d(values: &[f64], k: usize, iters: usize) -> (Vec<f64>, Vec<u32>) {
    assert!(!values.is_empty());
    let k = k.clamp(1, values.len());
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| (l.min(v), h.max(v)));
    // Uniform init across the range; stable and deterministic.
    let mut cents: Vec<f64> = (0..k)
        .map(|i| {
            if k == 1 {
                (lo + hi) * 0.5
            } else {
                lo + (hi - lo) * i as f64 / (k - 1) as f64
            }
        })
        .collect();
    let mut assign = vec![0u32; values.len()];
    for _ in 0..iters {
        for (i, &v) in values.iter().enumerate() {
            let mut best = 0u32;
            let mut bd = f64::INFINITY;
            for (c, &cc) in cents.iter().enumerate() {
                let d = (v - cc).abs();
                if d < bd {
                    bd = d;
                    best = c as u32;
                }
            }
            assign[i] = best;
        }
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &v) in values.iter().enumerate() {
            sums[assign[i] as usize] += v;
            counts[assign[i] as usize] += 1;
        }
        let mut moved = 0.0;
        for c in 0..k {
            if counts[c] > 0 {
                let nc = sums[c] / counts[c] as f64;
                moved += (nc - cents[c]).abs();
                cents[c] = nc;
            } else {
                // Re-seed an empty cluster at the worst-fit value so the
                // codebook cannot waste capacity (needed for the bounded
                // fit to converge).
                let (wi, _) = values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i, (v - cents[assign[i] as usize]).abs()))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                cents[c] = values[wi];
                moved = f64::INFINITY;
            }
        }
        if moved < 1e-12 {
            break;
        }
    }
    // Final assignment.
    for (i, &v) in values.iter().enumerate() {
        let mut best = 0u32;
        let mut bd = f64::INFINITY;
        for (c, &cc) in cents.iter().enumerate() {
            let d = (v - cc).abs();
            if d < bd {
                bd = d;
                best = c as u32;
            }
        }
        assign[i] = best;
    }
    (cents, assign)
}

impl ProductQuantizer {
    /// Fit with a per-sub-dimension codebook size (`words_per_dim`
    /// codewords on x and on y).
    pub fn fit(points: &[Point], words_per_dim: usize) -> Self {
        assert!(!points.is_empty());
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        let (x_words, x_codes) = kmeans_1d(&xs, words_per_dim, 16);
        let (y_words, y_codes) = kmeans_1d(&ys, words_per_dim, 16);
        ProductQuantizer { x_words, y_words, x_codes, y_codes }
    }

    /// Fit with a total index budget of `bits` per point, split between the
    /// two sub-dimensions (x gets the extra bit when `bits` is odd).
    pub fn fit_bits(points: &[Point], bits: u32) -> Self {
        assert!(bits >= 2, "need at least 1 bit per sub-dimension");
        let bx = bits.div_ceil(2);
        let by = bits / 2;
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        let (x_words, x_codes) = kmeans_1d(&xs, 1usize << bx, 16);
        let (y_words, y_codes) = kmeans_1d(&ys, 1usize << by, 16);
        ProductQuantizer { x_words, y_words, x_codes, y_codes }
    }

    /// Grow the per-dimension codebooks until the max 2-D reconstruction
    /// error is within `eps` (used by the deviation-budget experiments,
    /// Tables 5–6). Each round multiplies the sub-codebook size by 2.
    pub fn fit_bounded(points: &[Point], eps: f64) -> Self {
        assert!(eps > 0.0);
        let mut k = 2usize;
        loop {
            let pq = Self::fit(points, k);
            if pq.max_error(points) <= eps {
                return pq;
            }
            if k >= points.len() {
                // Exact fallback: one scalar codeword per distinct value on
                // each axis — zero quantization error by construction.
                return Self::exact(points);
            }
            k *= 2;
        }
    }

    /// Degenerate PQ with one codeword per distinct scalar value.
    fn exact(points: &[Point]) -> Self {
        let assign_axis = |values: &[f64]| {
            let mut words: Vec<f64> = values.to_vec();
            words.sort_by(|a, b| a.partial_cmp(b).unwrap());
            words.dedup();
            let codes = values
                .iter()
                .map(|v| words.partition_point(|w| w < v) as u32)
                .collect::<Vec<u32>>();
            (words, codes)
        };
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        let (x_words, x_codes) = assign_axis(&xs);
        let (y_words, y_codes) = assign_axis(&ys);
        ProductQuantizer { x_words, y_words, x_codes, y_codes }
    }

    /// Reconstruction of input `i`.
    #[inline]
    pub fn reconstruct(&self, i: usize) -> Point {
        Point::new(
            self.x_words[self.x_codes[i] as usize],
            self.y_words[self.y_codes[i] as usize],
        )
    }

    pub fn max_error(&self, points: &[Point]) -> f64 {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| p.dist(&self.reconstruct(i)))
            .fold(0.0, f64::max)
    }

    pub fn mean_error(&self, points: &[Point]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        points.iter().enumerate().map(|(i, p)| p.dist(&self.reconstruct(i))).sum::<f64>()
            / points.len() as f64
    }

    /// Number of stored codewords, counted in 2-D codeword equivalents
    /// (two scalar words = one 2-D word's storage).
    pub fn codeword_equivalents(&self) -> usize {
        (self.x_words.len() + self.y_words.len()).div_ceil(2)
    }

    /// Index bits per point: PQ stores two sub-indices.
    pub fn index_bits_per_point(&self) -> u32 {
        index_bits_for(self.x_words.len()) + index_bits_for(self.y_words.len())
    }

    /// Codebook bytes: scalar words are one f64 each.
    pub fn codebook_bytes(&self) -> usize {
        (self.x_words.len() + self.y_words.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0))).collect()
    }

    #[test]
    fn kmeans_1d_two_clusters() {
        let vals = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let (cents, assign) = kmeans_1d(&vals, 2, 20);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[3], assign[5]);
        assert_ne!(assign[0], assign[3]);
        let mut sorted = cents.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 0.1).abs() < 1e-9);
        assert!((sorted[1] - 10.1).abs() < 1e-9);
    }

    #[test]
    fn more_words_less_error() {
        let pts = points(500, 1);
        let small = ProductQuantizer::fit(&pts, 4);
        let large = ProductQuantizer::fit(&pts, 32);
        assert!(large.mean_error(&pts) < small.mean_error(&pts));
    }

    #[test]
    fn bounded_fit_respects_eps() {
        let pts = points(300, 2);
        let pq = ProductQuantizer::fit_bounded(&pts, 0.5);
        assert!(pq.max_error(&pts) <= 0.5 + 1e-12);
    }

    #[test]
    fn bits_split() {
        let pts = points(100, 3);
        let pq = ProductQuantizer::fit_bits(&pts, 5);
        assert_eq!(pq.x_words.len(), 8); // ceil(5/2) = 3 bits
        assert_eq!(pq.y_words.len(), 4); // floor(5/2) = 2 bits
        assert_eq!(pq.index_bits_per_point(), 5);
    }

    #[test]
    fn pq_pays_double_index_cost() {
        let pts = points(100, 4);
        let pq = ProductQuantizer::fit(&pts, 16);
        // 16 words per dim -> 4 bits per dim -> 8 bits per point.
        assert_eq!(pq.index_bits_per_point(), 8);
    }
}
