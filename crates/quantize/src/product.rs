//! Product Quantization baseline (Jégou et al., TPAMI 2011), restated for
//! 2-D trajectory points as in the paper's evaluation (§6.1).
//!
//! The point space is split into its two natural sub-dimensions (x and y);
//! each gets an independent scalar codebook. A point's code is the pair of
//! sub-codeword indices, so PQ pays *two* index streams per point — exactly
//! the extra-index cost the paper calls out when comparing compression
//! ratios (§6.4).
//!
//! # Performance shape
//!
//! The two sub-dimension fits are independent, so [`ProductQuantizer::fit`]
//! runs them on both sides of a [`rayon::join`]; within one axis the 1-D
//! Lloyd sweep is chunked exactly like the 2-D k-means (fixed `CHUNK_1D`
//! boundaries, per-chunk partials merged in chunk order) so results are
//! bit-identical at any thread count. [`ProductQuantizer::fit_bounded`]
//! reuses one [`PqWorkspace`] across its doubling rounds: the axis
//! extraction happens once and no per-round buffers are allocated.

use crate::codebook::index_bits_for;
use ppq_geo::Point;
use rayon::prelude::*;

/// A fitted product quantizer over one batch of points.
#[derive(Clone, Debug)]
pub struct ProductQuantizer {
    pub x_words: Vec<f64>,
    pub y_words: Vec<f64>,
    pub x_codes: Vec<u32>,
    pub y_codes: Vec<u32>,
}

/// Values per parallel work unit in the 1-D sweep; fixed so chunked
/// reductions are thread-count-invariant.
const CHUNK_1D: usize = 2048;

/// Minimum `values × centroids` work before a 1-D sweep fans out. Sized
/// for the shim's per-call thread-spawn cost (no pool); see
/// `PARALLEL_MIN_WORK` in `kmeans.rs`.
const PARALLEL_MIN_WORK_1D: usize = 1 << 18;

/// Reusable scratch for one scalar (1-D) k-means axis.
#[derive(Clone, Debug, Default)]
pub struct Scalar1dWorkspace {
    cents: Vec<f64>,
    assign: Vec<u32>,
    /// |value − assigned centroid| per value.
    dist: Vec<f64>,
    /// Per-chunk partial sums/counts, laid out `[chunk][centroid]`.
    part_s: Vec<f64>,
    part_n: Vec<u32>,
}

/// Reusable scratch for a full product-quantizer fit: the two axis
/// extractions plus one scalar workspace per axis.
#[derive(Clone, Debug, Default)]
pub struct PqWorkspace {
    xs: Vec<f64>,
    ys: Vec<f64>,
    wx: Scalar1dWorkspace,
    wy: Scalar1dWorkspace,
}

impl PqWorkspace {
    pub fn new() -> PqWorkspace {
        PqWorkspace::default()
    }

    fn load(&mut self, points: &[Point]) {
        self.xs.clear();
        self.ys.clear();
        self.xs.reserve(points.len());
        self.ys.reserve(points.len());
        for p in points {
            self.xs.push(p.x);
            self.ys.push(p.y);
        }
    }
}

/// Register-block width of the 1-D assignment kernel (same measured
/// blocking as the 2-D kernel in `kmeans.rs`).
const LANES_1D: usize = 16;

/// Assign every value in one chunk to its nearest centroid, recording the
/// absolute deviation, and accumulate the chunk's partial sums. The
/// assignment runs register-blocked: `LANES_1D` running minima and their
/// indices stay in registers while the centroid array streams through,
/// giving a branchless select chain the compiler vectorizes. Strict `<`
/// keeps the lowest centroid index on ties — bit-identical to the scalar
/// loop.
#[inline]
fn sweep_chunk_1d(
    values: &[f64],
    cents: &[f64],
    assign: &mut [u32],
    dist: &mut [f64],
    part_s: &mut [f64],
    part_n: &mut [u32],
) {
    let n = values.len();
    let mut i = 0;
    while i + LANES_1D <= n {
        let mut vs = [0.0f64; LANES_1D];
        vs.copy_from_slice(&values[i..i + LANES_1D]);
        let mut bd = [f64::INFINITY; LANES_1D];
        let mut bi = [0u32; LANES_1D];
        for (c, &cc) in cents.iter().enumerate() {
            let c = c as u32;
            for l in 0..LANES_1D {
                let d = (vs[l] - cc).abs();
                let better = d < bd[l];
                bd[l] = if better { d } else { bd[l] };
                bi[l] = if better { c } else { bi[l] };
            }
        }
        assign[i..i + LANES_1D].copy_from_slice(&bi);
        dist[i..i + LANES_1D].copy_from_slice(&bd);
        i += LANES_1D;
    }
    while i < n {
        let v = values[i];
        let mut best = 0u32;
        let mut bd = f64::INFINITY;
        for (c, &cc) in cents.iter().enumerate() {
            let d = (v - cc).abs();
            if d < bd {
                bd = d;
                best = c as u32;
            }
        }
        assign[i] = best;
        dist[i] = bd;
        i += 1;
    }
    part_s.fill(0.0);
    part_n.fill(0);
    for i in 0..n {
        let a = assign[i] as usize;
        part_s[a] += values[i];
        part_n[a] += 1;
    }
}

/// One chunk's disjoint views for a 1-D sweep: values, assignment,
/// deviations, and the chunk's partial sums/counts.
type Sweep1dItem<'a> = (
    &'a [f64],
    &'a mut [u32],
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [u32],
);

/// One full assignment sweep over an axis, parallel over fixed-size chunks
/// when the workload justifies it.
fn sweep_1d(values: &[f64], ws: &mut Scalar1dWorkspace) {
    let k = ws.cents.len();
    let chunks = values.len().div_ceil(CHUNK_1D).max(1);
    ws.assign.resize(values.len(), 0);
    ws.dist.resize(values.len(), 0.0);
    ws.part_s.clear();
    ws.part_n.clear();
    ws.part_s.resize(chunks * k, 0.0);
    ws.part_n.resize(chunks * k, 0);

    let Scalar1dWorkspace {
        cents,
        assign,
        dist,
        part_s,
        part_n,
    } = ws;
    let cents = &*cents;
    let items: Vec<_> = values
        .chunks(CHUNK_1D)
        .zip(assign.chunks_mut(CHUNK_1D))
        .zip(dist.chunks_mut(CHUNK_1D))
        .zip(part_s.chunks_mut(k).zip(part_n.chunks_mut(k)))
        .map(|(((vs, asg), ds), (ps, pn))| (vs, asg, ds, ps, pn))
        .collect();
    let run = |(vs, asg, ds, ps, pn): Sweep1dItem<'_>| {
        sweep_chunk_1d(vs, cents, asg, ds, ps, pn);
    };
    if values.len() * k >= PARALLEL_MIN_WORK_1D && rayon::current_num_threads() > 1 {
        items.into_par_iter().for_each(run);
    } else {
        items.into_iter().for_each(run);
    }
}

/// Merge one centroid's per-chunk partials in chunk order (deterministic
/// reduction order regardless of the parallel schedule).
fn merged_1d(ws: &Scalar1dWorkspace, n_values: usize, c: usize) -> (f64, u32) {
    let k = ws.cents.len();
    let chunks = n_values.div_ceil(CHUNK_1D).max(1);
    let mut s = 0.0;
    let mut n = 0u32;
    for chunk in 0..chunks {
        s += ws.part_s[chunk * k + c];
        n += ws.part_n[chunk * k + c];
    }
    (s, n)
}

/// 1-D Lloyd's k-means (exact assignment via sort + binary search would be
/// possible, but the 1-D Lloyd loop is simple and fast enough for the
/// codebook sizes the experiments use).
pub fn kmeans_1d(values: &[f64], k: usize, iters: usize) -> (Vec<f64>, Vec<u32>) {
    let mut ws = Scalar1dWorkspace::default();
    kmeans_1d_with(values, k, iters, &mut ws);
    (ws.cents.clone(), ws.assign.clone())
}

/// [`kmeans_1d`] into caller-provided scratch; the fitted centroids and
/// assignment are left in `ws`.
pub fn kmeans_1d_with(values: &[f64], k: usize, iters: usize, ws: &mut Scalar1dWorkspace) {
    assert!(!values.is_empty());
    let k = k.clamp(1, values.len());
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    // Uniform init across the range; stable and deterministic.
    ws.cents.clear();
    ws.cents.extend((0..k).map(|i| {
        if k == 1 {
            (lo + hi) * 0.5
        } else {
            lo + (hi - lo) * i as f64 / (k - 1) as f64
        }
    }));
    for _ in 0..iters {
        sweep_1d(values, ws);
        let mut moved = 0.0;
        let mut reseed: Option<usize> = None;
        for c in 0..k {
            let (s, n) = merged_1d(ws, values.len(), c);
            if n > 0 {
                let nc = s / n as f64;
                moved += (nc - ws.cents[c]).abs();
                ws.cents[c] = nc;
            } else {
                // Re-seed an empty cluster at the worst-fit value so the
                // codebook cannot waste capacity (needed for the bounded
                // fit to converge).
                let wi = *reseed.get_or_insert_with(|| {
                    let mut wi = 0;
                    let mut wd = -1.0;
                    for (i, &d) in ws.dist.iter().enumerate() {
                        if d > wd {
                            wd = d;
                            wi = i;
                        }
                    }
                    wi
                });
                ws.cents[c] = values[wi];
                moved = f64::INFINITY;
            }
        }
        if moved < 1e-12 {
            break;
        }
    }
    // Final assignment.
    sweep_1d(values, ws);
}

impl ProductQuantizer {
    /// Fit with a per-sub-dimension codebook size (`words_per_dim`
    /// codewords on x and on y).
    pub fn fit(points: &[Point], words_per_dim: usize) -> Self {
        let mut ws = PqWorkspace::new();
        Self::fit_with(points, words_per_dim, &mut ws)
    }

    /// [`ProductQuantizer::fit`] with caller-provided scratch. The two
    /// axes fit concurrently; each side's sweep is itself chunk-parallel.
    pub fn fit_with(points: &[Point], words_per_dim: usize, ws: &mut PqWorkspace) -> Self {
        assert!(!points.is_empty());
        ws.load(points);
        Self::fit_loaded(words_per_dim, words_per_dim, ws)
    }

    /// Fit both axes from an already-loaded workspace.
    fn fit_loaded(x_words: usize, y_words: usize, ws: &mut PqWorkspace) -> Self {
        let PqWorkspace { xs, ys, wx, wy } = ws;
        rayon::join(
            || kmeans_1d_with(xs, x_words, 16, wx),
            || kmeans_1d_with(ys, y_words, 16, wy),
        );
        ProductQuantizer {
            x_words: wx.cents.clone(),
            y_words: wy.cents.clone(),
            x_codes: wx.assign.clone(),
            y_codes: wy.assign.clone(),
        }
    }

    /// Fit with a total index budget of `bits` per point, split between the
    /// two sub-dimensions (x gets the extra bit when `bits` is odd).
    pub fn fit_bits(points: &[Point], bits: u32) -> Self {
        assert!(bits >= 2, "need at least 1 bit per sub-dimension");
        let bx = bits.div_ceil(2);
        let by = bits / 2;
        let mut ws = PqWorkspace::new();
        ws.load(points);
        Self::fit_loaded(1usize << bx, 1usize << by, &mut ws)
    }

    /// Grow the per-dimension codebooks until the max 2-D reconstruction
    /// error is within `eps` (used by the deviation-budget experiments,
    /// Tables 5–6). Each round multiplies the sub-codebook size by 2.
    ///
    /// One [`PqWorkspace`] carries all rounds: the axis extraction happens
    /// once and the Lloyd scratch is recycled from round to round.
    pub fn fit_bounded(points: &[Point], eps: f64) -> Self {
        assert!(eps > 0.0);
        let mut ws = PqWorkspace::new();
        ws.load(points);
        let mut k = 2usize;
        loop {
            let pq = Self::fit_loaded(k, k, &mut ws);
            if pq.max_error(points) <= eps {
                return pq;
            }
            if k >= points.len() {
                // Exact fallback: one scalar codeword per distinct value on
                // each axis — zero quantization error by construction.
                return Self::exact(points);
            }
            k *= 2;
        }
    }

    /// Degenerate PQ with one codeword per distinct scalar value.
    fn exact(points: &[Point]) -> Self {
        let assign_axis = |values: &[f64]| {
            let mut words: Vec<f64> = values.to_vec();
            words.sort_by(|a, b| a.partial_cmp(b).unwrap());
            words.dedup();
            let codes = values
                .iter()
                .map(|v| words.partition_point(|w| w < v) as u32)
                .collect::<Vec<u32>>();
            (words, codes)
        };
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        let (x_words, x_codes) = assign_axis(&xs);
        let (y_words, y_codes) = assign_axis(&ys);
        ProductQuantizer {
            x_words,
            y_words,
            x_codes,
            y_codes,
        }
    }

    /// Reconstruction of input `i`.
    #[inline]
    pub fn reconstruct(&self, i: usize) -> Point {
        Point::new(
            self.x_words[self.x_codes[i] as usize],
            self.y_words[self.y_codes[i] as usize],
        )
    }

    pub fn max_error(&self, points: &[Point]) -> f64 {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| p.dist(&self.reconstruct(i)))
            .fold(0.0, f64::max)
    }

    pub fn mean_error(&self, points: &[Point]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        points
            .iter()
            .enumerate()
            .map(|(i, p)| p.dist(&self.reconstruct(i)))
            .sum::<f64>()
            / points.len() as f64
    }

    /// Number of stored codewords, counted in 2-D codeword equivalents
    /// (two scalar words = one 2-D word's storage).
    pub fn codeword_equivalents(&self) -> usize {
        (self.x_words.len() + self.y_words.len()).div_ceil(2)
    }

    /// Index bits per point: PQ stores two sub-indices.
    pub fn index_bits_per_point(&self) -> u32 {
        index_bits_for(self.x_words.len()) + index_bits_for(self.y_words.len())
    }

    /// Codebook bytes: scalar words are one f64 each.
    pub fn codebook_bytes(&self) -> usize {
        (self.x_words.len() + self.y_words.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect()
    }

    #[test]
    fn kmeans_1d_two_clusters() {
        let vals = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let (cents, assign) = kmeans_1d(&vals, 2, 20);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[3], assign[5]);
        assert_ne!(assign[0], assign[3]);
        let mut sorted = cents.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 0.1).abs() < 1e-9);
        assert!((sorted[1] - 10.1).abs() < 1e-9);
    }

    #[test]
    fn more_words_less_error() {
        let pts = points(500, 1);
        let small = ProductQuantizer::fit(&pts, 4);
        let large = ProductQuantizer::fit(&pts, 32);
        assert!(large.mean_error(&pts) < small.mean_error(&pts));
    }

    #[test]
    fn bounded_fit_respects_eps() {
        let pts = points(300, 2);
        let pq = ProductQuantizer::fit_bounded(&pts, 0.5);
        assert!(pq.max_error(&pts) <= 0.5 + 1e-12);
    }

    #[test]
    fn bits_split() {
        let pts = points(100, 3);
        let pq = ProductQuantizer::fit_bits(&pts, 5);
        assert_eq!(pq.x_words.len(), 8); // ceil(5/2) = 3 bits
        assert_eq!(pq.y_words.len(), 4); // floor(5/2) = 2 bits
        assert_eq!(pq.index_bits_per_point(), 5);
    }

    #[test]
    fn pq_pays_double_index_cost() {
        let pts = points(100, 4);
        let pq = ProductQuantizer::fit(&pts, 16);
        // 16 words per dim -> 4 bits per dim -> 8 bits per point.
        assert_eq!(pq.index_bits_per_point(), 8);
    }

    #[test]
    fn workspace_reuse_matches_fresh() {
        let pts = points(700, 5);
        let mut ws = PqWorkspace::new();
        // Dirty the workspace with an unrelated fit first.
        let _ = ProductQuantizer::fit_with(&points(123, 6), 8, &mut ws);
        let reused = ProductQuantizer::fit_with(&pts, 16, &mut ws);
        let fresh = ProductQuantizer::fit(&pts, 16);
        assert_eq!(reused.x_words, fresh.x_words);
        assert_eq!(reused.y_words, fresh.y_words);
        assert_eq!(reused.x_codes, fresh.x_codes);
        assert_eq!(reused.y_codes, fresh.y_codes);
    }
}
