//! Lloyd's k-means and the paper's *bounded* k-means.
//!
//! Bounded k-means is the primitive behind PPQ partitioning (Eqs. 7–8), PI
//! partitioning (Algorithm 3 line 1), and the incremental quantizer's
//! codeword growth: run k-means with `q` clusters; if any member is farther
//! than `bound` from its centroid, increase `q` by `a` and repeat (paper
//! Lemma 1: `O(q·m·N·l)`).
//!
//! # Layout and parallelism
//!
//! The hot loops run over a flat SoA mirror of the input (`xs: &[f64]`,
//! `ys: &[f64]`) held in a reusable [`KMeansWorkspace`]: the centroid scan
//! is a branch-light pass over two contiguous `f64` arrays that the
//! compiler auto-vectorizes, and no per-iteration buffers are allocated.
//! The assignment + accumulation sweep fans out over [`rayon`] in
//! fixed-size chunks (the `CHUNK` constant): every chunk accumulates its own partial
//! centroid sums, and partials are merged *in chunk order*. Chunk
//! boundaries depend only on `CHUNK` — never on the thread count — so the
//! result is bit-identical for any `RAYON_NUM_THREADS`, including the
//! serial path.

use ppq_geo::Point;
use rayon::prelude::*;

/// Tuning knobs for [`kmeans`] / [`bounded_kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations per run (`l` in Lemma 1).
    pub max_iters: usize,
    /// Relative centroid-movement threshold for early convergence.
    pub tol: f64,
    /// Deterministic seed for centroid initialisation.
    pub seed: u64,
    /// Cluster-count increment per bounded round (`a` in Lemma 1). The
    /// 2-D [`bounded_kmeans`] in this crate sizes growth from a violator
    /// ball cover instead and ignores this knob; it still drives the
    /// paper-faithful n-d partitioner (`ppq_core::ndkmeans`).
    pub grow_step: usize,
    /// Hard cap on the number of clusters bounded k-means may reach.
    pub max_clusters: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            max_iters: 12,
            tol: 1e-7,
            seed: 0xC0FFEE,
            grow_step: 4,
            max_clusters: 1 << 20,
        }
    }
}

/// Result of a (bounded) k-means run.
#[derive(Clone, Debug)]
pub struct BoundedKMeansResult {
    pub centroids: Vec<Point>,
    /// `assign[i]` is the centroid index of `points[i]`.
    pub assign: Vec<u32>,
    /// Number of grow rounds used (`m` in Lemma 1).
    pub rounds: usize,
    /// True when every point ended within the requested bound.
    pub bounded: bool,
}

/// Deterministic splitmix64; used for seeding without pulling `rand` into
/// the library (tests use `rand`, the library stays dependency-light).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Points per parallel work unit. Chunk boundaries are a function of this
/// constant alone, which is what makes the chunked reduction
/// thread-count-invariant.
const CHUNK: usize = 1024;

/// Minimum `points × centroids` work before the sweep fans out over
/// threads. The rayon shim spawns fresh scoped threads per call (no
/// pool), costing tens of microseconds per sweep, so the threshold is
/// sized for a few hundred microseconds of kernel work — re-tune
/// downward if a pooled rayon is swapped in.
const PARALLEL_MIN_WORK: usize = 1 << 18;

/// Reusable scratch for k-means runs: the SoA input mirror, centroid
/// arrays, the assignment vector, per-point distances, and per-chunk
/// partial sums. Reusing one workspace across Lloyd iterations, bounded
/// grow rounds, and successive batches removes every per-iteration
/// allocation from the hot path.
#[derive(Clone, Debug, Default)]
pub struct KMeansWorkspace {
    /// SoA mirror of the input points.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// SoA centroids.
    cx: Vec<f64>,
    cy: Vec<f64>,
    /// Current assignment, one entry per point.
    assign: Vec<u32>,
    /// Squared distance of each point to its assigned centroid.
    dist2: Vec<f64>,
    /// Per-chunk partial sums, laid out `[chunk][centroid]`.
    part_sx: Vec<f64>,
    part_sy: Vec<f64>,
    part_n: Vec<u32>,
}

impl KMeansWorkspace {
    pub fn new() -> KMeansWorkspace {
        KMeansWorkspace::default()
    }

    /// Load the SoA mirror of `points` and size per-point buffers.
    fn load(&mut self, points: &[Point]) {
        self.xs.clear();
        self.ys.clear();
        self.xs.reserve(points.len());
        self.ys.reserve(points.len());
        for p in points {
            self.xs.push(p.x);
            self.ys.push(p.y);
        }
        self.assign.resize(points.len(), 0);
        self.dist2.resize(points.len(), 0.0);
    }

    /// Size the per-chunk partial buffers for `k` centroids.
    fn size_partials(&mut self, k: usize) {
        let chunks = self.xs.len().div_ceil(CHUNK).max(1);
        self.part_sx.clear();
        self.part_sy.clear();
        self.part_n.clear();
        self.part_sx.resize(chunks * k, 0.0);
        self.part_sy.resize(chunks * k, 0.0);
        self.part_n.resize(chunks * k, 0);
    }

    /// Copy the SoA centroids out as `Point`s.
    fn centroids(&self) -> Vec<Point> {
        self.cx
            .iter()
            .zip(&self.cy)
            .map(|(&x, &y)| Point::new(x, y))
            .collect()
    }
}

/// Register-block width of the assignment kernel: the centroid scan runs
/// over `LANES` points at once, keeping `LANES` running minima and their
/// indices in registers so the per-centroid inner loop is a branchless
/// select chain the compiler turns into AVX2 code. 16 doubles measure
/// fastest on current x86-64 (≈2.4× the scalar point-at-a-time loop);
/// widths past the register budget collapse (spills), so this is a
/// measured constant, not a guess.
const LANES: usize = 16;

/// Scan one chunk: nearest centroid per point, recording the assignment
/// and the squared distance. This is the kernel the whole crate's
/// throughput hangs on — see [`LANES`] for the blocking scheme. Strict
/// `<` keeps the lowest centroid index on ties, so the blocked form is
/// bit-identical to the scalar loop.
#[inline]
fn assign_chunk(
    xs: &[f64],
    ys: &[f64],
    cx: &[f64],
    cy: &[f64],
    assign: &mut [u32],
    dist2: &mut [f64],
) {
    let n = xs.len();
    let mut i = 0;
    while i + LANES <= n {
        let mut px = [0.0f64; LANES];
        let mut py = [0.0f64; LANES];
        px.copy_from_slice(&xs[i..i + LANES]);
        py.copy_from_slice(&ys[i..i + LANES]);
        let mut bd = [f64::INFINITY; LANES];
        let mut bi = [0u32; LANES];
        for c in 0..cx.len() {
            let (ccx, ccy) = (cx[c], cy[c]);
            let c = c as u32;
            for l in 0..LANES {
                let dx = px[l] - ccx;
                let dy = py[l] - ccy;
                let d = dx * dx + dy * dy;
                let better = d < bd[l];
                bd[l] = if better { d } else { bd[l] };
                bi[l] = if better { c } else { bi[l] };
            }
        }
        assign[i..i + LANES].copy_from_slice(&bi);
        dist2[i..i + LANES].copy_from_slice(&bd);
        i += LANES;
    }
    // Scalar tail (< LANES points).
    while i < n {
        let (px, py) = (xs[i], ys[i]);
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for c in 0..cx.len() {
            let dx = px - cx[c];
            let dy = py - cy[c];
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
        assign[i] = best;
        dist2[i] = best_d;
        i += 1;
    }
}

/// Accumulate one chunk's partial centroid sums from its assignment.
#[inline]
fn accumulate_chunk(
    xs: &[f64],
    ys: &[f64],
    assign: &[u32],
    sx: &mut [f64],
    sy: &mut [f64],
    n: &mut [u32],
) {
    sx.fill(0.0);
    sy.fill(0.0);
    n.fill(0);
    for i in 0..xs.len() {
        let a = assign[i] as usize;
        sx[a] += xs[i];
        sy[a] += ys[i];
        n[a] += 1;
    }
}

/// One chunk's partial-sum slices: `((sx, sy), n)`.
type ChunkPartials<'a> = ((&'a mut [f64], &'a mut [f64]), &'a mut [u32]);

/// One chunk's disjoint views for a sweep: point coordinates, assignment,
/// distances, and (for accumulating sweeps) the chunk's partials.
type SweepItem<'a> = (
    &'a [f64],
    &'a [f64],
    &'a mut [u32],
    &'a mut [f64],
    Option<ChunkPartials<'a>>,
);

/// One assignment sweep (optionally fused with partial-sum accumulation),
/// parallel over fixed-size chunks when the workload justifies it.
fn sweep(ws: &mut KMeansWorkspace, accumulate: bool) {
    let k = ws.cx.len();
    let npts = ws.xs.len();
    if accumulate {
        ws.size_partials(k);
    }
    let parallel = npts * k >= PARALLEL_MIN_WORK && rayon::current_num_threads() > 1;

    // Build one work item per chunk. The per-chunk views are disjoint, so
    // the items can run in any order on any number of threads without
    // changing what each writes.
    let KMeansWorkspace {
        xs,
        ys,
        cx,
        cy,
        assign,
        dist2,
        part_sx,
        part_sy,
        part_n,
    } = ws;
    let (cx, cy) = (&*cx, &*cy);
    let items: Vec<_> = xs
        .chunks(CHUNK)
        .zip(ys.chunks(CHUNK))
        .zip(assign.chunks_mut(CHUNK))
        .zip(dist2.chunks_mut(CHUNK))
        .zip(
            part_sx
                .chunks_mut(k.max(1))
                .zip(part_sy.chunks_mut(k.max(1)))
                .zip(part_n.chunks_mut(k.max(1)))
                .map(Some)
                .chain(std::iter::repeat_with(|| None)),
        )
        .map(|((((xs, ys), assign), dist2), parts)| (xs, ys, assign, dist2, parts))
        .collect();

    let run = |(xs, ys, assign, dist2, parts): SweepItem<'_>| {
        assign_chunk(xs, ys, cx, cy, assign, dist2);
        if accumulate {
            let ((sx, sy), n) = parts.expect("partials sized for accumulate sweeps");
            accumulate_chunk(xs, ys, assign, sx, sy, n);
        }
    };

    if parallel {
        items.into_par_iter().for_each(run);
    } else {
        items.into_iter().for_each(run);
    }
}

/// Merge per-chunk partials in chunk order: the reduction order is fixed
/// by the chunk layout, not the schedule, so sums are deterministic.
fn merged_centroid(ws: &KMeansWorkspace, c: usize) -> (f64, f64, u32) {
    let k = ws.cx.len();
    let chunks = ws.xs.len().div_ceil(CHUNK).max(1);
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut n = 0u32;
    for chunk in 0..chunks {
        sx += ws.part_sx[chunk * k + c];
        sy += ws.part_sy[chunk * k + c];
        n += ws.part_n[chunk * k + c];
    }
    (sx, sy, n)
}

/// Index of the point farthest from its assigned centroid (ties break to
/// the lowest index).
fn worst_fit(ws: &KMeansWorkspace) -> usize {
    let mut wi = 0;
    let mut wd = -1.0;
    for (i, &d) in ws.dist2.iter().enumerate() {
        if d > wd {
            wd = d;
            wi = i;
        }
    }
    wi
}

/// Pick `k` distinct-ish initial centroids deterministically (random points
/// of the input, plus a greedy farthest-point pass for the first few to
/// avoid degenerate starts).
fn init_centroids(points: &[Point], k: usize, seed: u64, ws: &mut KMeansWorkspace) {
    debug_assert!(k >= 1 && !points.is_empty());
    let mut state = seed ^ (points.len() as u64).wrapping_mul(0x9E3779B97F4A7C15);
    ws.cx.clear();
    ws.cy.clear();
    let push = |p: Point, ws: &mut KMeansWorkspace| {
        ws.cx.push(p.x);
        ws.cy.push(p.y);
    };
    push(points[(splitmix64(&mut state) as usize) % points.len()], ws);
    // Greedy farthest-point for up to the first 8 centroids (k-means++ style
    // spread without the distance-weighted sampling machinery).
    while ws.cx.len() < k.min(8) {
        let mut far_idx = 0;
        let mut far_d = -1.0;
        // Sample a bounded number of candidates to stay O(N) per pick.
        let stride = (points.len() / 512).max(1);
        let mut i = (splitmix64(&mut state) as usize) % stride.max(1);
        while i < points.len() {
            let (px, py) = (ws.xs[i], ws.ys[i]);
            let mut d = f64::INFINITY;
            for c in 0..ws.cx.len() {
                let dx = px - ws.cx[c];
                let dy = py - ws.cy[c];
                d = d.min(dx * dx + dy * dy);
            }
            if d > far_d {
                far_d = d;
                far_idx = i;
            }
            i += stride;
        }
        push(points[far_idx], ws);
    }
    while ws.cx.len() < k {
        push(points[(splitmix64(&mut state) as usize) % points.len()], ws);
    }
}

/// Plain Lloyd's k-means over 2-D points. Returns `(centroids, assignment)`.
/// Empty clusters are re-seeded with the point farthest from its centroid.
pub fn kmeans(points: &[Point], k: usize, cfg: &KMeansConfig) -> (Vec<Point>, Vec<u32>) {
    let mut ws = KMeansWorkspace::new();
    kmeans_with(points, k, cfg, &mut ws)
}

/// [`kmeans`] with caller-provided scratch: all per-run buffers live in
/// `ws` and are reused across calls.
pub fn kmeans_with(
    points: &[Point],
    k: usize,
    cfg: &KMeansConfig,
    ws: &mut KMeansWorkspace,
) -> (Vec<Point>, Vec<u32>) {
    assert!(!points.is_empty(), "kmeans over empty input");
    let k = k.clamp(1, points.len());
    ws.load(points);
    init_centroids(points, k, cfg.seed, ws);
    lloyd(cfg, ws)
}

/// Run Lloyd iterations from the centroids already in `ws` (the input
/// must be loaded). The warm-startable core shared by [`kmeans_with`] and
/// the violator-seeded rounds of [`bounded_kmeans_with`].
fn lloyd(cfg: &KMeansConfig, ws: &mut KMeansWorkspace) -> (Vec<Point>, Vec<u32>) {
    let k = ws.cx.len();
    for _ in 0..cfg.max_iters {
        // Fused assignment + per-chunk accumulation sweep.
        sweep(ws, true);
        // Update step: merge partials in chunk order.
        let mut moved: f64 = 0.0;
        let mut reseed: Option<usize> = None;
        for c in 0..k {
            let (sx, sy, n) = merged_centroid(ws, c);
            if n == 0 {
                // Re-seed the empty cluster with the globally worst-fit
                // point (computed once per iteration; every empty cluster
                // this round gets the same seed, and the forced extra
                // iteration separates them). The seed recomputed the
                // worst fit per empty cluster against partially-updated
                // centroids, so with ≥2 empty clusters in one iteration
                // the two schedules can diverge — an accepted difference
                // (BENCH_ppq.json records reference/current centroid
                // mismatches).
                let wi = *reseed.get_or_insert_with(|| worst_fit(ws));
                ws.cx[c] = ws.xs[wi];
                ws.cy[c] = ws.ys[wi];
                moved = f64::INFINITY;
                continue;
            }
            let nx = sx / n as f64;
            let ny = sy / n as f64;
            let dx = ws.cx[c] - nx;
            let dy = ws.cy[c] - ny;
            moved += dx * dx + dy * dy;
            ws.cx[c] = nx;
            ws.cy[c] = ny;
        }
        if moved <= cfg.tol * cfg.tol {
            break;
        }
    }
    // Final assignment against converged centroids.
    sweep(ws, false);
    (ws.centroids(), ws.assign.clone())
}

/// Max distance between any point and its assigned centroid.
pub fn max_radius(points: &[Point], centroids: &[Point], assign: &[u32]) -> f64 {
    points
        .iter()
        .zip(assign)
        .map(|(p, &a)| p.dist(&centroids[a as usize]))
        .fold(0.0, f64::max)
}

/// The paper's bounded partitioning (Eqs. 7/8): grow the cluster count
/// until every point is within `bound` of its centroid or
/// `cfg.max_clusters` is reached. Growth per round is sized from a
/// greedy ball cover of the violators (see [`bounded_kmeans_with`]), not
/// from `cfg.grow_step` — that knob no longer affects this path.
///
/// When k-means alone cannot close the last violations (clusters are not
/// covering balls), the final round promotes each violating point's
/// position into its own centroid, which always terminates with
/// `bounded = true` unless the cap interferes.
pub fn bounded_kmeans(points: &[Point], bound: f64, cfg: &KMeansConfig) -> BoundedKMeansResult {
    let mut ws = KMeansWorkspace::new();
    bounded_kmeans_with(points, bound, cfg, &mut ws)
}

/// [`bounded_kmeans`] with caller-provided scratch, reused across grow
/// rounds (and across calls when the caller holds the workspace).
///
/// # Growth schedule
///
/// The paper's schedule (Lemma 1) restarts k-means from scratch with
/// `q + a` clusters per round, which costs `O(N·l·q²/a)` overall — at
/// repository scale the early cold-codebook batches (thousands of
/// uncovered errors needing hundreds of codewords) turn that quadratic
/// into the single dominant cost of the whole build. This implementation
/// keeps the same contract (grow the cluster count only until every point
/// is within `bound`, preferring small counts) but sizes each round's
/// growth from the data instead of growing blind: the violators are
/// greedily covered with balls of radius `bound` (first-violator-wins, in
/// index order — deterministic), the ball centers join the current
/// centroids as warm-start seeds, and Lloyd re-polishes. Since a ball
/// cover of the violators is exactly the number of extra codewords the
/// bound demands (within the greedy 2-approximation), the loop terminates
/// in a handful of rounds — `O(N·l·q)` total — instead of `q/a` rounds.
pub fn bounded_kmeans_with(
    points: &[Point],
    bound: f64,
    cfg: &KMeansConfig,
    ws: &mut KMeansWorkspace,
) -> BoundedKMeansResult {
    assert!(bound > 0.0, "bound must be positive");
    assert!(!points.is_empty(), "bounded_kmeans over empty input");

    let n = points.len();
    let bound2 = bound * bound;
    // Start from a single cluster: the smallest satisfying count wins,
    // which keeps partitions (and the PI regions built from them) as
    // large and stable as the bound allows.
    ws.load(points);
    init_centroids(points, 1, cfg.seed, ws);
    let mut rounds = 0;
    loop {
        rounds += 1;
        let (centroids, assign) = lloyd(cfg, ws);
        // The final sweep left per-point distances in the workspace.
        let worst2 = ws.dist2.iter().copied().fold(0.0f64, f64::max);
        if worst2 <= bound2 {
            return BoundedKMeansResult {
                centroids,
                assign,
                rounds,
                bounded: true,
            };
        }
        let q = ws.cx.len();
        if q >= n || q >= cfg.max_clusters {
            // Last resort: make violators their own centroids.
            let (mut centroids, mut assign) = (centroids, assign);
            for (i, p) in points.iter().enumerate() {
                if ws.dist2[i] > bound2 {
                    centroids.push(*p);
                    assign[i] = (centroids.len() - 1) as u32;
                }
            }
            let bounded = max_radius(points, &centroids, &assign) <= bound;
            return BoundedKMeansResult {
                centroids,
                assign,
                rounds,
                bounded,
            };
        }
        // Greedy ball cover of the violators seeds the next round. Only
        // the centers added this round need checking: a violator is, by
        // definition, farther than `bound` from every existing centroid.
        let budget = cfg.max_clusters - q;
        let first_new = ws.cx.len();
        for i in 0..n {
            if ws.dist2[i] <= bound2 {
                continue;
            }
            let (px, py) = (ws.xs[i], ws.ys[i]);
            let mut covered = false;
            for c in first_new..ws.cx.len() {
                let dx = px - ws.cx[c];
                let dy = py - ws.cy[c];
                if dx * dx + dy * dy <= bound2 {
                    covered = true;
                    break;
                }
            }
            if !covered {
                ws.cx.push(px);
                ws.cy.push(py);
                if ws.cx.len() - first_new >= budget {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: Point, n: usize, spread: f64, seed: u64) -> Vec<Point> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let dx = (splitmix64(&mut state) as f64 / u64::MAX as f64 - 0.5) * spread;
                let dy = (splitmix64(&mut state) as f64 / u64::MAX as f64 - 0.5) * spread;
                Point::new(center.x + dx, center.y + dy)
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut pts = blob(Point::new(0.0, 0.0), 100, 1.0, 1);
        pts.extend(blob(Point::new(100.0, 100.0), 100, 1.0, 2));
        let (centroids, assign) = kmeans(&pts, 2, &KMeansConfig::default());
        // Same-blob points share a label; blobs differ.
        assert_ne!(assign[0], assign[150]);
        assert_eq!(
            assign[..100]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        let near_origin = centroids.iter().filter(|c| c.norm() < 5.0).count();
        assert_eq!(near_origin, 1);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let (centroids, assign) = kmeans(&pts, 10, &KMeansConfig::default());
        assert!(centroids.len() <= 2);
        assert_eq!(assign.len(), 2);
    }

    #[test]
    fn single_cluster_is_centroid() {
        let pts = blob(Point::new(5.0, -3.0), 64, 2.0, 9);
        let (centroids, _) = kmeans(&pts, 1, &KMeansConfig::default());
        let c = Point::centroid(&pts).unwrap();
        assert!(centroids[0].dist(&c) < 1e-9);
    }

    #[test]
    fn bounded_kmeans_respects_bound() {
        let mut pts = blob(Point::new(0.0, 0.0), 200, 4.0, 3);
        pts.extend(blob(Point::new(50.0, 0.0), 200, 4.0, 4));
        pts.extend(blob(Point::new(0.0, 50.0), 50, 4.0, 5));
        let res = bounded_kmeans(&pts, 3.0, &KMeansConfig::default());
        assert!(res.bounded);
        assert!(max_radius(&pts, &res.centroids, &res.assign) <= 3.0);
        assert!(res.rounds >= 1);
    }

    #[test]
    fn bounded_kmeans_tight_bound_degenerates_gracefully() {
        let pts = blob(Point::new(0.0, 0.0), 50, 10.0, 6);
        // Impossibly tight bound: every point must be (almost) its own word.
        let res = bounded_kmeans(&pts, 1e-6, &KMeansConfig::default());
        assert!(res.bounded);
        assert!(max_radius(&pts, &res.centroids, &res.assign) <= 1e-6);
    }

    #[test]
    fn looser_bound_needs_fewer_centroids() {
        let pts = blob(Point::new(0.0, 0.0), 500, 20.0, 8);
        let tight = bounded_kmeans(&pts, 1.0, &KMeansConfig::default());
        let loose = bounded_kmeans(&pts, 8.0, &KMeansConfig::default());
        assert!(loose.centroids.len() <= tight.centroids.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blob(Point::new(2.0, 2.0), 128, 3.0, 11);
        let cfg = KMeansConfig::default();
        let (c1, a1) = kmeans(&pts, 5, &cfg);
        let (c2, a2) = kmeans(&pts, 5, &cfg);
        assert_eq!(a1, a2);
        for (x, y) in c1.iter().zip(&c2) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh() {
        let pts = blob(Point::new(1.0, -1.0), 300, 5.0, 13);
        let cfg = KMeansConfig::default();
        let mut ws = KMeansWorkspace::new();
        // Dirty the workspace with an unrelated run first.
        let other = blob(Point::new(-9.0, 9.0), 77, 2.0, 17);
        let _ = kmeans_with(&other, 7, &cfg, &mut ws);
        let (c1, a1) = kmeans_with(&pts, 6, &cfg, &mut ws);
        let (c2, a2) = kmeans(&pts, 6, &cfg);
        assert_eq!(a1, a2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn chunk_boundary_sizes_agree_with_small_input() {
        // Exercise n straddling the CHUNK boundary: results must be
        // self-consistent (every point within the max radius, labels in
        // range) and deterministic.
        for n in [CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK + 5] {
            let pts = blob(Point::new(0.0, 0.0), n, 10.0, n as u64);
            let (c1, a1) = kmeans(&pts, 9, &KMeansConfig::default());
            let (c2, a2) = kmeans(&pts, 9, &KMeansConfig::default());
            assert_eq!(a1, a2, "n={n}");
            assert_eq!(c1, c2, "n={n}");
            assert!(a1.iter().all(|&a| (a as usize) < c1.len()));
        }
    }
}
