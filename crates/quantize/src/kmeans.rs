//! Lloyd's k-means and the paper's *bounded* k-means.
//!
//! Bounded k-means is the primitive behind PPQ partitioning (Eqs. 7–8), PI
//! partitioning (Algorithm 3 line 1), and the incremental quantizer's
//! codeword growth: run k-means with `q` clusters; if any member is farther
//! than `bound` from its centroid, increase `q` by `a` and repeat (paper
//! Lemma 1: `O(q·m·N·l)`).

use ppq_geo::Point;

/// Tuning knobs for [`kmeans`] / [`bounded_kmeans`].
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations per run (`l` in Lemma 1).
    pub max_iters: usize,
    /// Relative centroid-movement threshold for early convergence.
    pub tol: f64,
    /// Deterministic seed for centroid initialisation.
    pub seed: u64,
    /// Cluster-count increment per bounded round (`a` in Lemma 1).
    pub grow_step: usize,
    /// Hard cap on the number of clusters bounded k-means may reach.
    pub max_clusters: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { max_iters: 12, tol: 1e-7, seed: 0xC0FFEE, grow_step: 4, max_clusters: 1 << 20 }
    }
}

/// Result of a (bounded) k-means run.
#[derive(Clone, Debug)]
pub struct BoundedKMeansResult {
    pub centroids: Vec<Point>,
    /// `assign[i]` is the centroid index of `points[i]`.
    pub assign: Vec<u32>,
    /// Number of grow rounds used (`m` in Lemma 1).
    pub rounds: usize,
    /// True when every point ended within the requested bound.
    pub bounded: bool,
}

/// Deterministic splitmix64; used for seeding without pulling `rand` into
/// the library (tests use `rand`, the library stays dependency-light).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Pick `k` distinct-ish initial centroids deterministically (random points
/// of the input, plus a greedy farthest-point pass for the first few to
/// avoid degenerate starts).
fn init_centroids(points: &[Point], k: usize, seed: u64) -> Vec<Point> {
    debug_assert!(k >= 1 && !points.is_empty());
    let mut state = seed ^ (points.len() as u64).wrapping_mul(0x9E3779B97F4A7C15);
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[(splitmix64(&mut state) as usize) % points.len()]);
    // Greedy farthest-point for up to the first 8 centroids (k-means++ style
    // spread without the distance-weighted sampling machinery).
    while centroids.len() < k.min(8) {
        let mut far_idx = 0;
        let mut far_d = -1.0;
        // Sample a bounded number of candidates to stay O(N) per pick.
        let stride = (points.len() / 512).max(1);
        let mut i = (splitmix64(&mut state) as usize) % stride.max(1);
        while i < points.len() {
            let p = &points[i];
            let d = centroids.iter().map(|c| p.dist2(c)).fold(f64::INFINITY, f64::min);
            if d > far_d {
                far_d = d;
                far_idx = i;
            }
            i += stride;
        }
        centroids.push(points[far_idx]);
    }
    while centroids.len() < k {
        centroids.push(points[(splitmix64(&mut state) as usize) % points.len()]);
    }
    centroids
}

/// Work threshold (points × centroids) above which the assignment step
/// fans out over threads. Below it, thread spawn overhead dominates.
const PARALLEL_ASSIGN_THRESHOLD: usize = 1 << 19;

/// Assign every point to its nearest centroid, in parallel for large
/// workloads (deterministic: assignment is pure per point).
fn assign_all(points: &[Point], centroids: &[Point], assign: &mut [u32]) {
    let assign_chunk = |pts: &[Point], out: &mut [u32]| {
        for (p, slot) in pts.iter().zip(out.iter_mut()) {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d = p.dist2(cent);
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            *slot = best;
        }
    };
    let work = points.len() * centroids.len();
    if work < PARALLEL_ASSIGN_THRESHOLD {
        assign_chunk(points, assign);
        return;
    }
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
    let chunk = points.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (pts, out) in points.chunks(chunk).zip(assign.chunks_mut(chunk)) {
            scope.spawn(move |_| assign_chunk(pts, out));
        }
    })
    .expect("kmeans assignment worker panicked");
}

/// Plain Lloyd's k-means over 2-D points. Returns `(centroids, assignment)`.
/// Empty clusters are re-seeded with the point farthest from its centroid.
pub fn kmeans(points: &[Point], k: usize, cfg: &KMeansConfig) -> (Vec<Point>, Vec<u32>) {
    assert!(!points.is_empty(), "kmeans over empty input");
    let k = k.clamp(1, points.len());
    let mut centroids = init_centroids(points, k, cfg.seed);
    let mut assign = vec![0u32; points.len()];
    let mut sums = vec![Point::ORIGIN; k];
    let mut counts = vec![0usize; k];

    for _ in 0..cfg.max_iters {
        // Assignment step.
        assign_all(points, &centroids, &mut assign);
        // Update step.
        sums.iter_mut().for_each(|s| *s = Point::ORIGIN);
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, p) in points.iter().enumerate() {
            let a = assign[i] as usize;
            sums[a] += *p;
            counts[a] += 1;
        }
        let mut moved: f64 = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed the empty cluster with the globally worst-fit point.
                let (wi, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.dist2(&centroids[assign[i] as usize])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                centroids[c] = points[wi];
                moved = f64::INFINITY;
                continue;
            }
            let new_c = sums[c] / counts[c] as f64;
            moved += centroids[c].dist2(&new_c);
            centroids[c] = new_c;
        }
        if moved <= cfg.tol * cfg.tol {
            break;
        }
    }
    // Final assignment against converged centroids.
    assign_all(points, &centroids, &mut assign);
    (centroids, assign)
}

/// Max distance between any point and its assigned centroid.
pub fn max_radius(points: &[Point], centroids: &[Point], assign: &[u32]) -> f64 {
    points
        .iter()
        .zip(assign)
        .map(|(p, &a)| p.dist(&centroids[a as usize]))
        .fold(0.0, f64::max)
}

/// The paper's bounded partitioning: grow the cluster count by
/// `cfg.grow_step` per round until every point is within `bound` of its
/// centroid (Eqs. 7/8) or `cfg.max_clusters` is reached.
///
/// When k-means alone cannot close the last violations (clusters are not
/// covering balls), the final round promotes each violating point's
/// position into its own centroid, which always terminates with
/// `bounded = true` unless the cap interferes.
pub fn bounded_kmeans(points: &[Point], bound: f64, cfg: &KMeansConfig) -> BoundedKMeansResult {
    assert!(bound > 0.0, "bound must be positive");
    assert!(!points.is_empty(), "bounded_kmeans over empty input");

    // Start from a single cluster and add `grow_step` per round: the
    // smallest satisfying q wins, which keeps partitions (and the PI
    // regions built from them) as large and stable as the bound allows.
    let mut q = 1;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let (centroids, assign) = kmeans(points, q, cfg);
        if max_radius(points, &centroids, &assign) <= bound {
            return BoundedKMeansResult { centroids, assign, rounds, bounded: true };
        }
        if q >= points.len() || q + cfg.grow_step > cfg.max_clusters {
            // Last resort: make violators their own centroids.
            let (mut centroids, mut assign) = (centroids, assign);
            for (i, p) in points.iter().enumerate() {
                if p.dist(&centroids[assign[i] as usize]) > bound {
                    centroids.push(*p);
                    assign[i] = (centroids.len() - 1) as u32;
                }
            }
            let bounded = max_radius(points, &centroids, &assign) <= bound;
            return BoundedKMeansResult { centroids, assign, rounds, bounded };
        }
        q += cfg.grow_step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: Point, n: usize, spread: f64, seed: u64) -> Vec<Point> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let dx = (splitmix64(&mut state) as f64 / u64::MAX as f64 - 0.5) * spread;
                let dy = (splitmix64(&mut state) as f64 / u64::MAX as f64 - 0.5) * spread;
                Point::new(center.x + dx, center.y + dy)
            })
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut pts = blob(Point::new(0.0, 0.0), 100, 1.0, 1);
        pts.extend(blob(Point::new(100.0, 100.0), 100, 1.0, 2));
        let (centroids, assign) = kmeans(&pts, 2, &KMeansConfig::default());
        // Same-blob points share a label; blobs differ.
        assert_ne!(assign[0], assign[150]);
        assert_eq!(assign[..100].iter().collect::<std::collections::HashSet<_>>().len(), 1);
        let near_origin = centroids.iter().filter(|c| c.norm() < 5.0).count();
        assert_eq!(near_origin, 1);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let (centroids, assign) = kmeans(&pts, 10, &KMeansConfig::default());
        assert!(centroids.len() <= 2);
        assert_eq!(assign.len(), 2);
    }

    #[test]
    fn single_cluster_is_centroid() {
        let pts = blob(Point::new(5.0, -3.0), 64, 2.0, 9);
        let (centroids, _) = kmeans(&pts, 1, &KMeansConfig::default());
        let c = Point::centroid(&pts).unwrap();
        assert!(centroids[0].dist(&c) < 1e-9);
    }

    #[test]
    fn bounded_kmeans_respects_bound() {
        let mut pts = blob(Point::new(0.0, 0.0), 200, 4.0, 3);
        pts.extend(blob(Point::new(50.0, 0.0), 200, 4.0, 4));
        pts.extend(blob(Point::new(0.0, 50.0), 50, 4.0, 5));
        let res = bounded_kmeans(&pts, 3.0, &KMeansConfig::default());
        assert!(res.bounded);
        assert!(max_radius(&pts, &res.centroids, &res.assign) <= 3.0);
        assert!(res.rounds >= 1);
    }

    #[test]
    fn bounded_kmeans_tight_bound_degenerates_gracefully() {
        let pts = blob(Point::new(0.0, 0.0), 50, 10.0, 6);
        // Impossibly tight bound: every point must be (almost) its own word.
        let res = bounded_kmeans(&pts, 1e-6, &KMeansConfig::default());
        assert!(res.bounded);
        assert!(max_radius(&pts, &res.centroids, &res.assign) <= 1e-6);
    }

    #[test]
    fn looser_bound_needs_fewer_centroids() {
        let pts = blob(Point::new(0.0, 0.0), 500, 20.0, 8);
        let tight = bounded_kmeans(&pts, 1.0, &KMeansConfig::default());
        let loose = bounded_kmeans(&pts, 8.0, &KMeansConfig::default());
        assert!(loose.centroids.len() <= tight.centroids.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blob(Point::new(2.0, 2.0), 128, 3.0, 11);
        let cfg = KMeansConfig::default();
        let (c1, a1) = kmeans(&pts, 5, &cfg);
        let (c2, a2) = kmeans(&pts, 5, &cfg);
        assert_eq!(a1, a2);
        for (x, y) in c1.iter().zip(&c2) {
            assert_eq!(x, y);
        }
    }
}
