//! The error-bounded incremental quantizer (paper Algorithm 1, line 6).
//!
//! `Incremental_Quantizer({e_i^t}, C, ε₁)` maintains a single codebook `C`
//! across timesteps: each incoming error is assigned to its nearest
//! codeword when one is within `ε₁`; the uncovered remainder of the batch
//! is clustered with bounded k-means and the resulting centroids are
//! appended to `C` (Eq. 3: grow `|C|` only as much as the bound requires).

use crate::codebook::Codebook;
use crate::grid_nn::GridNN;
use crate::kmeans::{bounded_kmeans_with, KMeansConfig, KMeansWorkspace};
use ppq_geo::Point;
use rayon::prelude::*;

/// Batch size above which the read-only nearest-codeword probe fans out
/// over threads. Probes are cheap (a 3×3 cell scan), so small batches
/// stay serial.
const PARALLEL_PROBE_MIN: usize = 4096;

/// Probe chunk size; fixed so the parallel split never affects results
/// (each probe is pure per point anyway).
const PROBE_CHUNK: usize = 1024;

/// Online quantizer holding the growing error-bounded codebook.
#[derive(Clone, Debug)]
pub struct IncrementalQuantizer {
    eps: f64,
    codebook: Codebook,
    nn: GridNN,
    kmeans_cfg: KMeansConfig,
    /// Reused scratch for the bounded k-means growth step.
    workspace: KMeansWorkspace,
    /// Total number of assignments performed (for diagnostics).
    assigned: u64,
}

impl IncrementalQuantizer {
    /// `eps` is the paper's `ε₁` — after this call every quantized vector
    /// is guaranteed within `eps` of its codeword.
    pub fn new(eps: f64) -> Self {
        Self::with_config(eps, KMeansConfig::default())
    }

    pub fn with_config(eps: f64, kmeans_cfg: KMeansConfig) -> Self {
        assert!(eps > 0.0 && eps.is_finite());
        IncrementalQuantizer {
            eps,
            codebook: Codebook::new(),
            nn: GridNN::new(eps),
            kmeans_cfg,
            workspace: KMeansWorkspace::new(),
            assigned: 0,
        }
    }

    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    #[inline]
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    #[inline]
    pub fn assigned(&self) -> u64 {
        self.assigned
    }

    /// Rebuild a quantizer mid-stream from persisted state: the codebook
    /// words in index order plus the assignment counter. The grid index
    /// is reconstructed by inserting the words in order, so lookups (and
    /// therefore all future quantization decisions) are bit-identical to
    /// the original instance's. The k-means workspace is scratch and
    /// starts fresh.
    pub fn restore(eps: f64, kmeans_cfg: KMeansConfig, words: Vec<Point>, assigned: u64) -> Self {
        assert!(eps > 0.0 && eps.is_finite());
        let mut nn = GridNN::new(eps);
        for (i, w) in words.iter().enumerate() {
            nn.insert(i as u32, *w);
        }
        IncrementalQuantizer {
            eps,
            codebook: Codebook::from_words(words),
            nn,
            kmeans_cfg,
            workspace: KMeansWorkspace::new(),
            assigned,
        }
    }

    fn push_word(&mut self, w: Point) -> u32 {
        let idx = self.codebook.push(w);
        self.nn.insert(idx, w);
        idx
    }

    /// Quantize a batch of error vectors (one timestep's worth), returning
    /// the codeword index for each input, in order.
    ///
    /// Postcondition: `input[i].dist(codebook.word(out[i])) <= eps` for all
    /// `i`.
    pub fn quantize_batch(&mut self, errors: &[Point]) -> Vec<u32> {
        let mut out = vec![u32::MAX; errors.len()];

        // Probe phase: read-only against the current codebook, pure per
        // point, so it parallelizes without affecting results.
        let nn = &self.nn;
        let probe = |es: &[Point], slots: &mut [u32]| {
            for (e, slot) in es.iter().zip(slots.iter_mut()) {
                debug_assert!(e.is_finite(), "non-finite error vector");
                if let Some((idx, _)) = nn.nearest_within_eps(e) {
                    *slot = idx;
                }
            }
        };
        if errors.len() >= PARALLEL_PROBE_MIN && rayon::current_num_threads() > 1 {
            errors
                .par_chunks(PROBE_CHUNK)
                .zip(out.par_chunks_mut(PROBE_CHUNK))
                .for_each(|(es, slots)| probe(es, slots));
        } else {
            probe(errors, &mut out);
        }
        let uncovered: Vec<usize> = (0..errors.len()).filter(|&i| out[i] == u32::MAX).collect();

        if !uncovered.is_empty() {
            self.grow_for(errors, &uncovered, &mut out);
        }
        self.assigned += errors.len() as u64;

        debug_assert!(out.iter().all(|&b| b != u32::MAX));
        out
    }

    /// Cluster the uncovered errors of this batch with bounded k-means and
    /// append the centroids; then assign each uncovered error to a (possibly
    /// new, possibly pre-existing) codeword within `eps`.
    fn grow_for(&mut self, errors: &[Point], uncovered: &[usize], out: &mut [u32]) {
        let pts: Vec<Point> = uncovered.iter().map(|&i| errors[i]).collect();
        let res = bounded_kmeans_with(&pts, self.eps, &self.kmeans_cfg, &mut self.workspace);

        // Append only the centroids that are actually used; remap indices.
        let mut remap = vec![u32::MAX; res.centroids.len()];
        for (j, &i) in uncovered.iter().enumerate() {
            let local = res.assign[j] as usize;
            if remap[local] == u32::MAX {
                remap[local] = self.push_word(res.centroids[local]);
            }
            out[i] = remap[local];
            // Bounded k-means guarantees coverage, but if the cap truncated
            // growth fall back to a dedicated codeword for this point.
            if errors[i].dist(&self.codebook.word(out[i])) > self.eps {
                out[i] = self.push_word(errors[i]);
            }
        }
    }

    /// Quantize a single error vector (streaming convenience wrapper).
    pub fn quantize_one(&mut self, e: Point) -> u32 {
        match self.nn.nearest_within_eps(&e) {
            Some((idx, _)) => {
                self.assigned += 1;
                idx
            }
            None => {
                self.assigned += 1;
                self.push_word(e)
            }
        }
    }

    /// Reconstruct the vector a codeword index stands for: `C(b)`.
    #[inline]
    pub fn word(&self, b: u32) -> Point {
        self.codebook.word(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_errors(n: usize, spread: f64, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    rng.gen_range(-spread..spread),
                    rng.gen_range(-spread..spread),
                )
            })
            .collect()
    }

    #[test]
    fn batch_respects_bound() {
        let mut q = IncrementalQuantizer::new(0.5);
        let errors = random_errors(500, 3.0, 1);
        let codes = q.quantize_batch(&errors);
        for (e, &b) in errors.iter().zip(&codes) {
            assert!(e.dist(&q.word(b)) <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn codebook_reused_across_batches() {
        let mut q = IncrementalQuantizer::new(0.5);
        let errors = random_errors(400, 2.0, 2);
        q.quantize_batch(&errors);
        let size_after_first = q.codebook().len();
        // Same distribution again: the codebook should barely grow.
        let errors2 = random_errors(400, 2.0, 3);
        q.quantize_batch(&errors2);
        let grown = q.codebook().len() - size_after_first;
        assert!(
            grown <= size_after_first / 4 + 2,
            "codebook grew too much on repeat distribution: {size_after_first} -> {}",
            q.codebook().len()
        );
    }

    #[test]
    fn narrow_distribution_needs_fewer_words() {
        let wide_errors = random_errors(1000, 5.0, 4);
        let narrow_errors = random_errors(1000, 0.5, 5);
        let mut qw = IncrementalQuantizer::new(0.2);
        let mut qn = IncrementalQuantizer::new(0.2);
        qw.quantize_batch(&wide_errors);
        qn.quantize_batch(&narrow_errors);
        assert!(
            qn.codebook().len() < qw.codebook().len(),
            "narrow {} vs wide {}",
            qn.codebook().len(),
            qw.codebook().len()
        );
    }

    #[test]
    fn quantize_one_streaming() {
        let mut q = IncrementalQuantizer::new(1.0);
        let a = q.quantize_one(Point::new(0.0, 0.0));
        let b = q.quantize_one(Point::new(0.1, 0.1)); // reuses word a
        let c = q.quantize_one(Point::new(10.0, 10.0)); // new word
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(q.codebook().len(), 2);
        assert_eq!(q.assigned(), 3);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut q = IncrementalQuantizer::new(1.0);
        let codes = q.quantize_batch(&[]);
        assert!(codes.is_empty());
        assert_eq!(q.codebook().len(), 0);
    }

    #[test]
    fn deterministic() {
        let errors = random_errors(300, 2.0, 7);
        let mut q1 = IncrementalQuantizer::new(0.3);
        let mut q2 = IncrementalQuantizer::new(0.3);
        assert_eq!(q1.quantize_batch(&errors), q2.quantize_batch(&errors));
        assert_eq!(q1.codebook().len(), q2.codebook().len());
    }
}
