//! Bit-packed integer streams.
//!
//! Codeword indices `b_i^t` dominate the summary size, so they are charged
//! at `ceil(log2 |C|)` bits each, not at `sizeof(u32)`. `BitWriter` /
//! `BitReader` implement the packing; the summary accounting uses the
//! packed byte length.

/// Append-only bit stream writer (LSB-first within each byte).
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the stream.
    len_bits: usize,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `width` bits of `value` (width ≤ 32).
    pub fn write(&mut self, value: u32, width: u32) {
        assert!(width <= 32, "width {width} too large");
        debug_assert!(
            width == 32 || value < (1u64 << width) as u32,
            "value {value} does not fit in {width} bits"
        );
        for k in 0..width {
            let bit = (value >> k) & 1;
            let pos = self.len_bits + k as usize;
            let byte = pos / 8;
            if byte == self.buf.len() {
                self.buf.push(0);
            }
            self.buf[byte] |= (bit as u8) << (pos % 8);
        }
        self.len_bits += width as usize;
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write(bit as u32, 1);
    }

    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reader over a bit stream produced by [`BitWriter`].
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Read `width` bits (LSB-first). Panics past end of stream.
    pub fn read(&mut self, width: u32) -> u32 {
        assert!(width <= 32);
        let mut v = 0u32;
        for k in 0..width {
            let byte = self.pos / 8;
            let bit = (self.buf[byte] >> (self.pos % 8)) & 1;
            v |= (bit as u32) << k;
            self.pos += 1;
        }
        v
    }

    #[inline]
    pub fn read_bit(&mut self) -> bool {
        self.read(1) == 1
    }

    #[inline]
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Remaining bits (including padding bits in the final byte).
    #[inline]
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }
}

/// Pack a slice of indices at fixed width; convenience for summaries.
pub fn pack_indices(indices: &[u32], width: u32) -> Vec<u8> {
    let mut w = BitWriter::new();
    for &i in indices {
        w.write(i, width);
    }
    w.into_bytes()
}

/// Unpack `n` indices of fixed width.
pub fn unpack_indices(bytes: &[u8], width: u32, n: usize) -> Vec<u32> {
    let mut r = BitReader::new(bytes);
    (0..n).map(|_| r.read(width)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(5, 3);
        w.write(1023, 10);
        w.write(0, 1);
        w.write(77, 7);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 5);
        assert_eq!(r.read(10), 1023);
        assert_eq!(r.read(1), 0);
        assert_eq!(r.read(7), 77);
    }

    #[test]
    fn bit_length_accounting() {
        let mut w = BitWriter::new();
        w.write(3, 2);
        w.write(1, 5);
        assert_eq!(w.len_bits(), 7);
        assert_eq!(w.len_bytes(), 1);
        w.write(1, 2);
        assert_eq!(w.len_bits(), 9);
        assert_eq!(w.len_bytes(), 2);
    }

    #[test]
    fn pack_unpack_indices() {
        let idx: Vec<u32> = (0..100).map(|i| i % 32).collect();
        let bytes = pack_indices(&idx, 5);
        assert_eq!(bytes.len(), (100usize * 5).div_ceil(8));
        assert_eq!(unpack_indices(&bytes, 5, 100), idx);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for i in 0..16 {
            w.write_bit(i % 3 == 0);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for i in 0..16 {
            assert_eq!(r.read_bit(), i % 3 == 0);
        }
    }

    #[test]
    fn full_width_values() {
        let mut w = BitWriter::new();
        w.write(u32::MAX, 32);
        w.write(0xDEADBEEF, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(32), u32::MAX);
        assert_eq!(r.read(32), 0xDEADBEEF);
    }
}
