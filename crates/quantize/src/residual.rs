//! Residual (multi-stage) Quantization baseline (Chen et al., Sensors 2010).
//!
//! Stage 1 quantizes the raw points with a coarse codebook; stage `s+1`
//! quantizes the residuals left by stage `s`. Reconstruction sums one
//! codeword per stage, and the code of a point is the tuple of per-stage
//! indices — like PQ, RQ pays multiple index streams per point.

use crate::codebook::index_bits_for;
use crate::kmeans::{kmeans, KMeansConfig};
use ppq_geo::Point;

/// A fitted residual quantizer over one batch of points.
#[derive(Clone, Debug)]
pub struct ResidualQuantizer {
    /// Per-stage codebooks.
    pub stages: Vec<Vec<Point>>,
    /// Per-stage assignment of each input point.
    pub codes: Vec<Vec<u32>>,
}

impl ResidualQuantizer {
    /// Fit `num_stages` stages with `words_per_stage` codewords each.
    pub fn fit(points: &[Point], words_per_stage: usize, num_stages: usize) -> Self {
        assert!(!points.is_empty() && num_stages >= 1);
        let cfg = KMeansConfig::default();
        let mut residuals: Vec<Point> = points.to_vec();
        let mut stages = Vec::with_capacity(num_stages);
        let mut codes = Vec::with_capacity(num_stages);
        for _ in 0..num_stages {
            let (cents, assign) = kmeans(&residuals, words_per_stage, &cfg);
            for (r, &a) in residuals.iter_mut().zip(&assign) {
                *r = *r - cents[a as usize];
            }
            stages.push(cents);
            codes.push(assign);
        }
        ResidualQuantizer { stages, codes }
    }

    /// Fit with a total per-point index budget of `bits`, split evenly over
    /// two stages (the classic RQ configuration; an odd bit goes to the
    /// first stage).
    pub fn fit_bits(points: &[Point], bits: u32) -> Self {
        assert!(bits >= 2);
        let b1 = bits.div_ceil(2);
        let b2 = bits / 2;
        let cfg = KMeansConfig::default();
        let (c1, a1) = kmeans(points, 1usize << b1, &cfg);
        let residuals: Vec<Point> = points
            .iter()
            .zip(&a1)
            .map(|(p, &a)| *p - c1[a as usize])
            .collect();
        let (c2, a2) = kmeans(&residuals, 1usize << b2, &cfg);
        ResidualQuantizer {
            stages: vec![c1, c2],
            codes: vec![a1, a2],
        }
    }

    /// Grow stage sizes (doubling) until the max reconstruction error is
    /// within `eps`.
    pub fn fit_bounded(points: &[Point], eps: f64) -> Self {
        assert!(eps > 0.0);
        let mut k = 2usize;
        loop {
            let rq = Self::fit(points, k, 2);
            if rq.max_error(points) <= eps || k * k >= points.len() * 4 {
                if rq.max_error(points) <= eps {
                    return rq;
                }
                // Final fallback: single-stage exact growth so the bound is
                // honoured even on adversarial inputs.
                let mut k2 = k;
                loop {
                    let rq = Self::fit(points, k2, 2);
                    if rq.max_error(points) <= eps || k2 >= points.len() {
                        return rq;
                    }
                    k2 *= 2;
                }
            }
            k *= 2;
        }
    }

    #[inline]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Reconstruction of input `i`: the sum of its per-stage codewords.
    pub fn reconstruct(&self, i: usize) -> Point {
        let mut p = Point::ORIGIN;
        for (stage, codes) in self.stages.iter().zip(&self.codes) {
            p += stage[codes[i] as usize];
        }
        p
    }

    pub fn max_error(&self, points: &[Point]) -> f64 {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| p.dist(&self.reconstruct(i)))
            .fold(0.0, f64::max)
    }

    pub fn mean_error(&self, points: &[Point]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        points
            .iter()
            .enumerate()
            .map(|(i, p)| p.dist(&self.reconstruct(i)))
            .sum::<f64>()
            / points.len() as f64
    }

    /// Total stored codewords across stages.
    pub fn total_codewords(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Index bits per point: one index per stage.
    pub fn index_bits_per_point(&self) -> u32 {
        self.stages.iter().map(|s| index_bits_for(s.len())).sum()
    }

    pub fn codebook_bytes(&self) -> usize {
        self.total_codewords() * 2 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect()
    }

    #[test]
    fn second_stage_reduces_error() {
        let pts = points(400, 1);
        let one = ResidualQuantizer::fit(&pts, 8, 1);
        let two = ResidualQuantizer::fit(&pts, 8, 2);
        assert!(two.mean_error(&pts) < one.mean_error(&pts));
    }

    #[test]
    fn bounded_fit_respects_eps() {
        let pts = points(300, 2);
        let rq = ResidualQuantizer::fit_bounded(&pts, 0.4);
        assert!(rq.max_error(&pts) <= 0.4 + 1e-12);
    }

    #[test]
    fn reconstruction_sums_stages() {
        let pts = points(50, 3);
        let rq = ResidualQuantizer::fit(&pts, 4, 2);
        let i = 7;
        let manual = rq.stages[0][rq.codes[0][i] as usize] + rq.stages[1][rq.codes[1][i] as usize];
        assert_eq!(rq.reconstruct(i), manual);
    }

    #[test]
    fn bits_budget_split() {
        let pts = points(200, 4);
        let rq = ResidualQuantizer::fit_bits(&pts, 7);
        assert_eq!(rq.stages[0].len(), 16); // ceil(7/2)=4 bits
        assert_eq!(rq.stages[1].len(), 8); // floor(7/2)=3 bits
        assert_eq!(rq.index_bits_per_point(), 7);
    }
}
