//! Vector-quantization substrate for PPQ-Trajectory.
//!
//! The paper builds on three quantization primitives, all implemented here:
//!
//! * [`mod@kmeans`] — Lloyd's algorithm plus the *bounded* variant the paper
//!   uses everywhere (grow the number of clusters by `a` per round until a
//!   radius constraint such as Eq. 7/8 holds — complexity `O(q·m·N·l)`,
//!   paper Lemma 1).
//! * [`incremental`] — the error-bounded incremental quantizer of
//!   Algorithm 1 line 6: maintain a codebook `C` such that every quantized
//!   value is within `ε₁` of its codeword, adding codewords online as the
//!   error distribution drifts.
//! * [`product`] / [`residual`] — the Product Quantization and Residual
//!   Quantization baselines from the evaluation (§6.1), restated for 2-D
//!   trajectory points.
//!
//! [`grid_nn`] supplies the O(1) nearest-codeword search that makes the
//! incremental quantizer fast, and [`bits`] packs codeword index streams
//! for honest summary-size accounting.

pub mod bits;
pub mod codebook;
pub mod grid_nn;
pub mod incremental;
pub mod kmeans;
pub mod product;
pub mod residual;

pub use codebook::Codebook;
pub use grid_nn::GridNN;
pub use incremental::IncrementalQuantizer;
pub use kmeans::{
    bounded_kmeans, bounded_kmeans_with, kmeans, kmeans_with, BoundedKMeansResult, KMeansConfig,
    KMeansWorkspace,
};
pub use product::{PqWorkspace, ProductQuantizer};
pub use residual::ResidualQuantizer;
