//! Grid-hash accelerated nearest-codeword search.
//!
//! The incremental quantizer must, for every incoming error vector, find
//! the nearest codeword *if one lies within `ε₁`*. Hashing codewords into a
//! uniform grid of cell side `ε₁` means any codeword within `ε₁` of a query
//! lies in the query's cell or one of its 8 neighbours, so each probe
//! inspects a constant number of cells. Beyond-`ε₁` lookups (needed for
//! exact nearest) fall back to an expanding ring search.

use ppq_geo::Point;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Minimal Fx-style integer hasher for the cell keys. The probe does nine
/// map lookups per query point, and the default SipHash dominates that
/// cost by an order of magnitude; cell coordinates are short fixed-width
/// integers, where a multiply-rotate hash is both fast and well mixed.
/// (Local implementation: the offline build cannot pull `rustc-hash`.)
#[derive(Clone, Copy, Default)]
pub struct CellHasher {
    state: u64,
}

impl Hasher for CellHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Fx-style combine: xor, multiply by a high-entropy odd constant,
        // rotate to spread low-bit patterns into the table index bits.
        self.state = (self.state ^ v)
            .wrapping_mul(0x517CC1B727220A95)
            .rotate_left(26);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

type CellMap = HashMap<(i64, i64), Vec<u32>, BuildHasherDefault<CellHasher>>;

/// Spatial hash over codeword positions with cell side = the bound `eps`.
#[derive(Clone, Debug)]
pub struct GridNN {
    eps: f64,
    cells: CellMap,
    points: Vec<Point>,
}

impl GridNN {
    /// `eps` is both the grid cell side and the radius the fast probe
    /// guarantees to cover.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps > 0.0 && eps.is_finite(),
            "eps must be positive, got {eps}"
        );
        GridNN {
            eps,
            cells: CellMap::default(),
            points: Vec::new(),
        }
    }

    #[inline]
    fn key(&self, p: &Point) -> (i64, i64) {
        (
            (p.x / self.eps).floor() as i64,
            (p.y / self.eps).floor() as i64,
        )
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Insert a point with an external id (the codeword index).
    pub fn insert(&mut self, id: u32, p: Point) {
        debug_assert_eq!(
            id as usize,
            self.points.len(),
            "ids must be dense and in order"
        );
        let key = self.key(&p);
        self.cells.entry(key).or_default().push(id);
        self.points.push(p);
    }

    /// Nearest neighbour within `eps` of `q`, if any. This is the O(1) hot
    /// path: only the 3×3 cell neighbourhood is probed.
    pub fn nearest_within_eps(&self, q: &Point) -> Option<(u32, f64)> {
        let (kx, ky) = self.key(q);
        let mut best: Option<(u32, f64)> = None;
        for dy in -1..=1 {
            for dx in -1..=1 {
                if let Some(ids) = self.cells.get(&(kx + dx, ky + dy)) {
                    for &id in ids {
                        let d2 = q.dist2(&self.points[id as usize]);
                        if best.is_none_or(|(_, b)| d2 < b) {
                            best = Some((id, d2));
                        }
                    }
                }
            }
        }
        match best {
            Some((id, d2)) if d2.sqrt() <= self.eps => Some((id, d2.sqrt())),
            _ => None,
        }
    }

    /// Exact nearest neighbour with no radius bound, via expanding ring
    /// search. Used when a caller needs the best codeword even if it is
    /// farther than `eps` (e.g. MAE accounting for budgeted codebooks).
    pub fn nearest(&self, q: &Point) -> Option<(u32, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let (kx, ky) = self.key(q);
        let mut best: Option<(u32, f64)> = None;
        let mut ring = 0i64;
        loop {
            for dy in -ring..=ring {
                for dx in -ring..=ring {
                    // Only the new boundary ring.
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    if let Some(ids) = self.cells.get(&(kx + dx, ky + dy)) {
                        for &id in ids {
                            let d2 = q.dist2(&self.points[id as usize]);
                            if best.is_none_or(|(_, b)| d2 < b) {
                                best = Some((id, d2));
                            }
                        }
                    }
                }
            }
            // Every point in ring s > r is at least (s-1)·eps from q, so once
            // the best distance is ≤ (ring-1)·eps no later ring can improve.
            if let Some((_, b2)) = best {
                let safe = (ring as f64 - 1.0).max(0.0) * self.eps;
                if b2.sqrt() <= safe {
                    break;
                }
            }
            ring += 1;
            // Far-from-data queries would otherwise scan O((d/eps)^2) empty
            // cells; fall back to the exhaustive scan instead.
            if ring > 64 && best.is_none() {
                let (id, d2) = self
                    .points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i as u32, q.dist2(p)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("points is non-empty");
                best = Some((id, d2));
                break;
            }
        }
        best.map(|(id, d2)| (id, d2.sqrt()))
    }

    /// Occupancy diagnostics: `(cells, max_per_cell, mean_per_cell)`.
    /// Dense cells mean every probe scans many candidates; useful when
    /// judging probe cost on skewed codeword distributions.
    pub fn cell_stats(&self) -> (usize, usize, f64) {
        let cells = self.cells.len();
        let max = self.cells.values().map(Vec::len).max().unwrap_or(0);
        let mean = if cells == 0 {
            0.0
        } else {
            self.points.len() as f64 / cells as f64
        };
        (cells, max, mean)
    }

    /// Rebuild from a list of points (ids are positions).
    pub fn from_points(eps: f64, pts: &[Point]) -> Self {
        let mut g = GridNN::new(eps);
        for (i, p) in pts.iter().enumerate() {
            g.insert(i as u32, *p);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_eps_hit_and_miss() {
        let mut g = GridNN::new(1.0);
        g.insert(0, Point::new(0.0, 0.0));
        g.insert(1, Point::new(5.0, 5.0));
        let (id, d) = g.nearest_within_eps(&Point::new(0.5, 0.0)).unwrap();
        assert_eq!(id, 0);
        assert!((d - 0.5).abs() < 1e-12);
        assert!(g.nearest_within_eps(&Point::new(2.5, 0.0)).is_none());
    }

    #[test]
    fn boundary_distance_exactly_eps_counts() {
        let mut g = GridNN::new(1.0);
        g.insert(0, Point::new(0.0, 0.0));
        let hit = g.nearest_within_eps(&Point::new(1.0, 0.0));
        assert!(hit.is_some());
        assert_eq!(hit.unwrap().0, 0);
    }

    #[test]
    fn unbounded_nearest_finds_far_point() {
        let mut g = GridNN::new(0.5);
        g.insert(0, Point::new(100.0, 100.0));
        g.insert(1, Point::new(-40.0, 3.0));
        let (id, _) = g.nearest(&Point::new(0.0, 0.0)).unwrap();
        assert_eq!(id, 1);
    }

    #[test]
    fn unbounded_nearest_empty_is_none() {
        let g = GridNN::new(1.0);
        assert!(g.nearest(&Point::ORIGIN).is_none());
    }

    #[test]
    fn matches_exhaustive_search() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point> = (0..400)
            .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect();
        let g = GridNN::from_points(0.8, &pts);
        for _ in 0..200 {
            let q = Point::new(rng.gen_range(-12.0..12.0), rng.gen_range(-12.0..12.0));
            let (gid, gd) = g.nearest(&q).unwrap();
            let (eid, ed) = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u32, q.dist(p)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!(
                (gd - ed).abs() < 1e-9,
                "grid gave {gid}@{gd}, exhaustive gave {eid}@{ed} for {q:?}"
            );
        }
    }
}
