//! The CQC bit code: a fixed-depth sequence of 2-bit quadrant labels.

/// Quadrant labels follow the paper (§4.1): `00` upper-left, `01`
/// upper-right, `10` lower-left, `11` lower-right.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Quadrant {
    UpperLeft = 0b00,
    UpperRight = 0b01,
    LowerLeft = 0b10,
    LowerRight = 0b11,
}

impl Quadrant {
    pub fn from_bits(bits: u8) -> Quadrant {
        match bits & 0b11 {
            0b00 => Quadrant::UpperLeft,
            0b01 => Quadrant::UpperRight,
            0b10 => Quadrant::LowerLeft,
            _ => Quadrant::LowerRight,
        }
    }

    /// Sign of the quadrant's displacement from the parent centre,
    /// `(sgn_x, sgn_y)`.
    #[inline]
    pub fn signs(self) -> (i64, i64) {
        match self {
            Quadrant::UpperLeft => (-1, 1),
            Quadrant::UpperRight => (1, 1),
            Quadrant::LowerLeft => (-1, -1),
            Quadrant::LowerRight => (1, -1),
        }
    }
}

/// A CQC code: up to 31 levels of 2-bit quadrant labels packed in a `u64`.
///
/// All leaves of a template sit at the same depth (the padded size
/// sequence is the same along every branch), so codes of one template all
/// have the same `depth` and the bit cost per point is `2·depth`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct CqcCode {
    bits: u64,
    depth: u8,
}

impl CqcCode {
    pub const EMPTY: CqcCode = CqcCode { bits: 0, depth: 0 };

    /// Construct from a list of quadrants, root-first.
    pub fn from_quadrants(quads: &[Quadrant]) -> CqcCode {
        assert!(
            quads.len() <= 31,
            "CQC depth {} exceeds the packed capacity",
            quads.len()
        );
        let mut bits = 0u64;
        for (i, q) in quads.iter().enumerate() {
            bits |= (*q as u64) << (2 * i);
        }
        CqcCode {
            bits,
            depth: quads.len() as u8,
        }
    }

    /// Append one quadrant (builder use).
    pub fn push(&mut self, q: Quadrant) {
        assert!(self.depth < 31);
        self.bits |= (q as u64) << (2 * self.depth);
        self.depth += 1;
    }

    /// Quadrant at `level` (0 = root split).
    #[inline]
    pub fn level(&self, level: u8) -> Quadrant {
        debug_assert!(level < self.depth);
        Quadrant::from_bits(((self.bits >> (2 * level)) & 0b11) as u8)
    }

    #[inline]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Storage cost in bits.
    #[inline]
    pub fn len_bits(&self) -> u32 {
        2 * self.depth as u32
    }

    /// Iterate quadrants root-first.
    pub fn iter(&self) -> impl Iterator<Item = Quadrant> + '_ {
        (0..self.depth).map(move |l| self.level(l))
    }

    /// Raw packed bits (for bit-stream serialization together with the
    /// template's fixed depth).
    #[inline]
    pub fn raw_bits(&self) -> u64 {
        self.bits
    }

    /// Rebuild from raw bits + depth (inverse of [`CqcCode::raw_bits`]).
    pub fn from_raw(bits: u64, depth: u8) -> CqcCode {
        assert!(depth <= 31);
        let mask = if depth == 0 {
            0
        } else {
            (1u64 << (2 * depth)) - 1
        };
        CqcCode {
            bits: bits & mask,
            depth,
        }
    }

    /// Binary string, root-first — matches the paper's presentation
    /// (e.g. "001110" for its example node `n₁`).
    pub fn to_binary_string(&self) -> String {
        let mut s = String::with_capacity(self.depth as usize * 2);
        for q in self.iter() {
            s.push_str(match q {
                Quadrant::UpperLeft => "00",
                Quadrant::UpperRight => "01",
                Quadrant::LowerLeft => "10",
                Quadrant::LowerRight => "11",
            });
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack() {
        let quads = [
            Quadrant::UpperLeft,
            Quadrant::LowerRight,
            Quadrant::LowerLeft,
        ];
        let code = CqcCode::from_quadrants(&quads);
        assert_eq!(code.depth(), 3);
        assert_eq!(code.len_bits(), 6);
        let back: Vec<Quadrant> = code.iter().collect();
        assert_eq!(back, quads);
    }

    #[test]
    fn push_matches_from_quadrants() {
        let mut c = CqcCode::EMPTY;
        c.push(Quadrant::UpperRight);
        c.push(Quadrant::UpperLeft);
        assert_eq!(
            c,
            CqcCode::from_quadrants(&[Quadrant::UpperRight, Quadrant::UpperLeft])
        );
    }

    #[test]
    fn binary_string_matches_paper_example_format() {
        let code = CqcCode::from_quadrants(&[
            Quadrant::UpperLeft,  // 00
            Quadrant::LowerRight, // 11
            Quadrant::LowerLeft,  // 10
        ]);
        assert_eq!(code.to_binary_string(), "001110");
    }

    #[test]
    fn raw_roundtrip() {
        let code = CqcCode::from_quadrants(&[Quadrant::LowerLeft, Quadrant::UpperRight]);
        let back = CqcCode::from_raw(code.raw_bits(), code.depth());
        assert_eq!(back, code);
    }

    #[test]
    fn signs() {
        assert_eq!(Quadrant::UpperLeft.signs(), (-1, 1));
        assert_eq!(Quadrant::LowerRight.signs(), (1, -1));
    }

    #[test]
    fn empty_code() {
        assert_eq!(CqcCode::EMPTY.depth(), 0);
        assert_eq!(CqcCode::EMPTY.len_bits(), 0);
        assert_eq!(CqcCode::EMPTY.to_binary_string(), "");
    }
}
