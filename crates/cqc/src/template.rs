//! The coordinate quadtree template (paper Algorithm 2).
//!
//! Given `ε₁` and `g_s` the quadtree is *fixed* — "a unified and fixed
//! coordinate quadtree is obtained … stored as a template" (§4.2) — so we
//! build it once, derive an encode table (cell → code) and both decoders,
//! and share the template across every point of the summary.

use crate::code::{CqcCode, Quadrant};
use ppq_geo::Point;
use std::collections::HashMap;

/// A built coordinate quadtree for one `(ε₁, g_s)` pair.
#[derive(Clone, Debug)]
pub struct CqcTemplate {
    /// Odd grid side, in cells. The grid covers `[-n·g_s/2, n·g_s/2]²` of
    /// deviation space so that deviation 0 is the centre of the centre
    /// cell.
    n: i64,
    gs: f64,
    /// Uniform leaf depth; every code is `2·depth` bits.
    depth: u8,
    /// Padded root size in cells.
    root_size: i64,
    /// cell → code, indexed `iy·n + ix`.
    encode_table: Vec<CqcCode>,
    /// code bits → cell, for the geometric decoder.
    decode_table: HashMap<u64, (i64, i64)>,
    /// Arithmetic decode of the centre cell's code (`c_cqc1` of Eq. 11).
    center_arith: (f64, f64),
    /// The centre cell's code itself (stored once, not per point — §4.2).
    center_code: CqcCode,
}

impl CqcTemplate {
    /// Grid side for a deviation disc of radius `eps1` and cell side `gs`:
    /// `ceil(2·ε₁/g_s)` forced odd so the centre cell exists.
    pub fn grid_side(eps1: f64, gs: f64) -> i64 {
        assert!(eps1 > 0.0 && gs > 0.0);
        let n = (2.0 * eps1 / gs).ceil() as i64;
        let n = n.max(1);
        if n % 2 == 0 {
            n + 1
        } else {
            n
        }
    }

    pub fn new(eps1: f64, gs: f64) -> CqcTemplate {
        Self::with_grid_side(Self::grid_side(eps1, gs), gs)
    }

    /// Build directly from an (odd) grid side. Exposed for tests that
    /// reproduce the paper's 5×5 example.
    pub fn with_grid_side(n: i64, gs: f64) -> CqcTemplate {
        assert!(n >= 1 && n % 2 == 1, "grid side must be odd, got {n}");
        assert!(gs > 0.0);
        let mut builder = Builder {
            n,
            encode: vec![CqcCode::EMPTY; (n * n) as usize],
            decode: HashMap::new(),
            depth: 0,
        };
        // Root: the n×n grid occupies cells [0, n)². When n > 1 it is odd
        // and padded toward the upper-left (paper Figure 3a): one extra
        // column on the left and one extra row on top.
        let root_size = if n == 1 { 1 } else { n + 1 };
        if n > 1 {
            builder.split(-1, 0, root_size, CqcCode::EMPTY);
        } else {
            builder.leaf(0, 0, CqcCode::EMPTY);
        }
        let Builder {
            encode: encode_table,
            decode: decode_table,
            depth,
            ..
        } = builder;

        let mut t = CqcTemplate {
            n,
            gs,
            depth,
            root_size,
            encode_table,
            decode_table,
            center_arith: (0.0, 0.0),
            center_code: CqcCode::EMPTY,
        };
        let center = n / 2;
        t.center_code = t.code_of_cell(center, center);
        t.center_arith = t.arith(&t.center_code);
        t
    }

    #[inline]
    pub fn n(&self) -> i64 {
        self.n
    }

    #[inline]
    pub fn gs(&self) -> f64 {
        self.gs
    }

    /// Uniform code depth (levels of 2-bit labels).
    #[inline]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Bits charged per stored point.
    #[inline]
    pub fn bits_per_point(&self) -> u32 {
        2 * self.depth as u32
    }

    /// Lemma 3: the residual error after CQC is at most `(√2/2)·g_s`.
    #[inline]
    pub fn error_bound(&self) -> f64 {
        std::f64::consts::FRAC_1_SQRT_2 * self.gs
    }

    /// The constant `c_cqc1` code of the centre cell (§4.2).
    #[inline]
    pub fn center_code(&self) -> CqcCode {
        self.center_code
    }

    /// Code of a grid cell.
    #[inline]
    pub fn code_of_cell(&self, ix: i64, iy: i64) -> CqcCode {
        debug_assert!(ix >= 0 && ix < self.n && iy >= 0 && iy < self.n);
        self.encode_table[(iy * self.n + ix) as usize]
    }

    /// Encode a deviation vector (true point minus reconstructed point).
    /// Deviations outside the grid (possible only when the codebook bound
    /// was not enforced, e.g. budgeted builds) are clamped to the nearest
    /// boundary cell.
    pub fn encode(&self, dev: Point) -> CqcCode {
        let half = self.n as f64 * self.gs * 0.5;
        let ix = (((dev.x + half) / self.gs).floor() as i64).clamp(0, self.n - 1);
        let iy = (((dev.y + half) / self.gs).floor() as i64).clamp(0, self.n - 1);
        self.code_of_cell(ix, iy)
    }

    /// Decode a code to the quantized deviation — the centre of the coded
    /// cell — using the arithmetic rule of paper Eqs. 9–11:
    /// `g_s · (c_code − c_cqc1)`.
    pub fn decode(&self, code: CqcCode) -> Point {
        let (cx, cy) = self.arith(&code);
        Point::new(
            (cx - self.center_arith.0) * self.gs,
            (cy - self.center_arith.1) * self.gs,
        )
    }

    /// Geometric decoder: look up the leaf cell and return its centre from
    /// the grid geometry directly. Exists to cross-validate [`Self::decode`]
    /// (the tests assert they agree on every cell).
    pub fn decode_geometric(&self, code: CqcCode) -> Option<Point> {
        let &(ix, iy) = self.decode_table.get(&code.raw_bits())?;
        let half = self.n as f64 * self.gs * 0.5;
        Some(Point::new(
            (ix as f64 + 0.5) * self.gs - half,
            (iy as f64 + 0.5) * self.gs - half,
        ))
    }

    /// Arithmetic position of the coded leaf cell's centre relative to the
    /// padded root's centre, in cell units — the sum `Σ ½·SC'` of Eq. 9
    /// with `SC'` from Eq. 10 (`SC' = 2⌈s/2⌉·(sgn x, sgn y)` for a subspace
    /// of odd size `s`, unchanged when `s` is 1 or even).
    fn arith(&self, code: &CqcCode) -> (f64, f64) {
        let mut s = self.root_size; // padded size at current level
        let mut x = 0.0f64;
        let mut y = 0.0f64;
        for q in code.iter() {
            let u = s / 2; // unpadded child size
            let sc = if u <= 1 || u % 2 == 0 { u } else { u + 1 }; // Eq. 10
            let (sx, sy) = q.signs();
            x += sx as f64 * sc as f64 * 0.5;
            y += sy as f64 * sc as f64 * 0.5;
            s = sc;
        }
        (x, y)
    }

    /// Size of the template if serialized (stored once per summary):
    /// the decode table as (code bits, cell) triples.
    pub fn size_bytes(&self) -> usize {
        // 8 bytes of packed code + 2×4 bytes of cell index per leaf, plus
        // the scalar header.
        self.decode_table.len() * 16 + 32
    }

    /// Number of real (non-padding) leaf cells.
    pub fn num_cells(&self) -> usize {
        self.decode_table.len()
    }
}

/// Recursive construction state.
struct Builder {
    n: i64,
    encode: Vec<CqcCode>,
    decode: HashMap<u64, (i64, i64)>,
    depth: u8,
}

impl Builder {
    /// True when the rect `[x0, x0+s) × [y0, y0+s)` contains at least one
    /// real cell of the `n×n` grid.
    fn has_real_cells(&self, x0: i64, y0: i64, s: i64) -> bool {
        x0 < self.n && y0 < self.n && x0 + s > 0 && y0 + s > 0
    }

    fn leaf(&mut self, ix: i64, iy: i64, code: CqcCode) {
        if ix >= 0 && ix < self.n && iy >= 0 && iy < self.n {
            self.encode[(iy * self.n + ix) as usize] = code;
            self.decode.insert(code.raw_bits(), (ix, iy));
            self.depth = self.depth.max(code.depth());
        }
    }

    /// Split a *padded* (even-size) rect into its four quadrants and
    /// recurse. Children pad themselves outward before their own split
    /// (partition_padding in the paper).
    fn split(&mut self, x0: i64, y0: i64, s: i64, code: CqcCode) {
        debug_assert!(s % 2 == 0 && s >= 2);
        let h = s / 2;
        let children = [
            (Quadrant::UpperLeft, x0, y0 + h),
            (Quadrant::UpperRight, x0 + h, y0 + h),
            (Quadrant::LowerLeft, x0, y0),
            (Quadrant::LowerRight, x0 + h, y0),
        ];
        for (q, cx0, cy0) in children {
            if !self.has_real_cells(cx0, cy0, h) {
                continue; // stopping condition: empty subspace
            }
            let mut child_code = code;
            child_code.push(q);
            if h == 1 {
                self.leaf(cx0, cy0, child_code);
                continue;
            }
            // Pad outward (away from the parent centre) when odd.
            let (px0, py0, ps) = if h % 2 == 1 {
                match q {
                    Quadrant::UpperLeft => (cx0 - 1, cy0, h + 1),
                    Quadrant::UpperRight => (cx0, cy0, h + 1),
                    Quadrant::LowerLeft => (cx0 - 1, cy0 - 1, h + 1),
                    Quadrant::LowerRight => (cx0, cy0 - 1, h + 1),
                }
            } else {
                (cx0, cy0, h)
            };
            self.split(px0, py0, ps, child_code);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: a 5×5 grid (ε₁ ≈ 111 m, g_s = 50 m
    /// gives ceil(222.6/50) = 5).
    #[test]
    fn paper_grid_side() {
        let eps1 = 0.001;
        let gs = 50.0 / 111_320.0;
        assert_eq!(CqcTemplate::grid_side(eps1, gs), 5);
    }

    #[test]
    fn five_by_five_has_uniform_six_bit_codes() {
        let t = CqcTemplate::with_grid_side(5, 1.0);
        // 5 (+pad 6) → 3 (+pad 4) → 2 → 1 : three levels, 6 bits.
        assert_eq!(t.depth(), 3);
        assert_eq!(t.bits_per_point(), 6);
        assert_eq!(t.num_cells(), 25);
    }

    #[test]
    fn every_cell_has_unique_code() {
        for n in [1i64, 3, 5, 7, 9, 13, 23] {
            let t = CqcTemplate::with_grid_side(n, 1.0);
            let mut seen = std::collections::HashSet::new();
            for iy in 0..n {
                for ix in 0..n {
                    let code = t.code_of_cell(ix, iy);
                    assert_eq!(code.depth(), t.depth(), "n={n} cell=({ix},{iy})");
                    assert!(
                        seen.insert(code.raw_bits()),
                        "duplicate code at n={n} ({ix},{iy})"
                    );
                }
            }
            assert_eq!(seen.len(), (n * n) as usize);
        }
    }

    #[test]
    fn arithmetic_decoder_matches_geometry() {
        for n in [1i64, 3, 5, 7, 11, 15, 21] {
            let t = CqcTemplate::with_grid_side(n, 0.7);
            for iy in 0..n {
                for ix in 0..n {
                    let code = t.code_of_cell(ix, iy);
                    let geo = t.decode_geometric(code).unwrap();
                    let arith = t.decode(code);
                    assert!(
                        geo.dist(&arith) < 1e-9,
                        "n={n} cell=({ix},{iy}): geometric {geo:?} vs arithmetic {arith:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn encode_decode_error_bound_lemma3() {
        let t = CqcTemplate::new(0.001, 50.0 / 111_320.0);
        let bound = t.error_bound();
        // Sample deviations across the disc of radius ε₁.
        let eps1 = 0.001;
        let steps = 40;
        for i in 0..steps {
            for j in 0..steps {
                let dx = (i as f64 / (steps - 1) as f64 - 0.5) * 2.0 * eps1;
                let dy = (j as f64 / (steps - 1) as f64 - 0.5) * 2.0 * eps1;
                if (dx * dx + dy * dy).sqrt() > eps1 {
                    continue;
                }
                let dev = Point::new(dx, dy);
                let rec = t.decode(t.encode(dev));
                assert!(
                    dev.dist(&rec) <= bound + 1e-12,
                    "deviation {dev:?} decoded to {rec:?}, err {} > bound {bound}",
                    dev.dist(&rec)
                );
            }
        }
    }

    #[test]
    fn zero_deviation_decodes_to_zero() {
        // n is odd, so deviation 0 is the exact centre of the centre cell.
        for n in [1i64, 5, 9] {
            let t = CqcTemplate::with_grid_side(n, 2.0);
            let rec = t.decode(t.encode(Point::ORIGIN));
            assert!(rec.norm() < 1e-12, "n={n}: zero decoded to {rec:?}");
        }
    }

    #[test]
    fn out_of_grid_deviation_clamps() {
        let t = CqcTemplate::with_grid_side(5, 1.0);
        let code = t.encode(Point::new(100.0, -100.0));
        let rec = t.decode(code);
        // Clamped to the outermost cell: |rec| is at the grid boundary.
        assert!(rec.x > 1.0 && rec.y < -1.0);
        assert!(rec.x <= 2.5 && rec.y >= -2.5);
    }

    #[test]
    fn single_cell_template() {
        let t = CqcTemplate::with_grid_side(1, 3.0);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.bits_per_point(), 0);
        assert_eq!(t.encode(Point::new(0.4, -0.4)), CqcCode::EMPTY);
        assert_eq!(t.decode(CqcCode::EMPTY), Point::ORIGIN);
    }

    #[test]
    fn center_code_is_constant_cqc1() {
        let t = CqcTemplate::with_grid_side(5, 1.0);
        assert_eq!(t.center_code(), t.encode(Point::ORIGIN));
    }

    #[test]
    fn template_size_is_dataset_independent() {
        // "The construction of the coordinate quadtree and getting the CQC
        // are independent of the dataset size when ε₁ and g_s are fixed."
        let a = CqcTemplate::new(0.001, 0.0005);
        let b = CqcTemplate::new(0.001, 0.0005);
        assert_eq!(a.size_bytes(), b.size_bytes());
        assert_eq!(a.depth(), b.depth());
    }

    #[test]
    fn finer_grid_means_deeper_codes_and_tighter_error() {
        let coarse = CqcTemplate::new(0.001, 0.0005);
        let fine = CqcTemplate::new(0.001, 0.0001);
        assert!(fine.depth() > coarse.depth());
        assert!(fine.error_bound() < coarse.error_bound());
    }
}
