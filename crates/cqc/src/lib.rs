//! Coordinate Quadtree Coding (CQC) — paper §4.
//!
//! The error-bounded codebook guarantees `‖(x,y) − (x̂,ŷ)‖ ≤ ε₁`, i.e. the
//! *deviation* `(x,y) − (x̂,ŷ)` lies in a disc of radius `ε₁`. CQC covers
//! the minimum square around that disc with an `n×n` grid of cells of side
//! `g_s` and builds a quadtree over the grid; the short binary code of the
//! cell containing the deviation is stored per point, cutting the
//! reconstruction error to `≤ (√2/2)·g_s` (paper Lemma 3).
//!
//! Two implementation points deserve a note (DESIGN.md §3 has the full
//! discussion):
//!
//! * **Padding.** Odd-sized subspaces are padded *outward* (away from the
//!   parent centre; paper Figure 3) so that the inner corner of every
//!   subspace coincides with its parent's centre. That invariant is what
//!   makes the arithmetic decoder below (paper Eqs. 9–10) agree with the
//!   geometric cell centres: a padded subspace of size `s` has its centre
//!   at `(± s/2, ± s/2)` relative to its parent's centre. The root pads
//!   toward the upper-left (paper Figure 3a).
//! * **Grid alignment.** The grid is aligned so that the true point sits
//!   at the centre of the centre cell ("(x, y) is fixed at the center cell
//!   of S_gs", §4.2); we force `n` odd so the centre cell exists. Then
//!   Eq. 11's difference `c_cqc1 − c_cqc2` cancels the asymmetric root
//!   padding exactly and the Lemma 3 bound is tight.

pub mod code;
pub mod template;

pub use code::CqcCode;
pub use template::CqcTemplate;
