//! Property tests for CQC: Lemma 3 and decoder agreement on random
//! parameterisations.

use ppq_cqc::CqcTemplate;
use ppq_geo::Point;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 3: any in-disc deviation reconstructs within (√2/2)·g_s.
    #[test]
    fn lemma3_holds(
        eps1 in 0.0005f64..0.01,
        ratio in 1.1f64..40.0, // eps1 / gs
        dx in -1.0f64..1.0,
        dy in -1.0f64..1.0,
    ) {
        let gs = eps1 / ratio;
        let t = CqcTemplate::new(eps1, gs);
        // Scale (dx, dy) into the ε₁ disc.
        let norm = (dx * dx + dy * dy).sqrt().max(1e-9);
        let scale = eps1 * norm.min(1.0) / norm;
        let dev = Point::new(dx * scale, dy * scale);
        let rec = t.decode(t.encode(dev));
        prop_assert!(dev.dist(&rec) <= t.error_bound() + 1e-12,
            "err {} bound {}", dev.dist(&rec), t.error_bound());
    }

    /// The arithmetic (Eq. 9–10) and geometric decoders agree everywhere.
    #[test]
    fn decoders_agree(n_half in 0i64..16, gs in 0.01f64..10.0) {
        let n = 2 * n_half + 1; // odd sides 1..33
        let t = CqcTemplate::with_grid_side(n, gs);
        for iy in 0..n {
            for ix in 0..n {
                let code = t.code_of_cell(ix, iy);
                let geo = t.decode_geometric(code).unwrap();
                let arith = t.decode(code);
                prop_assert!(geo.dist(&arith) < 1e-9 * gs.max(1.0),
                    "n={n} cell ({ix},{iy}): {geo:?} vs {arith:?}");
            }
        }
    }

    /// Encoding is the inverse of the decode table: encode(center of any
    /// cell) returns that cell's code.
    #[test]
    fn encode_cell_centers_roundtrip(n_half in 0i64..12, gs in 0.05f64..5.0) {
        let n = 2 * n_half + 1;
        let t = CqcTemplate::with_grid_side(n, gs);
        let half = n as f64 * gs * 0.5;
        for iy in 0..n {
            for ix in 0..n {
                let center = Point::new(
                    (ix as f64 + 0.5) * gs - half,
                    (iy as f64 + 0.5) * gs - half,
                );
                prop_assert_eq!(t.encode(center), t.code_of_cell(ix, iy));
            }
        }
    }
}
