//! Disk-resident TPI (paper §6.5, Table 9).
//!
//! Each period's `(region, t, cell, ids)` blocks are serialized onto 1 MiB
//! pages; the lightweight page index maps a period to its page run — and
//! *only* to its page run, so a query must scan the period's pages until
//! it finds the block it needs. That is exactly why Table 9 shows TPI
//! doing more I/Os than a per-timestep PI (whose periods are one timestep
//! long) but far fewer than TrajStore (whose cells span all of time).

use crate::pi::Pi;
use crate::tpi::Tpi;
use ppq_geo::Point;
use ppq_storage::codec::Encoder;
use ppq_storage::page::{Page, PAGE_SIZE};

use ppq_storage::page_index::PageRun;
use ppq_storage::{IoStats, PageIndex, PageStore};
use std::io;
use std::path::Path;

/// A TPI whose payload lives in a page file.
pub struct DiskTpi {
    /// Structural metadata stays in memory (region geometry, periods) —
    /// the ID payload lives on disk.
    tpi: Tpi,
    store: PageStore,
    index: PageIndex,
}

/// Serialize one period's blocks into a byte stream.
fn serialize_period(pi: &Pi) -> Vec<u8> {
    let blocks = pi.export_blocks();
    let mut enc = Encoder::with_capacity(blocks.len() * 32);
    enc.put_u32(blocks.len() as u32);
    for (region, t, cell, ids) in blocks {
        enc.put_u32(region);
        enc.put_u32(t);
        enc.put_u32(cell);
        enc.put_u32(ids.len() as u32);
        for id in ids {
            enc.put_u32(id);
        }
    }
    enc.finish().to_vec()
}

impl DiskTpi {
    /// Materialize a built TPI onto a page file at `path` with a buffer
    /// pool of `pool_pages` pages and the default 1 MiB page size.
    pub fn create(tpi: Tpi, path: &Path, pool_pages: usize) -> io::Result<DiskTpi> {
        Self::create_with(tpi, path, pool_pages, PAGE_SIZE)
    }

    /// Like [`DiskTpi::create`] with an explicit page size (scaled-down
    /// experiments scale the page with the dataset; EXPERIMENTS.md Table 9).
    pub fn create_with(
        tpi: Tpi,
        path: &Path,
        pool_pages: usize,
        page_size: usize,
    ) -> io::Result<DiskTpi> {
        let store = PageStore::create_with_page_size(path, pool_pages, page_size)?;
        let capacity = ppq_storage::payload_capacity(page_size);
        let mut index = PageIndex::new();
        for period in tpi.periods() {
            let payload = serialize_period(&period.pi);
            let num_pages = payload.len().div_ceil(capacity).max(1) as u64;
            let mut first_page = None;
            for chunk in payload.chunks(capacity) {
                let id = store.append(&Page::from_payload_with(chunk, page_size))?;
                first_page.get_or_insert(id);
            }
            if payload.is_empty() {
                let id = store.append(&Page::zeroed_with(page_size))?;
                first_page.get_or_insert(id);
            }
            index.push(PageRun {
                t_start: period.t_start,
                t_end: period.t_end,
                first_page: first_page.expect("at least one page per period"),
                num_pages,
            });
        }
        Ok(DiskTpi { tpi, store, index })
    }

    /// STRQ against the disk layout: locate the period and its (region,
    /// cell) address in memory, then scan the period's pages until the
    /// block for `(region, t, cell)` is found. Page reads go through the
    /// buffer pool and count I/Os on misses.
    pub fn query(&self, t: u32, p: &Point) -> io::Result<Vec<u32>> {
        let Some(period) = self.tpi.period_of(t) else {
            return Ok(Vec::new());
        };
        let Some((want_region, want_cell)) = period.pi.locate_cell(p) else {
            return Ok(Vec::new());
        };
        let run = self
            .index
            .lookup(t)
            .expect("page index covers every period");

        // Incrementally read pages and parse blocks until the target is
        // found or the run is exhausted.
        let mut bytes: Vec<u8> = Vec::with_capacity(self.store.page_size());
        let mut next_page = 0u64;
        let read_more = |bytes: &mut Vec<u8>, next_page: &mut u64| -> io::Result<bool> {
            if *next_page >= run.num_pages {
                return Ok(false);
            }
            let page = self.store.read(run.first_page + *next_page)?;
            bytes.extend_from_slice(page.payload());
            *next_page += 1;
            Ok(true)
        };
        // Ensure the header is available.
        while bytes.len() < 4 {
            if !read_more(&mut bytes, &mut next_page)? {
                return Ok(Vec::new());
            }
        }
        let mut pos = 0usize;
        let n_blocks = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        pos += 4;
        for _ in 0..n_blocks {
            // Need 16 bytes of block header.
            while bytes.len() < pos + 16 {
                if !read_more(&mut bytes, &mut next_page)? {
                    return Ok(Vec::new());
                }
            }
            // Allocation-free header parse: this runs for every block that
            // precedes the target, so it must stay cheap.
            let u32_at =
                |bytes: &[u8], at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let region = u32_at(&bytes, pos);
            let bt = u32_at(&bytes, pos + 4);
            let cell = u32_at(&bytes, pos + 8);
            let n_ids = u32_at(&bytes, pos + 12) as usize;
            pos += 16;
            let payload_len = n_ids * 4;
            while bytes.len() < pos + payload_len {
                if !read_more(&mut bytes, &mut next_page)? {
                    return Ok(Vec::new());
                }
            }
            if region == want_region && bt == t && cell == want_cell {
                return Ok((0..n_ids).map(|i| u32_at(&bytes, pos + i * 4)).collect());
            }
            pos += payload_len;
        }
        Ok(Vec::new())
    }

    #[inline]
    pub fn io_stats(&self) -> &IoStats {
        self.store.stats()
    }

    #[inline]
    pub fn tpi(&self) -> &Tpi {
        &self.tpi
    }

    /// On-disk footprint plus the in-memory lightweight index.
    pub fn size_bytes(&self) -> u64 {
        self.store.size_bytes() + self.index.size_bytes() as u64
    }

    pub fn num_pages(&self) -> u64 {
        self.store.num_pages()
    }

    /// Drop cached pages (to make query batches comparable).
    pub fn clear_cache(&self) {
        self.store.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pi::PiConfig;
    use crate::tpi::TpiConfig;
    use ppq_quantize::KMeansConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ppq-disktpi-{name}-{}", std::process::id()));
        p
    }

    fn build_tpi() -> Tpi {
        let cfg = TpiConfig {
            pi: PiConfig {
                eps_s: 2.0,
                gc: 0.5,
                kmeans: KMeansConfig::default(),
            },
            eps_c: 0.5,
            eps_d: 0.5,
        };
        let slices: Vec<(u32, Vec<(u32, Point)>)> = (0..6u32)
            .map(|t| {
                let pts: Vec<(u32, Point)> = (0..30)
                    .map(|i| {
                        let a = i as f64 * 0.5;
                        (i, Point::new(a.cos() * 2.0, a.sin() * 2.0))
                    })
                    .collect();
                (t, pts)
            })
            .collect();
        Tpi::build_from_slices(slices, &cfg)
    }

    #[test]
    fn disk_query_matches_memory_query() {
        let tpi = build_tpi();
        let mem = tpi.clone();
        let path = tmp("match");
        let disk = DiskTpi::create(tpi, &path, 0).unwrap();
        for t in 0..6u32 {
            for i in 0..30 {
                let a = i as f64 * 0.5;
                let p = Point::new(a.cos() * 2.0, a.sin() * 2.0);
                let mut want = mem.query(t, &p);
                let mut got = disk.query(t, &p).unwrap();
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "t={t} i={i}");
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn io_counted_and_pool_absorbs() {
        let tpi = build_tpi();
        let path = tmp("ios");
        let disk = DiskTpi::create(tpi, &path, 8).unwrap();
        disk.clear_cache();
        disk.io_stats().reset();
        let p = Point::new(2.0, 0.0);
        disk.query(0, &p).unwrap();
        let first = disk.io_stats().reads();
        assert!(first >= 1);
        disk.query(0, &p).unwrap();
        // Second identical query is served from the pool.
        assert_eq!(disk.io_stats().reads(), first);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn query_missing_time_is_empty() {
        let tpi = build_tpi();
        let path = tmp("miss");
        let disk = DiskTpi::create(tpi, &path, 0).unwrap();
        assert!(disk.query(99, &Point::ORIGIN).unwrap().is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn size_reported_in_pages() {
        let tpi = build_tpi();
        let path = tmp("size");
        let disk = DiskTpi::create(tpi, &path, 0).unwrap();
        assert!(disk.num_pages() >= 1);
        assert!(disk.size_bytes() >= PAGE_SIZE as u64);
        std::fs::remove_file(path).ok();
    }
}
