//! The temporal partition-based index TPI (paper Algorithm 4).

use crate::pi::{Pi, PiConfig};
use ppq_geo::Point;
use ppq_traj::Dataset;

/// TPI parameters (paper Table 1 / §6.1 defaults).
#[derive(Clone, Debug)]
pub struct TpiConfig {
    pub pi: PiConfig,
    /// TRD dropping-rate threshold `ε_c` (default 0.5).
    pub eps_c: f64,
    /// ADR threshold `ε_d` (default 0.5).
    pub eps_d: f64,
}

impl Default for TpiConfig {
    fn default() -> Self {
        TpiConfig {
            pi: PiConfig::default(),
            eps_c: 0.5,
            eps_d: 0.5,
        }
    }
}

/// Build statistics reported by Tables 7–8.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TpiStats {
    /// Number of time periods (= number of "Re-build"s, the first build
    /// included).
    pub periods: usize,
    /// Number of "Insertion" operations.
    pub insertions: usize,
    /// Timesteps processed.
    pub timesteps: usize,
}

/// One period: `[t_start, t_end]` plus its PI (with insertions appended).
#[derive(Clone, Debug)]
pub struct Period {
    pub t_start: u32,
    pub t_end: u32,
    pub pi: Pi,
}

/// The temporal partition-based index.
#[derive(Clone, Debug)]
pub struct Tpi {
    periods: Vec<Period>,
    stats: TpiStats,
}

impl Tpi {
    /// Algorithm 4 over an ordered stream of time slices.
    ///
    /// Each item is `(t, points-at-t)`; timesteps must be strictly
    /// increasing. Works for raw, reconstructed, or CQC-corrected points —
    /// the paper notes TPI "can actually be applied for any of `T`, `T̄'`
    /// and `T̂`".
    pub fn build_from_slices<'a, I>(slices: I, cfg: &TpiConfig) -> Tpi
    where
        I: IntoIterator<Item = (u32, Vec<(u32, Point)>)>,
        I::IntoIter: 'a,
    {
        let mut periods: Vec<Period> = Vec::new();
        let mut stats = TpiStats::default();
        for (t, points) in slices {
            stats.timesteps += 1;
            match periods.last_mut() {
                None => {
                    periods.push(Period {
                        t_start: t,
                        t_end: t,
                        pi: Pi::build(t, &points, &cfg.pi),
                    });
                    stats.periods += 1;
                }
                Some(period) => {
                    debug_assert!(t > period.t_end, "slices must be time-ordered");
                    let (covered, uncovered) = period.pi.split_coverage(&points);
                    // ADR over the covered set w.r.t. the period's regions
                    // (Algorithm 4 line 6 computes ADR(t_s, t_e, ε_c) on
                    // the covered points).
                    let adr = period.pi.adr(&covered, cfg.eps_c);
                    if adr > cfg.eps_d {
                        // Re-build: close the period, start a fresh PI.
                        let pi = Pi::build(t, &points, &cfg.pi);
                        periods.push(Period {
                            t_start: t,
                            t_end: t,
                            pi,
                        });
                        stats.periods += 1;
                    } else {
                        period.pi.insert_covered(t, &covered);
                        if !uncovered.is_empty() {
                            period.pi.append_insertion(t, &uncovered);
                            stats.insertions += 1;
                        }
                        period.t_end = t;
                    }
                }
            }
        }
        Tpi { periods, stats }
    }

    /// Convenience: build over a dataset's raw points.
    pub fn build(dataset: &Dataset, cfg: &TpiConfig) -> Tpi {
        Self::build_from_slices(dataset.time_slices().map(|s| (s.t, s.points.to_vec())), cfg)
    }

    #[inline]
    pub fn stats(&self) -> &TpiStats {
        &self.stats
    }

    #[inline]
    pub fn periods(&self) -> &[Period] {
        &self.periods
    }

    /// The period covering timestep `t` (binary search).
    pub fn period_of(&self, t: u32) -> Option<&Period> {
        let idx = self.periods.partition_point(|p| p.t_end < t);
        self.periods
            .get(idx)
            .filter(|p| p.t_start <= t && t <= p.t_end)
    }

    /// STRQ: trajectory IDs in the `g_c` cell of `p` at time `t`.
    pub fn query(&self, t: u32, p: &Point) -> Vec<u32> {
        self.period_of(t)
            .map(|period| period.pi.query(t, p))
            .unwrap_or_default()
    }

    /// [`Tpi::query`] appending into `out` through a reusable scratch.
    pub fn query_into(
        &self,
        t: u32,
        p: &Point,
        scratch: &mut ppq_sindex::QueryScratch,
        out: &mut Vec<u32>,
    ) {
        if let Some(period) = self.period_of(t) {
            period.pi.query_into(t, p, scratch, out);
        }
    }

    /// Local-search STRQ: IDs within radius `r` of `p` at time `t`.
    pub fn query_disc(&self, t: u32, p: &Point, r: f64) -> Vec<u32> {
        self.period_of(t)
            .map(|period| period.pi.query_disc(t, p, r))
            .unwrap_or_default()
    }

    /// [`Tpi::query_disc`] appending into `out` through a reusable scratch.
    pub fn query_disc_into(
        &self,
        t: u32,
        p: &Point,
        r: f64,
        scratch: &mut ppq_sindex::QueryScratch,
        out: &mut Vec<u32>,
    ) {
        if let Some(period) = self.period_of(t) {
            period.pi.query_disc_into(t, p, r, scratch, out);
        }
    }

    /// Rectangle STRQ: IDs in cells intersecting `rect` at time `t`.
    pub fn query_rect(&self, t: u32, rect: &ppq_geo::BBox) -> Vec<u32> {
        self.period_of(t)
            .map(|period| period.pi.query_rect(t, rect))
            .unwrap_or_default()
    }

    /// [`Tpi::query_rect`] appending the sorted, deduplicated IDs into
    /// `out` through a reusable scratch — the allocation-free primitive
    /// behind batched STRQ/TPQ evaluation.
    pub fn query_rect_into(
        &self,
        t: u32,
        rect: &ppq_geo::BBox,
        scratch: &mut ppq_sindex::QueryScratch,
        out: &mut Vec<u32>,
    ) {
        if let Some(period) = self.period_of(t) {
            period.pi.query_rect_into(t, rect, scratch, out);
        }
    }

    /// Total index size (what Tables 7–9 call "Index Size").
    pub fn size_bytes(&self) -> usize {
        self.periods.iter().map(|p| p.pi.size_bytes() + 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_quantize::KMeansConfig;

    fn cfg(eps_c: f64, eps_d: f64) -> TpiConfig {
        TpiConfig {
            pi: PiConfig {
                eps_s: 2.0,
                gc: 0.5,
                kmeans: KMeansConfig::default(),
            },
            eps_c,
            eps_d,
        }
    }

    /// Stream where the population stays put for `stable` steps, then
    /// jumps far away for another `stable` steps.
    fn jumpy_stream(stable: u32) -> Vec<(u32, Vec<(u32, Point)>)> {
        let mut slices = Vec::new();
        for t in 0..(2 * stable) {
            let offset = if t < stable { 0.0 } else { 100.0 };
            let pts: Vec<(u32, Point)> = (0..40)
                .map(|i| {
                    let a = i as f64 * 0.7;
                    (i, Point::new(offset + a.cos(), a.sin()))
                })
                .collect();
            slices.push((t, pts));
        }
        slices
    }

    #[test]
    fn stable_population_is_one_period() {
        let slices = jumpy_stream(5);
        let tpi = Tpi::build_from_slices(slices.into_iter().take(5), &cfg(0.5, 0.5));
        assert_eq!(tpi.stats().periods, 1);
        assert_eq!(tpi.periods()[0].t_start, 0);
        assert_eq!(tpi.periods()[0].t_end, 4);
    }

    #[test]
    fn population_jump_triggers_rebuild() {
        let tpi = Tpi::build_from_slices(jumpy_stream(5), &cfg(0.5, 0.5));
        assert_eq!(tpi.stats().periods, 2, "jump must start a new period");
        assert_eq!(tpi.periods()[1].t_start, 5);
    }

    #[test]
    fn queries_route_to_correct_period() {
        let tpi = Tpi::build_from_slices(jumpy_stream(5), &cfg(0.5, 0.5));
        // Before the jump the population is near the origin.
        let before = tpi.query_disc(2, &Point::new(0.0, 0.0), 2.0);
        assert!(!before.is_empty());
        // After the jump it is near x = 100.
        let after = tpi.query_disc(7, &Point::new(100.0, 0.0), 2.0);
        assert!(!after.is_empty());
        // And the old location is empty at the new time.
        assert!(tpi.query_disc(7, &Point::new(0.0, 0.0), 2.0).is_empty());
    }

    #[test]
    fn higher_eps_d_reduces_rebuilds() {
        // Drifting population: a fraction leaves every step.
        let mut slices = Vec::new();
        for t in 0..20u32 {
            let pts: Vec<(u32, Point)> = (0..60)
                .map(|i| {
                    let drift = t as f64 * 0.8;
                    let a = i as f64 * 0.4;
                    (i, Point::new(drift + a.cos() * 2.0, a.sin() * 2.0))
                })
                .collect();
            slices.push((t, pts));
        }
        let strict = Tpi::build_from_slices(slices.clone(), &cfg(0.5, 0.05));
        let lax = Tpi::build_from_slices(slices, &cfg(0.5, 0.9));
        assert!(
            strict.stats().periods >= lax.stats().periods,
            "strict {} vs lax {}",
            strict.stats().periods,
            lax.stats().periods
        );
    }

    #[test]
    fn uncovered_points_become_insertions() {
        let mut slices = jumpy_stream(3);
        // Keep population stable but add a new far-away cohort at t=1.
        slices.truncate(3);
        slices[1]
            .1
            .extend((100..120).map(|i| (i, Point::new(50.0, 50.0 + i as f64 * 0.01))));
        slices[2]
            .1
            .extend((100..120).map(|i| (i, Point::new(50.0, 50.0 + i as f64 * 0.01))));
        let tpi = Tpi::build_from_slices(slices, &cfg(0.5, 0.9));
        assert_eq!(tpi.stats().periods, 1);
        assert!(tpi.stats().insertions >= 1);
        let hits = tpi.query_disc(1, &Point::new(50.0, 50.1), 1.0);
        assert!(!hits.is_empty());
    }

    #[test]
    fn period_lookup_gaps() {
        let tpi = Tpi::build_from_slices(jumpy_stream(3), &cfg(0.5, 0.5));
        assert!(tpi.period_of(100).is_none());
        assert!(tpi.query(100, &Point::ORIGIN).is_empty());
    }

    #[test]
    fn empty_stream() {
        let tpi = Tpi::build_from_slices(std::iter::empty(), &cfg(0.5, 0.5));
        assert_eq!(tpi.stats(), &TpiStats::default());
        assert_eq!(tpi.size_bytes(), 0);
    }
}
