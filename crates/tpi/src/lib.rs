//! Temporal Partition-based Index (paper §5.1).
//!
//! * [`pi`] — the per-timestep partition index **PI** (Algorithm 3):
//!   bounded spatial partitioning with `ε_s`, minimum bounding rectangles,
//!   overlap removal into disjoint rectangles, and a `g_c` grid per
//!   rectangle whose cells hold per-timestep compressed trajectory-ID
//!   lists. Also hosts the trajectory-region-density machinery (TRD,
//!   Definition 5.1) and the average dropping rate (ADR, Eqs. 12–14).
//! * [`tpi`] — the temporal index **TPI** (Algorithm 4): reuse the current
//!   PI while `ADR ≤ ε_d` (building small "Insertion" PIs for uncovered
//!   points), otherwise close the period and re-build.
//! * [`disk`] — the disk-resident variant of §6.5: period data written to
//!   1 MiB pages behind the lightweight page index, with I/O counting.

pub mod disk;
pub mod pi;
pub mod tpi;

pub use disk::DiskTpi;
pub use pi::{Pi, PiConfig, Region};
pub use tpi::{Tpi, TpiConfig, TpiStats};
