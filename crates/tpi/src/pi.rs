//! The partition index PI (paper Algorithm 3) and the TRD/ADR machinery
//! (Definition 5.1, Eqs. 12–14).

use ppq_geo::{BBox, GridSpec, Point};
use ppq_quantize::{bounded_kmeans, KMeansConfig};
use ppq_sindex::{remove_overlap, CompressedIdList};
use std::collections::HashMap;

/// Parameters of PI construction.
#[derive(Clone, Debug)]
pub struct PiConfig {
    /// Partition threshold `ε_s` (Eq. 7 with `ε_p` replaced by `ε_s`).
    pub eps_s: f64,
    /// Grid cell side `g_c`.
    pub gc: f64,
    /// Bounded k-means knobs.
    pub kmeans: KMeansConfig,
}

impl Default for PiConfig {
    fn default() -> Self {
        // Paper defaults: ε_s = 0.1 (degrees), g_c = 100 m.
        PiConfig {
            eps_s: 0.1,
            gc: 100.0 / 111_320.0,
            kmeans: KMeansConfig::default(),
        }
    }
}

/// A timestep's points split into (covered, uncovered) by the current
/// regions.
pub type CoverageSplit = (Vec<(u32, Point)>, Vec<(u32, Point)>);

/// One non-overlapping rectangle with its grid and per-timestep ID lists.
#[derive(Clone, Debug)]
pub struct Region {
    bbox: BBox,
    grid: GridSpec,
    /// Density `d(R, t_build)` measured when the region was created — the
    /// reference value of Eq. 13.
    built_density: f64,
    /// (flat cell, timestep) → compressed IDs.
    cells: HashMap<(u32, u32), CompressedIdList>,
    points_indexed: usize,
}

impl Region {
    fn new(bbox: BBox, gc: f64) -> Region {
        Region {
            bbox,
            grid: GridSpec::covering(&bbox, gc),
            built_density: 0.0,
            cells: HashMap::new(),
            points_indexed: 0,
        }
    }

    #[inline]
    pub fn bbox(&self) -> &BBox {
        &self.bbox
    }

    /// TRD of this region for an arbitrary point population (Definition
    /// 5.1). Degenerate (zero-area) regions fall back to the raw count so
    /// the ratio of Eq. 13 stays meaningful.
    pub fn density_of(&self, count: usize) -> f64 {
        let area = self.bbox.area();
        if area > 0.0 {
            count as f64 / area
        } else {
            count as f64
        }
    }

    #[inline]
    pub fn built_density(&self) -> f64 {
        self.built_density
    }

    #[inline]
    pub fn points_indexed(&self) -> usize {
        self.points_indexed
    }

    fn insert_slice(&mut self, t: u32, points: &[(u32, Point)]) {
        let mut per_cell: HashMap<u32, Vec<u32>> = HashMap::new();
        for (id, p) in points {
            let (cx, cy) = self.grid.locate_clamped(p);
            per_cell
                .entry(self.grid.flat(cx, cy) as u32)
                .or_default()
                .push(*id);
            self.points_indexed += 1;
        }
        for (cell, ids) in per_cell {
            // Merge with an existing list for this (cell, t) if present
            // (possible when an insertion round routes more points here).
            let entry = self.cells.entry((cell, t));
            match entry {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let mut all = o.get().decompress();
                    all.extend(ids);
                    *o.get_mut() = CompressedIdList::compress(&all);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(CompressedIdList::compress(&ids));
                }
            }
        }
    }

    fn query_cell(&self, t: u32, p: &Point) -> Vec<u32> {
        let (cx, cy) = self.grid.locate_clamped(p);
        self.cells
            .get(&(self.grid.flat(cx, cy) as u32, t))
            .map(CompressedIdList::decompress)
            .unwrap_or_default()
    }

    fn query_disc(&self, t: u32, p: &Point, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        for (cx, cy) in self.grid.cells_in_disc(p, r) {
            if let Some(list) = self.cells.get(&(self.grid.flat(cx, cy) as u32, t)) {
                out.extend(list.decompress());
            }
        }
        out
    }

    fn query_rect(&self, t: u32, rect: &BBox) -> Vec<u32> {
        let mut out = Vec::new();
        for (cx, cy) in self.grid.cells_in_rect(rect) {
            if let Some(list) = self.cells.get(&(self.grid.flat(cx, cy) as u32, t)) {
                out.extend(list.decompress());
            }
        }
        out
    }

    pub fn size_bytes(&self) -> usize {
        let header = 4 * 8 + 4 * 8 + 8;
        header
            + self
                .cells
                .values()
                .map(|l| l.size_bytes() + 8)
                .sum::<usize>()
    }
}

/// A partition index: disjoint regions, each with a grid (Algorithm 3).
#[derive(Clone, Debug)]
pub struct Pi {
    regions: Vec<Region>,
    cfg: PiConfig,
    /// Timestep the PI was (re)built at (`t_s`).
    built_at: u32,
}

impl Pi {
    /// Algorithm 3: partition the points at timestep `t` with bound
    /// `ε_s`, cover each partition with its MBR, remove overlaps, and grid
    /// every resulting rectangle.
    pub fn build(t: u32, points: &[(u32, Point)], cfg: &PiConfig) -> Pi {
        let mut pi = Pi {
            regions: Vec::new(),
            cfg: cfg.clone(),
            built_at: t,
        };
        if !points.is_empty() {
            pi.add_regions_for(t, points);
        }
        pi
    }

    /// Create regions covering `points` that avoid every existing region,
    /// then index the points. Shared by the initial build and "Insertion".
    fn add_regions_for(&mut self, t: u32, points: &[(u32, Point)]) {
        let positions: Vec<Point> = points.iter().map(|(_, p)| *p).collect();
        let res = bounded_kmeans(&positions, self.cfg.eps_s, &self.cfg.kmeans);
        // Group member points per partition, take MBRs.
        let mut mbrs: Vec<BBox> = vec![BBox::EMPTY; res.centroids.len()];
        for (i, &a) in res.assign.iter().enumerate() {
            mbrs[a as usize].expand(&positions[i]);
        }
        let mut existing: Vec<BBox> = self.regions.iter().map(|r| r.bbox).collect();
        let mut new_regions: Vec<Region> = Vec::new();
        for mbr in mbrs.into_iter().filter(|m| !m.is_empty()) {
            // Give zero-extent MBRs (single point / collinear) a hair of
            // area so the grid and TRD are well-defined.
            let mbr = if mbr.area() == 0.0 {
                mbr.inflate(self.cfg.gc * 0.5)
            } else {
                mbr
            };
            for piece in remove_overlap(&mbr, &existing) {
                if piece.area() <= 0.0 {
                    continue;
                }
                existing.push(piece);
                new_regions.push(Region::new(piece, self.cfg.gc));
            }
        }
        // Route the points into the new regions (points already covered by
        // pre-existing regions are the caller's responsibility).
        let start = self.regions.len();
        self.regions.extend(new_regions);
        let mut routed: HashMap<usize, Vec<(u32, Point)>> = HashMap::new();
        for &(id, p) in points {
            if let Some(ri) = self.locate_region_from(start, &p) {
                routed.entry(ri).or_default().push((id, p));
            }
        }
        for (ri, pts) in routed {
            self.regions[ri].insert_slice(t, &pts);
            let count = pts.len();
            let d = self.regions[ri].density_of(count);
            // First population defines the reference density.
            if self.regions[ri].built_density == 0.0 {
                self.regions[ri].built_density = d;
            }
        }
        // Drop regions that ended up with no points (overlap-removal
        // slivers not containing any member).
        self.regions
            .retain(|r| r.points_indexed > 0 || r.built_density > 0.0);
    }

    fn locate_region_from(&self, start: usize, p: &Point) -> Option<usize> {
        self.regions
            .iter()
            .enumerate()
            .skip(start)
            .find(|(_, r)| r.bbox.contains(p))
            .map(|(i, _)| i)
    }

    /// Index of the region containing `p`, if covered.
    pub fn locate_region(&self, p: &Point) -> Option<usize> {
        self.regions.iter().position(|r| r.bbox.contains(p))
    }

    #[inline]
    pub fn covers(&self, p: &Point) -> bool {
        self.locate_region(p).is_some()
    }

    #[inline]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    #[inline]
    pub fn built_at(&self) -> u32 {
        self.built_at
    }

    /// Split a timestep's points into (covered, uncovered) w.r.t. the
    /// current regions (Algorithm 4 line 5).
    pub fn split_coverage(&self, points: &[(u32, Point)]) -> CoverageSplit {
        let mut covered = Vec::with_capacity(points.len());
        let mut uncovered = Vec::new();
        for &(id, p) in points {
            if self.covers(&p) {
                covered.push((id, p));
            } else {
                uncovered.push((id, p));
            }
        }
        (covered, uncovered)
    }

    /// Insert a timestep's covered points into the existing regions.
    pub fn insert_covered(&mut self, t: u32, covered: &[(u32, Point)]) {
        let mut routed: HashMap<usize, Vec<(u32, Point)>> = HashMap::new();
        for &(id, p) in covered {
            if let Some(ri) = self.locate_region(&p) {
                routed.entry(ri).or_default().push((id, p));
            }
        }
        for (ri, pts) in routed {
            self.regions[ri].insert_slice(t, &pts);
        }
    }

    /// "Insertion" (Algorithm 4 line 11): build regions for the uncovered
    /// points and append them to this PI.
    pub fn append_insertion(&mut self, t: u32, uncovered: &[(u32, Point)]) {
        if !uncovered.is_empty() {
            self.add_regions_for(t, uncovered);
        }
    }

    /// ADR of the current regions against a new point population
    /// (Eqs. 12–14): the fraction of regions whose TRD dropped by more
    /// than `ε_c` relative to their build-time TRD.
    pub fn adr(&self, points_now: &[(u32, Point)], eps_c: f64) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        let mut counts = vec![0usize; self.regions.len()];
        for (_, p) in points_now {
            if let Some(ri) = self.locate_region(p) {
                counts[ri] += 1;
            }
        }
        let mut dropped = 0usize;
        for (r, &c) in self.regions.iter().zip(&counts) {
            let d_old = r.built_density;
            if d_old <= 0.0 {
                continue;
            }
            let d_new = r.density_of(c);
            let h1 = (d_new - d_old) / d_old; // Eq. 13
            if h1 < 0.0 && h1.abs() > eps_c {
                dropped += 1; // Eq. 14
            }
        }
        dropped as f64 / self.regions.len() as f64 // Eq. 12
    }

    /// STRQ primitive: IDs in the `g_c` cell containing `p` at time `t`.
    pub fn query(&self, t: u32, p: &Point) -> Vec<u32> {
        match self.locate_region(p) {
            Some(ri) => self.regions[ri].query_cell(t, p),
            None => Vec::new(),
        }
    }

    /// IDs in every cell intersecting `rect` at time `t` — the primitive
    /// behind cell-bbox STRQ and local search over an inflated cell.
    pub fn query_rect(&self, t: u32, rect: &BBox) -> Vec<u32> {
        let mut out = Vec::new();
        for region in &self.regions {
            if region.bbox.intersects(rect) {
                out.extend(region.query_rect(t, rect));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Local-search primitive: union of IDs in all cells within radius `r`
    /// of `p` at time `t`, across every region the disc touches.
    pub fn query_disc(&self, t: u32, p: &Point, r: f64) -> Vec<u32> {
        let probe = BBox::from_extents(p.x - r, p.y - r, p.x + r, p.y + r);
        let mut out = Vec::new();
        for region in &self.regions {
            if region.bbox.intersects(&probe) {
                out.extend(region.query_disc(t, p, r));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    pub fn size_bytes(&self) -> usize {
        self.regions.iter().map(Region::size_bytes).sum::<usize>() + 16
    }

    pub fn points_indexed(&self) -> usize {
        self.regions.iter().map(Region::points_indexed).sum()
    }

    /// Locate the (region index, flat grid cell) of a point, if covered.
    /// Used by the disk layout to address blocks without touching data.
    pub fn locate_cell(&self, p: &Point) -> Option<(u32, u32)> {
        let ri = self.locate_region(p)?;
        let grid = &self.regions[ri].grid;
        let (cx, cy) = grid.locate_clamped(p);
        Some((ri as u32, grid.flat(cx, cy) as u32))
    }

    /// Export every (region, timestep, cell, ids) block, region-major then
    /// time-major — the on-disk layout of the period ("the trajectory
    /// points within a time period can be written into several pages",
    /// §5.1).
    pub fn export_blocks(&self) -> Vec<(u32, u32, u32, Vec<u32>)> {
        let mut out = Vec::new();
        for (ri, region) in self.regions.iter().enumerate() {
            let mut keys: Vec<(u32, u32)> = region.cells.keys().copied().collect();
            // (cell, t) sorted cell-major keeps a cell's history adjacent.
            keys.sort_unstable();
            for (cell, t) in keys {
                let ids = region.cells[&(cell, t)].decompress();
                out.push((ri as u32, t, cell, ids));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(center: Point, n: usize, spread: f64) -> Vec<(u32, Point)> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963; // golden-angle spiral
                let r = spread * (i as f64 / n as f64).sqrt();
                (
                    i as u32,
                    Point::new(center.x + r * a.cos(), center.y + r * a.sin()),
                )
            })
            .collect()
    }

    fn cfg() -> PiConfig {
        PiConfig {
            eps_s: 2.0,
            gc: 0.5,
            kmeans: KMeansConfig::default(),
        }
    }

    #[test]
    fn build_produces_disjoint_regions() {
        let mut pts = cluster(Point::new(0.0, 0.0), 100, 1.5);
        pts.extend(
            cluster(Point::new(20.0, 0.0), 100, 1.5)
                .into_iter()
                .map(|(i, p)| (i + 100, p)),
        );
        let pi = Pi::build(0, &pts, &cfg());
        assert!(pi.regions().len() >= 2);
        for (i, a) in pi.regions().iter().enumerate() {
            for b in pi.regions().iter().skip(i + 1) {
                if let Some(inter) = a.bbox().intersection(b.bbox()) {
                    assert!(inter.area() < 1e-9, "regions overlap materially");
                }
            }
        }
        assert_eq!(pi.points_indexed(), 200);
    }

    #[test]
    fn query_finds_cohabitants() {
        let pts = vec![
            (1u32, Point::new(0.1, 0.1)),
            (2, Point::new(0.2, 0.2)),
            (3, Point::new(5.0, 5.0)),
        ];
        let pi = Pi::build(7, &pts, &cfg());
        let hits = pi.query(7, &Point::new(0.15, 0.15));
        assert!(hits.contains(&1) && hits.contains(&2), "hits {hits:?}");
        assert!(!hits.contains(&3));
        // Wrong timestep: nothing.
        assert!(pi.query(8, &Point::new(0.15, 0.15)).is_empty());
    }

    #[test]
    fn disc_query_spans_regions() {
        let mut pts = cluster(Point::new(0.0, 0.0), 50, 1.0);
        pts.extend(
            cluster(Point::new(4.0, 0.0), 50, 1.0)
                .into_iter()
                .map(|(i, p)| (i + 50, p)),
        );
        let pi = Pi::build(0, &pts, &cfg());
        let all = pi.query_disc(0, &Point::new(2.0, 0.0), 5.0);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn coverage_split() {
        let pts = cluster(Point::new(0.0, 0.0), 60, 1.0);
        let pi = Pi::build(0, &pts, &cfg());
        let new_pts = vec![
            (900u32, Point::new(0.0, 0.0)),
            (901, Point::new(100.0, 100.0)),
        ];
        let (covered, uncovered) = pi.split_coverage(&new_pts);
        assert_eq!(covered.len(), 1);
        assert_eq!(uncovered.len(), 1);
        assert_eq!(uncovered[0].0, 901);
    }

    #[test]
    fn adr_zero_when_population_stable() {
        let pts = cluster(Point::new(0.0, 0.0), 80, 1.0);
        let pi = Pi::build(0, &pts, &cfg());
        assert_eq!(pi.adr(&pts, 0.5), 0.0);
    }

    #[test]
    fn adr_high_when_population_leaves() {
        let pts = cluster(Point::new(0.0, 0.0), 80, 1.0);
        let pi = Pi::build(0, &pts, &cfg());
        // Everyone moved far away.
        let moved: Vec<(u32, Point)> = pts
            .iter()
            .map(|(i, p)| (*i, Point::new(p.x + 50.0, p.y)))
            .collect();
        let adr = pi.adr(&moved, 0.5);
        assert!(adr > 0.9, "adr {adr}");
    }

    #[test]
    fn insertion_extends_coverage() {
        let pts = cluster(Point::new(0.0, 0.0), 60, 1.0);
        let mut pi = Pi::build(0, &pts, &cfg());
        let far = cluster(Point::new(30.0, 30.0), 20, 1.0);
        assert!(!pi.covers(&Point::new(30.0, 30.0)));
        pi.append_insertion(1, &far);
        assert!(pi.covers(&Point::new(30.0, 30.0)));
        let hits = pi.query_disc(1, &Point::new(30.0, 30.0), 2.0);
        assert!(!hits.is_empty());
    }

    #[test]
    fn insert_covered_accumulates_timesteps() {
        let pts = cluster(Point::new(0.0, 0.0), 40, 1.0);
        let mut pi = Pi::build(0, &pts, &cfg());
        let later: Vec<(u32, Point)> = pts.iter().map(|(i, p)| (*i + 500, *p)).collect();
        pi.insert_covered(1, &later);
        let t0 = pi.query_disc(0, &Point::new(0.0, 0.0), 2.0);
        let t1 = pi.query_disc(1, &Point::new(0.0, 0.0), 2.0);
        assert_eq!(t0.len(), 40);
        assert_eq!(t1.len(), 40);
        assert!(t1.iter().all(|&id| id >= 500));
    }

    #[test]
    fn empty_build() {
        let pi = Pi::build(0, &[], &cfg());
        assert!(pi.regions().is_empty());
        assert!(pi.query(0, &Point::ORIGIN).is_empty());
        assert_eq!(pi.adr(&[], 0.5), 0.0);
    }
}
