//! The partition index PI (paper Algorithm 3) and the TRD/ADR machinery
//! (Definition 5.1, Eqs. 12–14).
//!
//! Query-path layout: each region keeps one *posting dictionary* per
//! timestep — occupied cells sorted by flat index with their compressed
//! ID lists plus the occupied cell-coordinate bounds — and the PI keeps a
//! coarse locator grid over its region rectangles. A rectangle query
//! therefore touches only the regions whose boxes the locator proposes
//! and, within each, only the sorted posting intervals of the covered
//! rows, instead of the seed's scan over every region and every covered
//! cell.

use ppq_geo::{BBox, GridSpec, Point};
use ppq_quantize::{bounded_kmeans, KMeansConfig};
use ppq_sindex::{remove_overlap, CompressedIdList, QueryScratch};
use std::collections::HashMap;

/// Parameters of PI construction.
#[derive(Clone, Debug)]
pub struct PiConfig {
    /// Partition threshold `ε_s` (Eq. 7 with `ε_p` replaced by `ε_s`).
    pub eps_s: f64,
    /// Grid cell side `g_c`.
    pub gc: f64,
    /// Bounded k-means knobs.
    pub kmeans: KMeansConfig,
}

impl Default for PiConfig {
    fn default() -> Self {
        // Paper defaults: ε_s = 0.1 (degrees), g_c = 100 m.
        PiConfig {
            eps_s: 0.1,
            gc: 100.0 / 111_320.0,
            kmeans: KMeansConfig::default(),
        }
    }
}

/// A timestep's points split into (covered, uncovered) by the current
/// regions.
pub type CoverageSplit = (Vec<(u32, Point)>, Vec<(u32, Point)>);

/// One timestep's occupied cells: a posting dictionary sorted by flat
/// cell index, with the occupied cell-coordinate bounds for pruning.
///
/// Keys and compressed lists live in *parallel* vectors: a
/// `CompressedIdList` is large (it embeds its Huffman tables), so binary
/// searching a `Vec<(u32, CompressedIdList)>` would touch one cache line
/// per ~1.5 KB stride. The dense `keys` vector keeps the whole search
/// within a few cache lines.
#[derive(Clone, Debug)]
struct SlicePostings {
    /// Occupied flat cell indices, sorted ascending.
    keys: Vec<u32>,
    /// `lists[i]` holds the IDs of cell `keys[i]`.
    lists: Vec<CompressedIdList>,
    /// Inclusive occupied cell-coordinate bounds `(min_cx, min_cy,
    /// max_cx, max_cy)`.
    min_cx: u32,
    min_cy: u32,
    max_cx: u32,
    max_cy: u32,
}

impl SlicePostings {
    fn new() -> SlicePostings {
        SlicePostings {
            keys: Vec::new(),
            lists: Vec::new(),
            min_cx: u32::MAX,
            min_cy: u32::MAX,
            max_cx: 0,
            max_cy: 0,
        }
    }

    fn note_occupied(&mut self, cx: u32, cy: u32) {
        self.min_cx = self.min_cx.min(cx);
        self.min_cy = self.min_cy.min(cy);
        self.max_cx = self.max_cx.max(cx);
        self.max_cy = self.max_cy.max(cy);
    }
}

/// One non-overlapping rectangle with its grid and per-timestep ID lists.
#[derive(Clone, Debug)]
pub struct Region {
    bbox: BBox,
    grid: GridSpec,
    /// Density `d(R, t_build)` measured when the region was created — the
    /// reference value of Eq. 13.
    built_density: f64,
    /// timestep → sorted posting dictionary.
    slices: HashMap<u32, SlicePostings>,
    points_indexed: usize,
}

impl Region {
    fn new(bbox: BBox, gc: f64) -> Region {
        let grid = GridSpec::covering(&bbox, gc);
        // Posting keys are u32 flat cell indices; a grid that exceeds
        // that domain would silently alias cells after truncation.
        assert!(
            grid.len() <= u32::MAX as usize,
            "region grid has {} cells, exceeding the u32 posting-key domain \
             (grow gc or shrink the region)",
            grid.len()
        );
        Region {
            bbox,
            grid,
            built_density: 0.0,
            slices: HashMap::new(),
            points_indexed: 0,
        }
    }

    #[inline]
    pub fn bbox(&self) -> &BBox {
        &self.bbox
    }

    /// The region's `g_c` grid (used by the disk layout and by reference
    /// evaluators that reconstruct the seed's per-cell scan).
    #[inline]
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// TRD of this region for an arbitrary point population (Definition
    /// 5.1). Degenerate (zero-area) regions fall back to the raw count so
    /// the ratio of Eq. 13 stays meaningful.
    pub fn density_of(&self, count: usize) -> f64 {
        let area = self.bbox.area();
        if area > 0.0 {
            count as f64 / area
        } else {
            count as f64
        }
    }

    #[inline]
    pub fn built_density(&self) -> f64 {
        self.built_density
    }

    #[inline]
    pub fn points_indexed(&self) -> usize {
        self.points_indexed
    }

    fn insert_slice(&mut self, t: u32, points: &[(u32, Point)]) {
        let mut per_cell: HashMap<u32, Vec<u32>> = HashMap::new();
        for (id, p) in points {
            let (cx, cy) = self.grid.locate_clamped(p);
            per_cell
                .entry(self.grid.flat(cx, cy) as u32)
                .or_default()
                .push(*id);
            self.points_indexed += 1;
        }
        // Sort the incoming cells once and merge with the existing
        // dictionary in one pass (repeated sorted `Vec::insert` would be
        // quadratic in occupied cells, memmoving large list structs).
        let mut incoming: Vec<(u32, Vec<u32>)> = per_cell.into_iter().collect();
        incoming.sort_unstable_by_key(|(cell, _)| *cell);
        let slice = self.slices.entry(t).or_insert_with(SlicePostings::new);
        for (cell, _) in &incoming {
            let (cx, cy) = self.grid.unflat(*cell as usize);
            slice.note_occupied(cx, cy);
        }
        if slice.keys.is_empty() {
            // Common case: first population of this timestep's slice.
            slice.keys.extend(incoming.iter().map(|(cell, _)| *cell));
            slice.lists.extend(
                incoming
                    .iter()
                    .map(|(_, ids)| CompressedIdList::compress(ids)),
            );
            return;
        }
        // Two-pointer merge; on a key collision (possible when an
        // insertion round routes more points into a cell already filled
        // this timestep) the lists are merged and recompressed.
        let old_keys = std::mem::take(&mut slice.keys);
        let old_lists = std::mem::take(&mut slice.lists);
        slice.keys.reserve(old_keys.len() + incoming.len());
        slice.lists.reserve(old_lists.len() + incoming.len());
        let mut old = old_keys.into_iter().zip(old_lists).peekable();
        let mut new = incoming.into_iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some(&(ok, _)), Some(&(nk, _))) => match ok.cmp(&nk) {
                    std::cmp::Ordering::Less => {
                        let (k, l) = old.next().unwrap();
                        slice.keys.push(k);
                        slice.lists.push(l);
                    }
                    std::cmp::Ordering::Greater => {
                        let (k, ids) = new.next().unwrap();
                        slice.keys.push(k);
                        slice.lists.push(CompressedIdList::compress(&ids));
                    }
                    std::cmp::Ordering::Equal => {
                        let (k, l) = old.next().unwrap();
                        let (_, ids) = new.next().unwrap();
                        let mut all = l.decompress();
                        all.extend(ids);
                        slice.keys.push(k);
                        slice.lists.push(CompressedIdList::compress(&all));
                    }
                },
                (Some(_), None) => {
                    let (k, l) = old.next().unwrap();
                    slice.keys.push(k);
                    slice.lists.push(l);
                }
                (None, Some(_)) => {
                    let (k, ids) = new.next().unwrap();
                    slice.keys.push(k);
                    slice.lists.push(CompressedIdList::compress(&ids));
                }
                (None, None) => break,
            }
        }
    }

    /// IDs of the single cell containing `p` at `t`, appended to `out`
    /// (already sorted + deduplicated — one compressed list).
    fn query_cell_into(&self, t: u32, p: &Point, scratch: &mut QueryScratch, out: &mut Vec<u32>) {
        let Some(slice) = self.slices.get(&t) else {
            return;
        };
        let (cx, cy) = self.grid.locate_clamped(p);
        if cx < slice.min_cx || cx > slice.max_cx || cy < slice.min_cy || cy > slice.max_cy {
            return;
        }
        let flat = self.grid.flat(cx, cy) as u32;
        if let Ok(i) = slice.keys.binary_search(&flat) {
            slice.lists[i].decompress_into(&mut scratch.bytes, out);
        }
    }

    /// Decompress every posting in cells intersecting `rect` at `t` into
    /// `scratch.set` (deduplicating across cells and regions).
    fn query_rect_into_set(&self, t: u32, rect: &BBox, scratch: &mut QueryScratch) {
        self.covered_postings(t, rect, scratch, |_, _| true);
    }

    /// Like [`Region::query_rect_into_set`] for the disc of radius `r`
    /// around `p` (the paper's local search).
    fn query_disc_into_set(&self, t: u32, p: &Point, r: f64, scratch: &mut QueryScratch) {
        let probe = BBox::from_extents(p.x - r, p.y - r, p.x + r, p.y + r);
        let r2 = r * r;
        let grid = &self.grid;
        self.covered_postings(t, &probe, scratch, move |cx, cy| {
            grid.cell_dist2(cx, cy, p) <= r2
        });
    }

    /// Walk the sorted posting intervals of every row the `probe`
    /// rectangle covers at `t`; postings whose cell passes `keep` are
    /// decompressed into `scratch.set`. Falls back to one linear pass
    /// over the dictionary when the probe covers more cells than the
    /// dictionary holds.
    fn covered_postings(
        &self,
        t: u32,
        probe: &BBox,
        scratch: &mut QueryScratch,
        keep: impl Fn(u32, u32) -> bool,
    ) {
        let Some(slice) = self.slices.get(&t) else {
            return;
        };
        if slice.keys.is_empty() {
            return;
        }
        let Some((lo_x, lo_y, hi_x, hi_y)) = self.grid.cell_range_in_rect(probe) else {
            return;
        };
        // Clip against the occupied cell bounds (candidate pruning).
        let lo_x = lo_x.max(slice.min_cx);
        let lo_y = lo_y.max(slice.min_cy);
        let hi_x = hi_x.min(slice.max_cx);
        let hi_y = hi_y.min(slice.max_cy);
        if lo_x > hi_x || lo_y > hi_y {
            return;
        }
        ppq_sindex::posting::walk_cells_in_range(
            &self.grid,
            &slice.keys,
            (lo_x, lo_y, hi_x, hi_y),
            |i, cx, cy| {
                if keep(cx, cy) {
                    scratch.ids.clear();
                    slice.lists[i].decompress_into(&mut scratch.bytes, &mut scratch.ids);
                    scratch.set.insert_all(&scratch.ids);
                }
            },
        );
    }

    pub fn size_bytes(&self) -> usize {
        let header = 4 * 8 + 4 * 8 + 8;
        header
            + self
                .slices
                .values()
                .flat_map(|s| s.lists.iter())
                .map(|l| l.size_bytes() + 8)
                .sum::<usize>()
    }
}

/// A coarse uniform grid over the PI's region rectangles: each cell lists
/// the regions (ascending index) whose bbox intersects it, so point
/// location and rectangle queries probe a handful of candidates instead
/// of scanning every region.
#[derive(Clone, Debug)]
struct RegionLocator {
    grid: GridSpec,
    /// Per flat locator cell: ascending region indices intersecting it.
    cells: Vec<Vec<u32>>,
}

impl RegionLocator {
    /// Build over the current region set; `None` when there are no
    /// regions (every lookup then trivially misses).
    fn build(regions: &[Region]) -> Option<RegionLocator> {
        let mut union = BBox::EMPTY;
        for r in regions {
            union = union.union(&r.bbox);
        }
        if union.is_empty() || union.area() <= 0.0 {
            return None;
        }
        // Aim for ~4 locator cells per region, clamped so the cell table
        // stays small no matter how the extents are shaped.
        let target = (4 * regions.len()).clamp(64, 1 << 14) as f64;
        let mut cell = (union.area() / target).sqrt();
        loop {
            let cols = (union.width() / cell).ceil().max(1.0);
            let rows = (union.height() / cell).ceil().max(1.0);
            if cols * rows <= 4.0 * target {
                break;
            }
            cell *= 2.0;
        }
        if !(cell.is_finite() && cell > 0.0) {
            return None;
        }
        let grid = GridSpec::covering(&union, cell);
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); grid.len()];
        for (ri, r) in regions.iter().enumerate() {
            if let Some((lo_x, lo_y, hi_x, hi_y)) = grid.cell_range_in_rect(&r.bbox) {
                for cy in lo_y..=hi_y {
                    for cx in lo_x..=hi_x {
                        // Regions are visited in ascending index order, so
                        // each cell list is born sorted.
                        cells[grid.flat(cx, cy)].push(ri as u32);
                    }
                }
            }
        }
        Some(RegionLocator { grid, cells })
    }

    /// Candidate regions for a point (ascending; a superset filter).
    #[inline]
    fn candidates_at(&self, p: &Point) -> &[u32] {
        match self.grid.locate(p) {
            Some((cx, cy)) => &self.cells[self.grid.flat(cx, cy)],
            None => &[],
        }
    }
}

/// A partition index: disjoint regions, each with a grid (Algorithm 3).
#[derive(Clone, Debug)]
pub struct Pi {
    regions: Vec<Region>,
    cfg: PiConfig,
    /// Timestep the PI was (re)built at (`t_s`).
    built_at: u32,
    locator: Option<RegionLocator>,
}

impl Pi {
    /// Algorithm 3: partition the points at timestep `t` with bound
    /// `ε_s`, cover each partition with its MBR, remove overlaps, and grid
    /// every resulting rectangle.
    pub fn build(t: u32, points: &[(u32, Point)], cfg: &PiConfig) -> Pi {
        let mut pi = Pi {
            regions: Vec::new(),
            cfg: cfg.clone(),
            built_at: t,
            locator: None,
        };
        if !points.is_empty() {
            pi.add_regions_for(t, points);
        }
        pi
    }

    /// Create regions covering `points` that avoid every existing region,
    /// then index the points. Shared by the initial build and "Insertion".
    fn add_regions_for(&mut self, t: u32, points: &[(u32, Point)]) {
        let positions: Vec<Point> = points.iter().map(|(_, p)| *p).collect();
        let res = bounded_kmeans(&positions, self.cfg.eps_s, &self.cfg.kmeans);
        // Group member points per partition, take MBRs.
        let mut mbrs: Vec<BBox> = vec![BBox::EMPTY; res.centroids.len()];
        for (i, &a) in res.assign.iter().enumerate() {
            mbrs[a as usize].expand(&positions[i]);
        }
        let mut existing: Vec<BBox> = self.regions.iter().map(|r| r.bbox).collect();
        let mut new_regions: Vec<Region> = Vec::new();
        for mbr in mbrs.into_iter().filter(|m| !m.is_empty()) {
            // Give zero-extent MBRs (single point / collinear) a hair of
            // area so the grid and TRD are well-defined.
            let mbr = if mbr.area() == 0.0 {
                mbr.inflate(self.cfg.gc * 0.5)
            } else {
                mbr
            };
            for piece in remove_overlap(&mbr, &existing) {
                if piece.area() <= 0.0 {
                    continue;
                }
                existing.push(piece);
                new_regions.push(Region::new(piece, self.cfg.gc));
            }
        }
        // Route the points into the new regions (points already covered by
        // pre-existing regions are the caller's responsibility).
        let start = self.regions.len();
        self.regions.extend(new_regions);
        let mut routed: HashMap<usize, Vec<(u32, Point)>> = HashMap::new();
        for &(id, p) in points {
            if let Some(ri) = self.locate_region_from(start, &p) {
                routed.entry(ri).or_default().push((id, p));
            }
        }
        for (ri, pts) in routed {
            self.regions[ri].insert_slice(t, &pts);
            let count = pts.len();
            let d = self.regions[ri].density_of(count);
            // First population defines the reference density.
            if self.regions[ri].built_density == 0.0 {
                self.regions[ri].built_density = d;
            }
        }
        // Drop regions that ended up with no points (overlap-removal
        // slivers not containing any member).
        self.regions
            .retain(|r| r.points_indexed > 0 || r.built_density > 0.0);
        // Region set changed: rebuild the locator grid.
        self.locator = RegionLocator::build(&self.regions);
    }

    fn locate_region_from(&self, start: usize, p: &Point) -> Option<usize> {
        self.regions
            .iter()
            .enumerate()
            .skip(start)
            .find(|(_, r)| r.bbox.contains(p))
            .map(|(i, _)| i)
    }

    /// Index of the region containing `p`, if covered.
    ///
    /// Accelerated by the locator grid; the result (the lowest-index
    /// containing region) is identical to a linear scan.
    pub fn locate_region(&self, p: &Point) -> Option<usize> {
        match &self.locator {
            Some(loc) => loc
                .candidates_at(p)
                .iter()
                .find(|&&ri| self.regions[ri as usize].bbox.contains(p))
                .map(|&ri| ri as usize),
            None => self.regions.iter().position(|r| r.bbox.contains(p)),
        }
    }

    #[inline]
    pub fn covers(&self, p: &Point) -> bool {
        self.locate_region(p).is_some()
    }

    #[inline]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    #[inline]
    pub fn built_at(&self) -> u32 {
        self.built_at
    }

    /// Split a timestep's points into (covered, uncovered) w.r.t. the
    /// current regions (Algorithm 4 line 5).
    pub fn split_coverage(&self, points: &[(u32, Point)]) -> CoverageSplit {
        let mut covered = Vec::with_capacity(points.len());
        let mut uncovered = Vec::new();
        for &(id, p) in points {
            if self.covers(&p) {
                covered.push((id, p));
            } else {
                uncovered.push((id, p));
            }
        }
        (covered, uncovered)
    }

    /// Insert a timestep's covered points into the existing regions.
    pub fn insert_covered(&mut self, t: u32, covered: &[(u32, Point)]) {
        let mut routed: HashMap<usize, Vec<(u32, Point)>> = HashMap::new();
        for &(id, p) in covered {
            if let Some(ri) = self.locate_region(&p) {
                routed.entry(ri).or_default().push((id, p));
            }
        }
        for (ri, pts) in routed {
            self.regions[ri].insert_slice(t, &pts);
        }
    }

    /// "Insertion" (Algorithm 4 line 11): build regions for the uncovered
    /// points and append them to this PI.
    pub fn append_insertion(&mut self, t: u32, uncovered: &[(u32, Point)]) {
        if !uncovered.is_empty() {
            self.add_regions_for(t, uncovered);
        }
    }

    /// ADR of the current regions against a new point population
    /// (Eqs. 12–14): the fraction of regions whose TRD dropped by more
    /// than `ε_c` relative to their build-time TRD.
    pub fn adr(&self, points_now: &[(u32, Point)], eps_c: f64) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        let mut counts = vec![0usize; self.regions.len()];
        for (_, p) in points_now {
            if let Some(ri) = self.locate_region(p) {
                counts[ri] += 1;
            }
        }
        let mut dropped = 0usize;
        for (r, &c) in self.regions.iter().zip(&counts) {
            let d_old = r.built_density;
            if d_old <= 0.0 {
                continue;
            }
            let d_new = r.density_of(c);
            let h1 = (d_new - d_old) / d_old; // Eq. 13
            if h1 < 0.0 && h1.abs() > eps_c {
                dropped += 1; // Eq. 14
            }
        }
        dropped as f64 / self.regions.len() as f64 // Eq. 12
    }

    /// STRQ primitive: IDs in the `g_c` cell containing `p` at time `t`.
    pub fn query(&self, t: u32, p: &Point) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(t, p, &mut QueryScratch::new(), &mut out);
        out
    }

    /// [`Pi::query`] appending into `out` through a reusable scratch.
    pub fn query_into(&self, t: u32, p: &Point, scratch: &mut QueryScratch, out: &mut Vec<u32>) {
        if let Some(ri) = self.locate_region(p) {
            self.regions[ri].query_cell_into(t, p, scratch, out);
        }
    }

    /// Stage the ascending indices of regions whose bbox intersects
    /// `probe` into `scratch.aux` (using the locator when available).
    fn candidate_regions(&self, probe: &BBox, scratch: &mut QueryScratch) {
        scratch.aux.clear();
        match &self.locator {
            Some(loc) => {
                let Some((lo_x, lo_y, hi_x, hi_y)) = loc.grid.cell_range_in_rect(probe) else {
                    return;
                };
                if lo_x == hi_x && lo_y == hi_y {
                    // Fast path for the common one-locator-cell probe: the
                    // cell's candidate list is already sorted and unique.
                    scratch
                        .aux
                        .extend_from_slice(&loc.cells[loc.grid.flat(lo_x, lo_y)]);
                } else {
                    debug_assert!(scratch.set.is_empty());
                    for cy in lo_y..=hi_y {
                        for cx in lo_x..=hi_x {
                            for &ri in &loc.cells[loc.grid.flat(cx, cy)] {
                                scratch.set.insert(ri);
                            }
                        }
                    }
                    scratch.set.drain_sorted_into(&mut scratch.aux);
                }
                scratch
                    .aux
                    .retain(|&ri| self.regions[ri as usize].bbox.intersects(probe));
            }
            None => {
                for (ri, region) in self.regions.iter().enumerate() {
                    if region.bbox.intersects(probe) {
                        scratch.aux.push(ri as u32);
                    }
                }
            }
        }
    }

    /// IDs in every cell intersecting `rect` at time `t` — the primitive
    /// behind cell-bbox STRQ and local search over an inflated cell.
    pub fn query_rect(&self, t: u32, rect: &BBox) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_rect_into(t, rect, &mut QueryScratch::new(), &mut out);
        out
    }

    /// [`Pi::query_rect`] appending the sorted, deduplicated result into
    /// `out` through a reusable scratch — allocation-free once warm.
    pub fn query_rect_into(
        &self,
        t: u32,
        rect: &BBox,
        scratch: &mut QueryScratch,
        out: &mut Vec<u32>,
    ) {
        self.candidate_regions(rect, scratch);
        let aux = std::mem::take(&mut scratch.aux);
        for &ri in &aux {
            self.regions[ri as usize].query_rect_into_set(t, rect, scratch);
        }
        scratch.aux = aux;
        scratch.set.drain_sorted_into(out);
    }

    /// Local-search primitive: union of IDs in all cells within radius `r`
    /// of `p` at time `t`, across every region the disc touches.
    pub fn query_disc(&self, t: u32, p: &Point, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_disc_into(t, p, r, &mut QueryScratch::new(), &mut out);
        out
    }

    /// [`Pi::query_disc`] appending the sorted, deduplicated result into
    /// `out` through a reusable scratch.
    pub fn query_disc_into(
        &self,
        t: u32,
        p: &Point,
        r: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<u32>,
    ) {
        let probe = BBox::from_extents(p.x - r, p.y - r, p.x + r, p.y + r);
        self.candidate_regions(&probe, scratch);
        let aux = std::mem::take(&mut scratch.aux);
        for &ri in &aux {
            self.regions[ri as usize].query_disc_into_set(t, p, r, scratch);
        }
        scratch.aux = aux;
        scratch.set.drain_sorted_into(out);
    }

    pub fn size_bytes(&self) -> usize {
        self.regions.iter().map(Region::size_bytes).sum::<usize>() + 16
    }

    pub fn points_indexed(&self) -> usize {
        self.regions.iter().map(Region::points_indexed).sum()
    }

    /// Locate the (region index, flat grid cell) of a point, if covered.
    /// Used by the disk layout to address blocks without touching data.
    pub fn locate_cell(&self, p: &Point) -> Option<(u32, u32)> {
        let ri = self.locate_region(p)?;
        let grid = &self.regions[ri].grid;
        let (cx, cy) = grid.locate_clamped(p);
        Some((ri as u32, grid.flat(cx, cy) as u32))
    }

    /// Export every (region, timestep, cell, ids) block, region-major then
    /// time-major — the on-disk layout of the period ("the trajectory
    /// points within a time period can be written into several pages",
    /// §5.1).
    pub fn export_blocks(&self) -> Vec<(u32, u32, u32, Vec<u32>)> {
        let mut out = Vec::new();
        for (ri, region) in self.regions.iter().enumerate() {
            let mut keys: Vec<(u32, u32, &CompressedIdList)> = region
                .slices
                .iter()
                .flat_map(|(&t, slice)| {
                    slice
                        .keys
                        .iter()
                        .zip(&slice.lists)
                        .map(move |(&cell, list)| (cell, t, list))
                })
                .collect();
            // (cell, t) sorted cell-major keeps a cell's history adjacent.
            keys.sort_unstable_by_key(|&(cell, t, _)| (cell, t));
            for (cell, t, list) in keys {
                out.push((ri as u32, t, cell, list.decompress()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(center: Point, n: usize, spread: f64) -> Vec<(u32, Point)> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963; // golden-angle spiral
                let r = spread * (i as f64 / n as f64).sqrt();
                (
                    i as u32,
                    Point::new(center.x + r * a.cos(), center.y + r * a.sin()),
                )
            })
            .collect()
    }

    fn cfg() -> PiConfig {
        PiConfig {
            eps_s: 2.0,
            gc: 0.5,
            kmeans: KMeansConfig::default(),
        }
    }

    #[test]
    fn build_produces_disjoint_regions() {
        let mut pts = cluster(Point::new(0.0, 0.0), 100, 1.5);
        pts.extend(
            cluster(Point::new(20.0, 0.0), 100, 1.5)
                .into_iter()
                .map(|(i, p)| (i + 100, p)),
        );
        let pi = Pi::build(0, &pts, &cfg());
        assert!(pi.regions().len() >= 2);
        for (i, a) in pi.regions().iter().enumerate() {
            for b in pi.regions().iter().skip(i + 1) {
                if let Some(inter) = a.bbox().intersection(b.bbox()) {
                    assert!(inter.area() < 1e-9, "regions overlap materially");
                }
            }
        }
        assert_eq!(pi.points_indexed(), 200);
    }

    #[test]
    fn query_finds_cohabitants() {
        let pts = vec![
            (1u32, Point::new(0.1, 0.1)),
            (2, Point::new(0.2, 0.2)),
            (3, Point::new(5.0, 5.0)),
        ];
        let pi = Pi::build(7, &pts, &cfg());
        let hits = pi.query(7, &Point::new(0.15, 0.15));
        assert!(hits.contains(&1) && hits.contains(&2), "hits {hits:?}");
        assert!(!hits.contains(&3));
        // Wrong timestep: nothing.
        assert!(pi.query(8, &Point::new(0.15, 0.15)).is_empty());
    }

    #[test]
    fn disc_query_spans_regions() {
        let mut pts = cluster(Point::new(0.0, 0.0), 50, 1.0);
        pts.extend(
            cluster(Point::new(4.0, 0.0), 50, 1.0)
                .into_iter()
                .map(|(i, p)| (i + 50, p)),
        );
        let pi = Pi::build(0, &pts, &cfg());
        let all = pi.query_disc(0, &Point::new(2.0, 0.0), 5.0);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn coverage_split() {
        let pts = cluster(Point::new(0.0, 0.0), 60, 1.0);
        let pi = Pi::build(0, &pts, &cfg());
        let new_pts = vec![
            (900u32, Point::new(0.0, 0.0)),
            (901, Point::new(100.0, 100.0)),
        ];
        let (covered, uncovered) = pi.split_coverage(&new_pts);
        assert_eq!(covered.len(), 1);
        assert_eq!(uncovered.len(), 1);
        assert_eq!(uncovered[0].0, 901);
    }

    #[test]
    fn adr_zero_when_population_stable() {
        let pts = cluster(Point::new(0.0, 0.0), 80, 1.0);
        let pi = Pi::build(0, &pts, &cfg());
        assert_eq!(pi.adr(&pts, 0.5), 0.0);
    }

    #[test]
    fn adr_high_when_population_leaves() {
        let pts = cluster(Point::new(0.0, 0.0), 80, 1.0);
        let pi = Pi::build(0, &pts, &cfg());
        // Everyone moved far away.
        let moved: Vec<(u32, Point)> = pts
            .iter()
            .map(|(i, p)| (*i, Point::new(p.x + 50.0, p.y)))
            .collect();
        let adr = pi.adr(&moved, 0.5);
        assert!(adr > 0.9, "adr {adr}");
    }

    #[test]
    fn insertion_extends_coverage() {
        let pts = cluster(Point::new(0.0, 0.0), 60, 1.0);
        let mut pi = Pi::build(0, &pts, &cfg());
        let far = cluster(Point::new(30.0, 30.0), 20, 1.0);
        assert!(!pi.covers(&Point::new(30.0, 30.0)));
        pi.append_insertion(1, &far);
        assert!(pi.covers(&Point::new(30.0, 30.0)));
        let hits = pi.query_disc(1, &Point::new(30.0, 30.0), 2.0);
        assert!(!hits.is_empty());
    }

    #[test]
    fn insert_covered_accumulates_timesteps() {
        let pts = cluster(Point::new(0.0, 0.0), 40, 1.0);
        let mut pi = Pi::build(0, &pts, &cfg());
        let later: Vec<(u32, Point)> = pts.iter().map(|(i, p)| (*i + 500, *p)).collect();
        pi.insert_covered(1, &later);
        let t0 = pi.query_disc(0, &Point::new(0.0, 0.0), 2.0);
        let t1 = pi.query_disc(1, &Point::new(0.0, 0.0), 2.0);
        assert_eq!(t0.len(), 40);
        assert_eq!(t1.len(), 40);
        assert!(t1.iter().all(|&id| id >= 500));
    }

    #[test]
    fn empty_build() {
        let pi = Pi::build(0, &[], &cfg());
        assert!(pi.regions().is_empty());
        assert!(pi.query(0, &Point::ORIGIN).is_empty());
        assert_eq!(pi.adr(&[], 0.5), 0.0);
    }

    /// The seed's query algorithm, reconstructed from `export_blocks`:
    /// per-cell hash probes over every region, concatenate, sort, dedup.
    struct SeedIndex {
        /// (region, cell, t) → ids.
        cells: std::collections::HashMap<(u32, u32, u32), Vec<u32>>,
        regions: Vec<(BBox, GridSpec)>,
    }

    impl SeedIndex {
        fn of(pi: &Pi) -> SeedIndex {
            SeedIndex {
                cells: pi
                    .export_blocks()
                    .into_iter()
                    .map(|(ri, t, cell, ids)| ((ri, cell, t), ids))
                    .collect(),
                regions: pi
                    .regions()
                    .iter()
                    .map(|r| (*r.bbox(), r.grid().clone()))
                    .collect(),
            }
        }

        fn query_rect(&self, t: u32, rect: &BBox) -> Vec<u32> {
            let mut out = Vec::new();
            for (ri, (bbox, grid)) in self.regions.iter().enumerate() {
                if !bbox.intersects(rect) {
                    continue;
                }
                for (cx, cy) in grid.cells_in_rect(rect) {
                    if let Some(ids) = self.cells.get(&(ri as u32, grid.flat(cx, cy) as u32, t)) {
                        out.extend(ids);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        }

        fn query_disc(&self, t: u32, p: &Point, r: f64) -> Vec<u32> {
            let probe = BBox::from_extents(p.x - r, p.y - r, p.x + r, p.y + r);
            let mut out = Vec::new();
            for (ri, (bbox, grid)) in self.regions.iter().enumerate() {
                if !bbox.intersects(&probe) {
                    continue;
                }
                for (cx, cy) in grid.cells_in_disc(p, r) {
                    if let Some(ids) = self.cells.get(&(ri as u32, grid.flat(cx, cy) as u32, t)) {
                        out.extend(ids);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        }
    }

    #[test]
    fn optimized_queries_match_seed_reference() {
        // Multi-region, multi-timestep PI with insertions.
        let mut pts = cluster(Point::new(0.0, 0.0), 120, 1.5);
        pts.extend(
            cluster(Point::new(15.0, 3.0), 120, 1.5)
                .into_iter()
                .map(|(i, p)| (i + 200, p)),
        );
        let mut pi = Pi::build(0, &pts, &cfg());
        let later: Vec<(u32, Point)> = pts.iter().map(|&(i, p)| (i + 400, p)).collect();
        pi.insert_covered(1, &later);
        pi.append_insertion(1, &cluster(Point::new(-20.0, -20.0), 40, 1.0));
        let seed = SeedIndex::of(&pi);

        let mut scratch = QueryScratch::new();
        for t in 0..3u32 {
            for i in 0..40 {
                let p = Point::new((i as f64 * 1.3) - 22.0, (i as f64 * 0.9) - 21.0);
                let r = 0.3 + (i % 7) as f64;
                let rect = BBox::from_extents(p.x - r, p.y - r, p.x + r * 1.5, p.y + r * 0.5);

                assert_eq!(pi.query_rect(t, &rect), seed.query_rect(t, &rect));
                assert_eq!(pi.query_disc(t, &p, r), seed.query_disc(t, &p, r));

                // The scratch-based form must agree with the fresh form.
                let mut out = Vec::new();
                pi.query_rect_into(t, &rect, &mut scratch, &mut out);
                assert_eq!(out, pi.query_rect(t, &rect));
            }
        }
    }

    #[test]
    fn locate_region_matches_linear_scan() {
        let mut pts = cluster(Point::new(0.0, 0.0), 100, 2.0);
        pts.extend(
            cluster(Point::new(9.0, -4.0), 80, 2.5)
                .into_iter()
                .map(|(i, p)| (i + 100, p)),
        );
        let pi = Pi::build(0, &pts, &cfg());
        assert!(pi.regions().len() >= 2);
        for i in 0..500 {
            let p = Point::new((i % 31) as f64 * 0.5 - 4.0, (i % 17) as f64 * 0.6 - 7.0);
            let linear = pi.regions().iter().position(|r| r.bbox().contains(&p));
            assert_eq!(pi.locate_region(&p), linear, "point {p:?}");
        }
    }
}
