//! Property tests for the partition index: whatever the point cloud,
//! indexed points must be retrievable from their own position, regions
//! must stay disjoint, and the ADR must be a valid average.

use ppq_geo::Point;
use ppq_quantize::KMeansConfig;
use ppq_tpi::{Pi, PiConfig, Tpi, TpiConfig};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<(u32, Point)>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..120).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y))| (i as u32, Point::new(x, y)))
            .collect()
    })
}

fn cfg() -> PiConfig {
    PiConfig {
        eps_s: 20.0,
        gc: 2.0,
        kmeans: KMeansConfig::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every indexed point is found when querying its own cell.
    #[test]
    fn self_retrieval(points in arb_points()) {
        let pi = Pi::build(3, &points, &cfg());
        for (id, p) in &points {
            let hits = pi.query(3, p);
            prop_assert!(hits.contains(id), "id {} lost at {:?}", id, p);
        }
    }

    /// Regions are pairwise disjoint (overlap removal worked).
    #[test]
    fn regions_disjoint(points in arb_points()) {
        let pi = Pi::build(0, &points, &cfg());
        let regions = pi.regions();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                if let Some(inter) = a.bbox().intersection(b.bbox()) {
                    prop_assert!(inter.area() < 1e-9,
                        "regions overlap: {:?} ∩ {:?}", a.bbox(), b.bbox());
                }
            }
        }
    }

    /// ADR is in [0, 1] and zero against the building population.
    #[test]
    fn adr_bounds(points in arb_points(), eps_c in 0.05f64..0.95) {
        let pi = Pi::build(0, &points, &cfg());
        prop_assert_eq!(pi.adr(&points, eps_c), 0.0);
        // Against an emptied space, ADR is still a valid average.
        let adr = pi.adr(&[], eps_c);
        prop_assert!((0.0..=1.0).contains(&adr));
    }

    /// The TPI finds every point of every timestep, whatever the stream.
    #[test]
    fn tpi_total_recall(slices in prop::collection::vec(arb_points(), 1..6)) {
        let stream: Vec<(u32, Vec<(u32, Point)>)> =
            slices.into_iter().enumerate().map(|(t, pts)| (t as u32, pts)).collect();
        let check = stream.clone();
        let tpi = Tpi::build_from_slices(
            stream.into_iter(),
            &TpiConfig { pi: cfg(), eps_c: 0.5, eps_d: 0.5 },
        );
        for (t, pts) in &check {
            for (id, p) in pts {
                let hits = tpi.query(*t, p);
                prop_assert!(hits.contains(id), "id {} lost at t {} {:?}", id, t, p);
            }
        }
    }
}
