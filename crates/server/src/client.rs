//! Client side: a blocking connection plus a [`QueryTarget`] adapter so
//! the open-loop load harness drives a remote server unchanged.

use crate::proto::{self, Request, Response, StatsBody, TpqMatch, WireError};
use ppq_core::query::{QueryTarget, StrqOutcome};
use ppq_geo::Point;
use ppq_traj::TrajId;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// Why a remote call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or frame-decode failure; the connection is dead.
    Wire(WireError),
    /// The server shed this connection under overload; dial again later.
    Busy,
    /// Append rejected as out of order; resume from `expected`.
    OutOfOrder { expected: u32, got: u32 },
    /// The server reported a failure executing the request.
    Server(String),
    /// The server answered with a response type the request cannot
    /// produce — protocol confusion, treat the connection as dead.
    UnexpectedResponse,
    /// The server closed the connection at a frame boundary (shutdown).
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Busy => write!(f, "server busy: connection shed"),
            ClientError::OutOfOrder { expected, got } => {
                write!(f, "append out of order: expected t={expected}, got t={got}")
            }
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::UnexpectedResponse => write!(f, "response type mismatches request"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Wire(WireError::Io(e))
    }
}

/// One blocking protocol connection (request → response, in order).
pub struct RemoteConn {
    stream: TcpStream,
}

impl RemoteConn {
    /// Dial the server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<RemoteConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RemoteConn { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        proto::write_frame(&mut self.stream, &req.encode())?;
        let payload = proto::read_frame(&mut self.stream)?.ok_or(ClientError::Closed)?;
        let resp = Response::decode(&payload).map_err(WireError::Protocol)?;
        match resp {
            Response::Busy => Err(ClientError::Busy),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Ok(other),
        }
    }

    /// Remote STRQ: the snapshot version it was answered at, plus the
    /// full [`StrqOutcome`] (bit-comparable to an in-process answer at
    /// the same version).
    pub fn strq(&mut self, t: u32, point: &Point) -> Result<(u32, StrqOutcome), ClientError> {
        match self.call(&Request::Strq { t, point: *point })? {
            Response::Strq { version, outcome } => Ok((version, outcome)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Remote TPQ over `horizon` timesteps.
    pub fn tpq(
        &mut self,
        t: u32,
        point: &Point,
        horizon: u32,
    ) -> Result<(u32, Vec<TpqMatch>), ClientError> {
        match self.call(&Request::Tpq {
            t,
            point: *point,
            horizon,
        })? {
            Response::Tpq { version, matches } => Ok((version, matches)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Ingest one slice; returns the timestep the stream expects next.
    pub fn append(&mut self, t: u32, points: &[(TrajId, Point)]) -> Result<u32, ClientError> {
        match self.call(&Request::Append {
            t,
            points: points.to_vec(),
        })? {
            Response::Appended { next_t } => Ok(next_t),
            Response::OutOfOrder { expected, got } => {
                Err(ClientError::OutOfOrder { expected, got })
            }
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Service health/progress report.
    pub fn stats(&mut self) -> Result<StatsBody, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Force a snapshot publish; returns the current version.
    pub fn publish(&mut self) -> Result<u32, ClientError> {
        match self.call(&Request::Publish)? {
            Response::Published { version } => Ok(version),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Full metrics-registry snapshot of the server process.
    pub fn metrics(&mut self) -> Result<ppq_obs::MetricsSnapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}

/// The remote server as a [`QueryTarget`]: hand this to
/// `ppq_load::run_open_loop` and the open-loop harness measures the
/// served path with the same schedules, histograms, and
/// coordinated-omission convention as the in-process targets.
pub struct RemoteClient {
    addr: SocketAddr,
}

impl RemoteClient {
    /// Target a server. Resolution happens once, here; worker threads
    /// dial lazily on first use (`Ctx: Default` means the harness cannot
    /// pre-dial for us).
    pub fn new(addr: impl ToSocketAddrs) -> io::Result<RemoteClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Ok(RemoteClient { addr })
    }

    /// The resolved server address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn with_conn<T>(
        &self,
        ctx: &mut RemoteCtx,
        f: impl FnOnce(&mut RemoteConn) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        if ctx.conn.is_none() {
            ctx.conn = Some(RemoteConn::connect(self.addr)?);
        }
        let conn = ctx.conn.as_mut().expect("connection just established");
        let out = f(conn);
        if out.is_err() {
            // Any failure poisons request/response pairing on this
            // connection; the next op re-dials.
            ctx.conn = None;
        }
        out
    }
}

/// Per-worker connection state: one lazily-dialed [`RemoteConn`].
#[derive(Default)]
pub struct RemoteCtx {
    conn: Option<RemoteConn>,
}

impl QueryTarget for RemoteClient {
    type Ctx = RemoteCtx;

    /// Remote STRQ under load. `Busy` shed counts as zero answers (the
    /// op completes, the server refused it — the latency histogram
    /// keeps the sample); any other failure panics, because an
    /// open-loop run over a dead transport measures nothing.
    fn strq(&self, t: u32, p: &Point, ctx: &mut Self::Ctx) -> usize {
        match self.with_conn(ctx, |c| c.strq(t, p)) {
            Ok((_version, outcome)) => outcome.exact.len(),
            Err(ClientError::Busy) => 0,
            Err(e) => panic!("remote STRQ failed under load: {e}"),
        }
    }

    fn tpq(&self, t: u32, p: &Point, horizon: u32, ctx: &mut Self::Ctx) -> usize {
        match self.with_conn(ctx, |c| c.tpq(t, p, horizon)) {
            Ok((_version, matches)) => matches.len(),
            Err(ClientError::Busy) => 0,
            Err(e) => panic!("remote TPQ failed under load: {e}"),
        }
    }
}
