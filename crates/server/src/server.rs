//! Threaded TCP transport serving a [`LiveService`].
//!
//! ## Thread model
//!
//! ```text
//!                    ┌────────────────────────────┐
//!   clients ──TCP──▶ │ accept thread (nonblocking)│
//!                    └──────────┬─────────────────┘
//!                               │ bounded sync_channel(queue_depth)
//!                  full? ──▶ Busy frame, connection dropped
//!                               │
//!            ┌──────────────────┼──────────────────┐
//!            ▼                  ▼                  ▼
//!      handler thread 0   handler thread 1   handler thread N-1
//!      (own workspace)    (own workspace)    (own workspace)
//!                               │
//!                               ▼ queries / appends
//!                    ┌────────────────────────────┐
//!                    │ Arc<LiveService>           │◀── maintenance
//!                    └────────────────────────────┘    worker thread
//! ```
//!
//! Each handler owns one connection at a time and one reusable
//! [`ShardedQueryWorkspace`] across all of them — the same
//! allocation-lean convention as the in-process query path. Overload is
//! shed at the *accept* edge: when the bounded hand-off queue is full
//! the new connection gets a single [`Response::Busy`] frame and is
//! closed, so admitted connections keep their latency instead of
//! everyone queueing unboundedly.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] is a drain, not an abort: stop the accept
//! loop, let every handler finish its in-flight request and close its
//! connection at the next frame boundary, then (if this server owns the
//! maintenance worker) fold all acknowledged slices into a checkpointed
//! generation chain. After `Ok(())`, recovering the live directory
//! reproduces exactly the acknowledged state — `tests/shutdown.rs`
//! proves no acked slice is lost.

use crate::proto::{self, ProtocolError, Request, Response, StatsBody, WireError};
use ppq_core::query::ShardedQueryWorkspace;
use ppq_live::{LiveError, LiveService, MaintenanceConfig, MaintenanceWorker, WorkerStats};
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Transport knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Handler threads = max concurrently served connections.
    pub handler_threads: usize,
    /// Accepted-but-unclaimed connections the hand-off queue holds
    /// before new arrivals are shed with [`Response::Busy`].
    pub queue_depth: usize,
    /// Socket read timeout — bounds how long a handler blocks on an
    /// idle connection before polling the stop flag (it does not drop
    /// the connection).
    pub poll_interval: Duration,
    /// When `Some`, the server attaches a background
    /// [`MaintenanceWorker`] to the service and owns its drain on
    /// shutdown. `None` leaves maintenance inline on the ingest path.
    pub maintenance: Option<MaintenanceConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            handler_threads: 4,
            queue_depth: 16,
            poll_interval: Duration::from_millis(100),
            maintenance: Some(MaintenanceConfig::default()),
        }
    }
}

/// Counters the transport keeps (monotonic, lock-free).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Connections handed to a handler.
    pub accepted: u64,
    /// Connections shed with a `Busy` frame.
    pub shed: u64,
    /// Requests answered (any response, including errors).
    pub requests: u64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Registry handles for the transport, resolved once. The handle-level
/// [`ServerStats`] counters above stay authoritative for the handle's
/// own API; the registry mirrors them (plus per-class detail) for the
/// wire-level `Metrics` surface.
struct ServerMetrics {
    requests: ppq_obs::Counter,
    shed: ppq_obs::Counter,
    protocol_errors: ppq_obs::Counter,
    bytes_in: ppq_obs::Counter,
    bytes_out: ppq_obs::Counter,
    connections_opened: ppq_obs::Counter,
    connections_closed: ppq_obs::Counter,
    connections_active: ppq_obs::Gauge,
    strq_requests: ppq_obs::Counter,
    tpq_requests: ppq_obs::Counter,
    append_requests: ppq_obs::Counter,
    stats_requests: ppq_obs::Counter,
    publish_requests: ppq_obs::Counter,
    metrics_requests: ppq_obs::Counter,
    strq_ns: ppq_obs::Histogram,
    tpq_ns: ppq_obs::Histogram,
    append_ns: ppq_obs::Histogram,
}

fn server_metrics() -> &'static ServerMetrics {
    static METRICS: std::sync::OnceLock<ServerMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = ppq_obs::Registry::global();
        ServerMetrics {
            requests: r.counter("ppq_server_requests"),
            shed: r.counter("ppq_server_shed"),
            protocol_errors: r.counter("ppq_server_protocol_errors"),
            bytes_in: r.counter("ppq_server_bytes_in"),
            bytes_out: r.counter("ppq_server_bytes_out"),
            connections_opened: r.counter("ppq_server_connections_opened"),
            connections_closed: r.counter("ppq_server_connections_closed"),
            connections_active: r.gauge("ppq_server_connections_active"),
            strq_requests: r.counter("ppq_server_strq_requests"),
            tpq_requests: r.counter("ppq_server_tpq_requests"),
            append_requests: r.counter("ppq_server_append_requests"),
            stats_requests: r.counter("ppq_server_stats_requests"),
            publish_requests: r.counter("ppq_server_publish_requests"),
            metrics_requests: r.counter("ppq_server_metrics_requests"),
            strq_ns: r.histogram("ppq_server_strq_ns"),
            tpq_ns: r.histogram("ppq_server_tpq_ns"),
            append_ns: r.histogram("ppq_server_append_ns"),
        }
    })
}

/// A running server. Dropping without [`ServerHandle::shutdown`] stops
/// the threads best-effort (the maintenance worker still drains via its
/// own `Drop`).
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<LiveService>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    worker: Option<MaintenanceWorker>,
}

/// Bind `addr` and serve `service` until shutdown. `addr` may carry
/// port 0 to let the OS pick; [`ServerHandle::addr`] reports the bound
/// address.
pub fn start(
    addr: impl ToSocketAddrs,
    service: Arc<LiveService>,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;

    let worker = match cfg.maintenance.clone() {
        Some(mcfg) => {
            let w = service.start_maintenance(mcfg).ok_or_else(|| {
                io::Error::new(
                    ErrorKind::AlreadyExists,
                    "a maintenance worker is already attached to this service",
                )
            })?;
            Some(w)
        }
        None => None,
    };

    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut handlers = Vec::with_capacity(cfg.handler_threads.max(1));
    for i in 0..cfg.handler_threads.max(1) {
        let service = Arc::clone(&service);
        let rx = Arc::clone(&rx);
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let poll = cfg.poll_interval;
        handlers.push(
            std::thread::Builder::new()
                .name(format!("ppq-handler-{i}"))
                .spawn(move || handler_loop(service, rx, stop, counters, poll))
                .expect("spawn handler thread"),
        );
    }

    let accept = {
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let poll = cfg.poll_interval;
        std::thread::Builder::new()
            .name("ppq-accept".into())
            .spawn(move || accept_loop(listener, tx, stop, counters, poll))
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        addr: bound,
        service,
        stop,
        counters,
        accept: Some(accept),
        handlers,
        worker,
    })
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served [`LiveService`].
    pub fn service(&self) -> &Arc<LiveService> {
        &self.service
    }

    /// Transport counters so far.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Maintenance-worker counters, when this server owns the worker.
    pub fn worker_stats(&self) -> Option<WorkerStats> {
        self.worker.as_ref().map(|w| w.stats())
    }

    /// Graceful drain: stop accepting, finish in-flight requests, close
    /// connections at their next frame boundary, then fold every
    /// acknowledged slice to a checkpoint (when this server owns the
    /// maintenance worker).
    pub fn shutdown(mut self) -> Result<(), LiveError> {
        self.stop_transport();
        match self.worker.take() {
            Some(w) => w.shutdown(),
            None => Ok(()),
        }
    }

    fn stop_transport(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.handlers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_transport();
        // `self.worker` drains via its own Drop.
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    poll: Duration,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => {
                    counters.shed.fetch_add(1, Ordering::Relaxed);
                    server_metrics().shed.inc();
                    shed(stream);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(poll.min(POLL_CAP)),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient per-connection failures (reset before accept);
            // keep listening.
            Err(_) => std::thread::sleep(poll.min(POLL_CAP)),
        }
    }
}

/// Accept-loop sleep cap so shutdown latency stays low even with a
/// generous handler poll interval.
const POLL_CAP: Duration = Duration::from_millis(25);

/// Tell an un-admitted connection we are overloaded, then close it.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = proto::write_frame(&mut stream, &Response::Busy.encode());
}

fn handler_loop(
    service: Arc<LiveService>,
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    poll: Duration,
) {
    // One workspace per handler thread, reused across connections and
    // requests — the steady state allocates only answer vectors.
    let mut ws = ShardedQueryWorkspace::default();
    loop {
        let next = {
            let rx = rx.lock().expect("handler queue lock poisoned");
            rx.recv_timeout(poll.min(POLL_CAP))
        };
        match next {
            Ok(stream) => {
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                let m = server_metrics();
                m.connections_opened.inc();
                m.connections_active.add(1);
                serve_connection(&service, stream, &stop, &counters, poll, &mut ws);
                m.connections_closed.inc();
                m.connections_active.sub(1);
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection until the peer closes, a protocol violation
/// poisons the framing, or shutdown is requested (checked between
/// frames — an in-flight request always completes and is answered).
fn serve_connection(
    service: &Arc<LiveService>,
    mut stream: TcpStream,
    stop: &AtomicBool,
    counters: &Counters,
    poll: Duration,
    ws: &mut ShardedQueryWorkspace,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    loop {
        let m = server_metrics();
        let payload = match next_frame(&mut stream, stop) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(WireError::Protocol(e)) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                m.protocol_errors.inc();
                // Best-effort diagnosis; the framing can no longer be
                // trusted, so the connection closes either way.
                let resp = Response::Error {
                    message: format!("malformed frame: {e}"),
                };
                let _ = proto::write_frame(&mut stream, &resp.encode());
                return;
            }
            Err(WireError::Io(_)) => return,
        };
        // 4-byte length prefix + payload, the full wire footprint.
        m.bytes_in.add(4 + payload.len() as u64);
        let req = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                m.protocol_errors.inc();
                let resp = Response::Error {
                    message: format!("malformed request: {e}"),
                };
                let _ = proto::write_frame(&mut stream, &resp.encode());
                return;
            }
        };
        // Counted before dispatch so a `Metrics` snapshot includes the
        // request that produced it — server totals then equal client
        // completions exactly, with nothing in flight.
        counters.requests.fetch_add(1, Ordering::Relaxed);
        m.requests.inc();
        let response = dispatch(service, req, ws);
        let encoded = response.encode();
        m.bytes_out.add(4 + encoded.len() as u64);
        if proto::write_frame(&mut stream, &encoded).is_err() {
            return;
        }
    }
}

fn dispatch(service: &Arc<LiveService>, req: Request, ws: &mut ShardedQueryWorkspace) -> Response {
    let m = server_metrics();
    match req {
        Request::Strq { t, point } => {
            m.strq_requests.inc();
            let mut sp = ppq_obs::Span::with("server_strq", &m.strq_ns);
            let (version, outcome) = service.strq(t, &point, ws);
            sp.visited(outcome.visited as u64);
            Response::Strq { version, outcome }
        }
        Request::Tpq { t, point, horizon } => {
            m.tpq_requests.inc();
            let _sp = ppq_obs::Span::with("server_tpq", &m.tpq_ns);
            let (version, matches) = service.tpq(t, &point, horizon, ws);
            Response::Tpq { version, matches }
        }
        Request::Append { t, points } => {
            m.append_requests.inc();
            let _sp = ppq_obs::Span::with("server_append", &m.append_ns);
            match service.push_slice(t, &points) {
                Ok(()) => Response::Appended { next_t: t + 1 },
                Err(LiveError::OutOfOrder { expected, got }) => {
                    Response::OutOfOrder { expected, got }
                }
                Err(e) => Response::Error {
                    message: format!("append failed: {e}"),
                },
            }
        }
        Request::Stats => {
            m.stats_requests.inc();
            let s = service.status();
            Response::Stats(StatsBody {
                next_t: s.next_t,
                published_version: s.published_version,
                wal_pending: s.wal_pending as u64,
                maintenance_failures: s.maintenance_failures,
                inline_maintenance: s.inline_maintenance,
                worker_attached: s.worker_attached,
                last_maintenance_error: s.last_maintenance_error,
                wal_pending_bytes: s.wal_pending_bytes,
                chain_generations: s.chain_generations,
                last_fold_unix_ms: s.last_fold_unix_ms,
                last_compaction_unix_ms: s.last_compaction_unix_ms,
                pool_resident_frames: s.pool_resident_frames,
                pool_pinned_frames: s.pool_pinned_frames,
            })
        }
        Request::Publish => {
            m.publish_requests.inc();
            Response::Published {
                version: service.publish(),
            }
        }
        Request::Metrics => {
            m.metrics_requests.inc();
            Response::Metrics(ppq_obs::snapshot())
        }
    }
}

/// [`proto::read_frame`] with stop-flag polling: read timeouts at a
/// frame boundary check `stop` (and return `None` to close the
/// connection on shutdown); timeouts mid-frame keep reading, so a slow
/// client cannot desynchronize the framing.
fn next_frame(stream: &mut TcpStream, stop: &AtomicBool) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match fill_polling(stream, &mut len_buf, Some(stop))? {
        Fill::Eof | Fill::Stopped => return Ok(None),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > proto::MAX_FRAME_LEN {
        return Err(ProtocolError::Oversize(len).into());
    }
    let mut payload = vec![0u8; len];
    match fill_polling(stream, &mut payload, None)? {
        Fill::Full => Ok(Some(payload)),
        Fill::Eof | Fill::Stopped => Err(ProtocolError::Truncated.into()),
    }
}

enum Fill {
    Full,
    Eof,
    Stopped,
}

/// Fill `buf` across read timeouts. When `stop_at_start` is set, a
/// timeout before the first byte consults the flag; once any byte has
/// arrived the frame is finished regardless.
fn fill_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop_at_start: Option<&AtomicBool>,
) -> Result<Fill, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(Fill::Eof)
                } else {
                    Err(ProtocolError::Truncated.into())
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if filled == 0 {
                    if let Some(stop) = stop_at_start {
                        if stop.load(Ordering::Acquire) {
                            return Ok(Fill::Stopped);
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Full)
}
