//! Live trajectory service shell: the deployment face of the PPQ
//! repository.
//!
//! Everything below this crate is a library — `ppq_live::LiveService`
//! ingests and answers in-process. This crate is the missing network
//! layer, deliberately boring: a **versioned length-prefixed binary
//! protocol** ([`proto`]) in the same codec dialect as the on-disk
//! formats, a **threaded blocking TCP transport** ([`server`]) — no
//! async runtime, a handful of OS threads — and a **client** ([`client`])
//! whose [`client::RemoteClient`] implements
//! [`ppq_core::query::QueryTarget`], so the open-loop load harness and
//! the bench suite drive a remote server with the exact machinery they
//! use in-process.
//!
//! The serving contract is inherited, not invented: every answer is
//! computed against an immutable published snapshot and stamped with its
//! version, so a remote STRQ/TPQ is **bit-identical** to an in-process
//! query at the same version — the round-trip tests and the
//! `service_path` bench section check equality on the full answer
//! structure, not cardinalities.
//!
//! Operationally the server owns what a deployment needs and a library
//! must not hardcode: a background [`ppq_live::MaintenanceWorker`]
//! keeping fold/compaction/WAL-sync off the ingest path, overload
//! shedding at the accept edge ([`proto::Response::Busy`]), and graceful
//! shutdown that drains in-flight requests and checkpoints every
//! acknowledged slice before exit.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientError, RemoteClient, RemoteConn, RemoteCtx};
pub use proto::{ProtocolError, Request, Response, StatsBody, WireError, MAX_FRAME_LEN};
pub use server::{start, ServerConfig, ServerHandle, ServerStats};
