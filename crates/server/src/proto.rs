//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! ## Frame layout
//!
//! ```text
//! ┌──────────────┬──────────────────────────────────────────────┐
//! │ len: u32 LE  │ payload (len bytes)                          │
//! └──────────────┴──────────────────────────────────────────────┘
//!                  ┌─────────────┬───────────┬─────────────────┐
//!        payload = │ version: u8 │ tag: u8   │ body (codec)    │
//!                  └─────────────┴───────────┴─────────────────┘
//! ```
//!
//! Bodies use [`ppq_storage::codec`] — the same little-endian
//! fixed-layout convention as every on-disk structure in the repo, so a
//! frame hexdump reads like a page hexdump. `len` is capped at
//! [`MAX_FRAME_LEN`]; a peer announcing more is malformed, not a reason
//! to allocate 4 GiB.
//!
//! ## Decode contract
//!
//! Frames arrive from the network, i.e. from an untrusted peer: decoding
//! must **never panic**. Every decoder goes through the codec's checked
//! `try_*` accessors, rejects unknown versions/tags, bounds every
//! count-prefixed vector by the bytes actually remaining (an adversarial
//! count cannot force an over-allocation), and rejects trailing garbage
//! after a complete body. Anything malformed is a typed
//! [`ProtocolError`] — property-tested in `tests/proto_corruption.rs`
//! against truncations and bit-flips of valid frames, mirroring the WAL
//! corruption suite.
//!
//! STRQ responses carry the *full* [`StrqOutcome`] (all answer tiers and
//! the visited counter), so a remote caller can check bit-identity
//! against an in-process engine, not just cardinalities.

use bytes::Bytes;
use ppq_core::query::StrqOutcome;
use ppq_geo::Point;
use ppq_obs::{HistogramStats, MetricsSnapshot, SlowQuery};
use ppq_storage::codec::{Decoder, Encoder};
use ppq_traj::TrajId;
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol revision carried in every payload. Bumped on any layout
/// change; a server rejects frames from a different revision with a
/// typed error instead of misparsing them.
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on a frame payload (16 MiB). Large enough for any slice
/// or answer the service produces; small enough that a hostile length
/// prefix cannot drive allocation.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// A TPQ match: trajectory id plus its predicted `(t, point)` track.
pub type TpqMatch = (TrajId, Vec<(u32, Point)>);

/// Why a payload failed to decode. Never a panic: every variant is a
/// statement about the peer's bytes, not about our state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the structure it announced.
    Truncated,
    /// The frame's protocol revision is not [`PROTO_VERSION`].
    BadVersion(u8),
    /// The request/response tag byte is not one we define.
    UnknownTag(u8),
    /// The frame length prefix exceeds [`MAX_FRAME_LEN`].
    Oversize(usize),
    /// Bytes remained after a complete body — the peer and we disagree
    /// about the layout, so nothing after this frame can be trusted.
    TrailingBytes(usize),
    /// A field held a value outside its domain (a non-boolean flag
    /// byte, invalid UTF-8 in a message).
    BadValue(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated mid-structure"),
            ProtocolError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (ours: {PROTO_VERSION})"
                )
            }
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            ProtocolError::Oversize(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            ProtocolError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after complete message")
            }
            ProtocolError::BadValue(what) => write!(f, "field out of domain: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Transport-or-protocol failure reading/writing frames.
#[derive(Debug)]
pub enum WireError {
    Io(io::Error),
    Protocol(ProtocolError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport: {e}"),
            WireError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<ProtocolError> for WireError {
    fn from(e: ProtocolError) -> WireError {
        WireError::Protocol(e)
    }
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// STRQ at timestep `t` around `point`, against the current
    /// published snapshot.
    Strq { t: u32, point: Point },
    /// TPQ at `t` around `point` over `horizon` future timesteps.
    Tpq { t: u32, point: Point, horizon: u32 },
    /// Ingest one timestep slice (must be the stream's next `t`).
    Append {
        t: u32,
        points: Vec<(TrajId, Point)>,
    },
    /// Service health/progress report.
    Stats,
    /// Force a snapshot publish; returns the (possibly unchanged)
    /// version.
    Publish,
    /// Full metrics-registry snapshot (counters, gauges, histogram
    /// digests, slow-query log) — the wire-level admin surface.
    Metrics,
}

const REQ_STRQ: u8 = 1;
const REQ_TPQ: u8 = 2;
const REQ_APPEND: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_PUBLISH: u8 = 5;
const REQ_METRICS: u8 = 6;

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// STRQ answer plus the snapshot version it was computed from.
    Strq { version: u32, outcome: StrqOutcome },
    /// TPQ answer plus the snapshot version.
    Tpq {
        version: u32,
        matches: Vec<TpqMatch>,
    },
    /// Slice acknowledged; the stream now expects `next_t`.
    Appended { next_t: u32 },
    /// Health/progress report.
    Stats(StatsBody),
    /// Publish done at `version`.
    Published { version: u32 },
    /// Overload shed: the connection queue is full; retry later.
    Busy,
    /// Append rejected: slice out of order, nothing was ingested.
    OutOfOrder { expected: u32, got: u32 },
    /// Request understood but failed; human-readable cause.
    Error { message: String },
    /// Metrics-registry snapshot. Every numeric field is an integer
    /// (nanoseconds for latencies) — the wire carries no floats.
    Metrics(MetricsSnapshot),
}

const RESP_STRQ: u8 = 1;
const RESP_TPQ: u8 = 2;
const RESP_APPENDED: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_PUBLISHED: u8 = 5;
const RESP_BUSY: u8 = 6;
const RESP_OUT_OF_ORDER: u8 = 7;
const RESP_ERROR: u8 = 8;
const RESP_METRICS: u8 = 9;

/// Body of [`Response::Stats`] — the wire form of
/// [`ppq_live::ServiceStatus`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsBody {
    pub next_t: Option<u32>,
    pub published_version: u32,
    pub wal_pending: u64,
    pub maintenance_failures: u32,
    pub inline_maintenance: bool,
    pub worker_attached: bool,
    pub last_maintenance_error: Option<String>,
    pub wal_pending_bytes: u64,
    pub chain_generations: u32,
    pub last_fold_unix_ms: Option<u64>,
    pub last_compaction_unix_ms: Option<u64>,
    pub pool_resident_frames: u64,
    pub pool_pinned_frames: u64,
}

// --- Encode -----------------------------------------------------------------

fn header(e: &mut Encoder, tag: u8) {
    // The codec has no single-byte writer; a u16 carries (version, tag)
    // little-endian, so version is byte 0 and tag is byte 1 on the wire.
    e.put_u16(u16::from_le_bytes([PROTO_VERSION, tag]));
}

fn put_ids(e: &mut Encoder, ids: &[TrajId]) {
    e.put_u32(ids.len() as u32);
    for &id in ids {
        e.put_u32(id);
    }
}

fn put_opt_u32(e: &mut Encoder, v: Option<u32>) {
    match v {
        Some(v) => {
            e.put_u16(1);
            e.put_u32(v);
        }
        None => e.put_u16(0),
    }
}

fn put_opt_u64(e: &mut Encoder, v: Option<u64>) {
    match v {
        Some(v) => {
            e.put_u16(1);
            e.put_u64(v);
        }
        None => e.put_u16(0),
    }
}

fn put_bool(e: &mut Encoder, v: bool) {
    e.put_u16(v as u16);
}

impl Request {
    /// Serialize to a frame payload (header + body, no length prefix —
    /// [`write_frame`] adds that).
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        match self {
            Request::Strq { t, point } => {
                header(&mut e, REQ_STRQ);
                e.put_u32(*t);
                e.put_point(point);
            }
            Request::Tpq { t, point, horizon } => {
                header(&mut e, REQ_TPQ);
                e.put_u32(*t);
                e.put_point(point);
                e.put_u32(*horizon);
            }
            Request::Append { t, points } => {
                header(&mut e, REQ_APPEND);
                e.put_u32(*t);
                e.put_u32(points.len() as u32);
                for (id, p) in points {
                    e.put_u32(*id);
                    e.put_point(p);
                }
            }
            Request::Stats => header(&mut e, REQ_STATS),
            Request::Publish => header(&mut e, REQ_PUBLISH),
            Request::Metrics => header(&mut e, REQ_METRICS),
        }
        e.finish()
    }

    /// Parse a frame payload. Total: every malformed input is a typed
    /// error, never a panic or an unbounded allocation.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut d = Decoder::from_slice(payload);
        let tag = read_header(&mut d)?;
        let req = match tag {
            REQ_STRQ => Request::Strq {
                t: try_u32(&mut d)?,
                point: try_point(&mut d)?,
            },
            REQ_TPQ => Request::Tpq {
                t: try_u32(&mut d)?,
                point: try_point(&mut d)?,
                horizon: try_u32(&mut d)?,
            },
            REQ_APPEND => {
                let t = try_u32(&mut d)?;
                let n = bounded_count(&mut d, 4 + 16)?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = try_u32(&mut d)?;
                    let p = try_point(&mut d)?;
                    points.push((id, p));
                }
                Request::Append { t, points }
            }
            REQ_STATS => Request::Stats,
            REQ_PUBLISH => Request::Publish,
            REQ_METRICS => Request::Metrics,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        finish(&d)?;
        Ok(req)
    }
}

impl Response {
    /// Serialize to a frame payload (see [`Request::encode`]).
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        match self {
            Response::Strq { version, outcome } => {
                header(&mut e, RESP_STRQ);
                e.put_u32(*version);
                put_ids(&mut e, &outcome.truth);
                put_ids(&mut e, &outcome.approx);
                put_ids(&mut e, &outcome.candidates);
                put_ids(&mut e, &outcome.exact);
                e.put_u64(outcome.visited as u64);
            }
            Response::Tpq { version, matches } => {
                header(&mut e, RESP_TPQ);
                e.put_u32(*version);
                e.put_u32(matches.len() as u32);
                for (id, track) in matches {
                    e.put_u32(*id);
                    e.put_u32(track.len() as u32);
                    for (t, p) in track {
                        e.put_u32(*t);
                        e.put_point(p);
                    }
                }
            }
            Response::Appended { next_t } => {
                header(&mut e, RESP_APPENDED);
                e.put_u32(*next_t);
            }
            Response::Stats(s) => {
                header(&mut e, RESP_STATS);
                put_opt_u32(&mut e, s.next_t);
                e.put_u32(s.published_version);
                e.put_u64(s.wal_pending);
                e.put_u32(s.maintenance_failures);
                put_bool(&mut e, s.inline_maintenance);
                put_bool(&mut e, s.worker_attached);
                match &s.last_maintenance_error {
                    Some(msg) => {
                        e.put_u16(1);
                        e.put_bytes(msg.as_bytes());
                    }
                    None => e.put_u16(0),
                }
                e.put_u64(s.wal_pending_bytes);
                e.put_u32(s.chain_generations);
                put_opt_u64(&mut e, s.last_fold_unix_ms);
                put_opt_u64(&mut e, s.last_compaction_unix_ms);
                e.put_u64(s.pool_resident_frames);
                e.put_u64(s.pool_pinned_frames);
            }
            Response::Published { version } => {
                header(&mut e, RESP_PUBLISHED);
                e.put_u32(*version);
            }
            Response::Busy => header(&mut e, RESP_BUSY),
            Response::OutOfOrder { expected, got } => {
                header(&mut e, RESP_OUT_OF_ORDER);
                e.put_u32(*expected);
                e.put_u32(*got);
            }
            Response::Error { message } => {
                header(&mut e, RESP_ERROR);
                e.put_bytes(message.as_bytes());
            }
            Response::Metrics(m) => {
                header(&mut e, RESP_METRICS);
                e.put_u32(m.counters.len() as u32);
                for (name, v) in &m.counters {
                    e.put_bytes(name.as_bytes());
                    e.put_u64(*v);
                }
                e.put_u32(m.gauges.len() as u32);
                for (name, v) in &m.gauges {
                    e.put_bytes(name.as_bytes());
                    e.put_u64(*v);
                }
                e.put_u32(m.histograms.len() as u32);
                for (name, h) in &m.histograms {
                    e.put_bytes(name.as_bytes());
                    for v in [
                        h.count, h.sum_ns, h.min_ns, h.p50_ns, h.p90_ns, h.p99_ns, h.p999_ns,
                        h.max_ns,
                    ] {
                        e.put_u64(v);
                    }
                }
                e.put_u32(m.slow_queries.len() as u32);
                for q in &m.slow_queries {
                    e.put_bytes(q.name.as_bytes());
                    for v in [q.seq, q.latency_ns, q.reads, q.hits, q.visited] {
                        e.put_u64(v);
                    }
                }
            }
        }
        e.finish()
    }

    /// Parse a frame payload (see [`Request::decode`] for the totality
    /// contract).
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut d = Decoder::from_slice(payload);
        let tag = read_header(&mut d)?;
        let resp = match tag {
            RESP_STRQ => {
                let version = try_u32(&mut d)?;
                let truth = read_ids(&mut d)?;
                let approx = read_ids(&mut d)?;
                let candidates = read_ids(&mut d)?;
                let exact = read_ids(&mut d)?;
                let visited = try_u64(&mut d)? as usize;
                Response::Strq {
                    version,
                    outcome: StrqOutcome {
                        truth,
                        approx,
                        candidates,
                        exact,
                        visited,
                    },
                }
            }
            RESP_TPQ => {
                let version = try_u32(&mut d)?;
                // One match is at least id + empty-track length = 8 B.
                let n = bounded_count(&mut d, 8)?;
                let mut matches = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = try_u32(&mut d)?;
                    let len = bounded_count(&mut d, 4 + 16)?;
                    let mut track = Vec::with_capacity(len);
                    for _ in 0..len {
                        let t = try_u32(&mut d)?;
                        let p = try_point(&mut d)?;
                        track.push((t, p));
                    }
                    matches.push((id, track));
                }
                Response::Tpq { version, matches }
            }
            RESP_APPENDED => Response::Appended {
                next_t: try_u32(&mut d)?,
            },
            RESP_STATS => {
                let next_t = read_opt_u32(&mut d)?;
                let published_version = try_u32(&mut d)?;
                let wal_pending = try_u64(&mut d)?;
                let maintenance_failures = try_u32(&mut d)?;
                let inline_maintenance = read_bool(&mut d)?;
                let worker_attached = read_bool(&mut d)?;
                let last_maintenance_error = match try_u16(&mut d)? {
                    0 => None,
                    1 => Some(read_string(&mut d)?),
                    _ => return Err(ProtocolError::BadValue("error-presence flag")),
                };
                let wal_pending_bytes = try_u64(&mut d)?;
                let chain_generations = try_u32(&mut d)?;
                let last_fold_unix_ms = read_opt_u64(&mut d)?;
                let last_compaction_unix_ms = read_opt_u64(&mut d)?;
                let pool_resident_frames = try_u64(&mut d)?;
                let pool_pinned_frames = try_u64(&mut d)?;
                Response::Stats(StatsBody {
                    next_t,
                    published_version,
                    wal_pending,
                    maintenance_failures,
                    inline_maintenance,
                    worker_attached,
                    last_maintenance_error,
                    wal_pending_bytes,
                    chain_generations,
                    last_fold_unix_ms,
                    last_compaction_unix_ms,
                    pool_resident_frames,
                    pool_pinned_frames,
                })
            }
            RESP_PUBLISHED => Response::Published {
                version: try_u32(&mut d)?,
            },
            RESP_BUSY => Response::Busy,
            RESP_OUT_OF_ORDER => Response::OutOfOrder {
                expected: try_u32(&mut d)?,
                got: try_u32(&mut d)?,
            },
            RESP_ERROR => Response::Error {
                message: read_string(&mut d)?,
            },
            RESP_METRICS => {
                // Entry minimums: empty name = 4 B length prefix, then
                // the fixed u64 block of each entry kind.
                let n = bounded_count(&mut d, 4 + 8)?;
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = read_string(&mut d)?;
                    counters.push((name, try_u64(&mut d)?));
                }
                let n = bounded_count(&mut d, 4 + 8)?;
                let mut gauges = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = read_string(&mut d)?;
                    gauges.push((name, try_u64(&mut d)?));
                }
                let n = bounded_count(&mut d, 4 + 64)?;
                let mut histograms = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = read_string(&mut d)?;
                    histograms.push((
                        name,
                        HistogramStats {
                            count: try_u64(&mut d)?,
                            sum_ns: try_u64(&mut d)?,
                            min_ns: try_u64(&mut d)?,
                            p50_ns: try_u64(&mut d)?,
                            p90_ns: try_u64(&mut d)?,
                            p99_ns: try_u64(&mut d)?,
                            p999_ns: try_u64(&mut d)?,
                            max_ns: try_u64(&mut d)?,
                        },
                    ));
                }
                let n = bounded_count(&mut d, 4 + 40)?;
                let mut slow_queries = Vec::with_capacity(n);
                for _ in 0..n {
                    slow_queries.push(SlowQuery {
                        name: read_string(&mut d)?,
                        seq: try_u64(&mut d)?,
                        latency_ns: try_u64(&mut d)?,
                        reads: try_u64(&mut d)?,
                        hits: try_u64(&mut d)?,
                        visited: try_u64(&mut d)?,
                    });
                }
                Response::Metrics(MetricsSnapshot {
                    counters,
                    gauges,
                    histograms,
                    slow_queries,
                })
            }
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        finish(&d)?;
        Ok(resp)
    }
}

// --- Checked decode helpers -------------------------------------------------

fn read_header(d: &mut Decoder) -> Result<u8, ProtocolError> {
    let [version, tag] = try_u16(d)?.to_le_bytes();
    if version != PROTO_VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    Ok(tag)
}

fn try_u16(d: &mut Decoder) -> Result<u16, ProtocolError> {
    d.try_u16().ok_or(ProtocolError::Truncated)
}

fn try_u32(d: &mut Decoder) -> Result<u32, ProtocolError> {
    d.try_u32().ok_or(ProtocolError::Truncated)
}

fn try_u64(d: &mut Decoder) -> Result<u64, ProtocolError> {
    d.try_u64().ok_or(ProtocolError::Truncated)
}

fn try_point(d: &mut Decoder) -> Result<Point, ProtocolError> {
    d.try_point().ok_or(ProtocolError::Truncated)
}

/// Read a vector count and verify the remaining bytes could hold that
/// many items of at least `min_item_bytes` each — a hostile count is a
/// truncation report, not a `Vec::with_capacity` of 4 billion.
fn bounded_count(d: &mut Decoder, min_item_bytes: usize) -> Result<usize, ProtocolError> {
    let n = try_u32(d)? as usize;
    if n.saturating_mul(min_item_bytes) > d.remaining() {
        return Err(ProtocolError::Truncated);
    }
    Ok(n)
}

fn read_ids(d: &mut Decoder) -> Result<Vec<TrajId>, ProtocolError> {
    let n = bounded_count(d, 4)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(try_u32(d)?);
    }
    Ok(ids)
}

fn read_opt_u32(d: &mut Decoder) -> Result<Option<u32>, ProtocolError> {
    match try_u16(d)? {
        0 => Ok(None),
        1 => Ok(Some(try_u32(d)?)),
        _ => Err(ProtocolError::BadValue("option flag")),
    }
}

fn read_opt_u64(d: &mut Decoder) -> Result<Option<u64>, ProtocolError> {
    match try_u16(d)? {
        0 => Ok(None),
        1 => Ok(Some(try_u64(d)?)),
        _ => Err(ProtocolError::BadValue("option flag")),
    }
}

fn read_bool(d: &mut Decoder) -> Result<bool, ProtocolError> {
    match try_u16(d)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(ProtocolError::BadValue("boolean flag")),
    }
}

fn read_string(d: &mut Decoder) -> Result<String, ProtocolError> {
    let b = d.try_bytes().ok_or(ProtocolError::Truncated)?;
    String::from_utf8(b.to_vec()).map_err(|_| ProtocolError::BadValue("non-UTF-8 string"))
}

fn finish(d: &Decoder) -> Result<(), ProtocolError> {
    match d.remaining() {
        0 => Ok(()),
        n => Err(ProtocolError::TrailingBytes(n)),
    }
}

// --- Framing ----------------------------------------------------------------

/// Write one `len + payload` frame and flush it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on a clean EOF at a frame boundary;
/// EOF mid-frame is [`ProtocolError::Truncated`], a length prefix past
/// [`MAX_FRAME_LEN`] is [`ProtocolError::Oversize`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        FillOutcome::Eof => return Ok(None),
        FillOutcome::Partial => return Err(ProtocolError::Truncated.into()),
        FillOutcome::Full => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversize(len).into());
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        FillOutcome::Full => Ok(Some(payload)),
        FillOutcome::Eof | FillOutcome::Partial => Err(ProtocolError::Truncated.into()),
    }
}

enum FillOutcome {
    /// Buffer filled completely.
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after some bytes — a torn frame.
    Partial,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<FillOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    FillOutcome::Eof
                } else {
                    FillOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FillOutcome::Full)
}
