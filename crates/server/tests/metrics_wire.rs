//! The wire-level observability contract: a live server under load
//! answers a `Metrics` frame whose counters agree exactly with what the
//! client did — server request counts equal client completions, per
//! class — and the slow-query log captures injected outliers with their
//! attached context. This file is its own test binary (own process), so
//! the process-wide registry holds only what this test produces.

use ppq_core::{PpqConfig, Variant};
use ppq_geo::Point;
use ppq_live::{LiveConfig, LiveService, MaintenanceConfig};
use ppq_server::{RemoteConn, ServerConfig};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::TrajId;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn metrics_frame_agrees_with_client_accounting() {
    let dir = std::env::temp_dir().join(format!("ppq-server-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let data = Arc::new(porto_like(&PortoConfig {
        trajectories: 40,
        mean_len: 30,
        min_len: 20,
        start_spread: 8,
        seed: 0x0B5,
    }));
    let mut cfg = LiveConfig::new(PpqConfig::variant(Variant::PpqS, 0.1), 2);
    cfg.page_size = 4 << 10;
    cfg.group_commit = 4;
    cfg.fold_every = 8;
    cfg.compact_max_chain = 3;
    let service = Arc::new(LiveService::open(&dir, cfg, data.clone(), 4).expect("open service"));
    let server = ppq_server::start(
        "127.0.0.1:0",
        service,
        ServerConfig {
            handler_threads: 2,
            queue_depth: 8,
            poll_interval: Duration::from_millis(25),
            maintenance: Some(MaintenanceConfig {
                tick: Duration::from_millis(2),
                sync_wal: true,
                publish: true,
            }),
        },
    )
    .expect("bind server");
    let addr = server.addr();

    // Every span is an "outlier" under a zero threshold — the injected
    // worst case for the slow-query ring.
    ppq_obs::set_slow_threshold(Some(Duration::ZERO));

    let slices: Vec<(u32, Vec<(TrajId, Point)>)> = data
        .time_slices()
        .map(|s| (s.t, s.points.to_vec()))
        .collect();
    let queries: Vec<(u32, Point)> = data
        .iter_points()
        .step_by(53)
        .map(|(_, t, p)| (t, p))
        .collect();
    assert!(queries.len() >= 10);

    let mut conn = RemoteConn::connect(addr).expect("connect");
    for (t, points) in &slices {
        conn.append(*t, points).expect("in-order ingest");
    }
    let version = conn.publish().expect("publish");
    assert_eq!(version, slices.last().unwrap().0 + 1);
    for &(t, p) in &queries {
        let (_, outcome) = conn.strq(t, &p).expect("remote STRQ");
        let _ = outcome;
        let (_, matches) = conn.tpq(t, &p, 4).expect("remote TPQ");
        let _ = matches;
    }
    let status = conn.stats().expect("stats");

    ppq_obs::set_slow_threshold(None);
    let snap = conn.metrics().expect("metrics frame");

    // ---- Server counters equal client completions, per class. ----
    let strq_n = queries.len() as u64;
    assert_eq!(snap.counter("ppq_server_strq_requests"), Some(strq_n));
    assert_eq!(snap.counter("ppq_server_tpq_requests"), Some(strq_n));
    assert_eq!(
        snap.counter("ppq_server_append_requests"),
        Some(slices.len() as u64)
    );
    assert_eq!(snap.counter("ppq_server_stats_requests"), Some(1));
    assert_eq!(snap.counter("ppq_server_publish_requests"), Some(1));
    assert_eq!(snap.counter("ppq_server_metrics_requests"), Some(1));
    // Total = sum of every request this client sent (the metrics frame
    // itself included — the counter increments before the snapshot).
    let total = slices.len() as u64 + 2 * strq_n + 3;
    assert_eq!(snap.counter("ppq_server_requests"), Some(total));

    // Latency histograms saw exactly one sample per request.
    assert_eq!(snap.histogram("ppq_server_strq_ns").unwrap().count, strq_n);
    assert_eq!(snap.histogram("ppq_server_tpq_ns").unwrap().count, strq_n);
    assert_eq!(
        snap.histogram("ppq_server_append_ns").unwrap().count,
        slices.len() as u64
    );

    // ---- Transport accounting. ----
    assert_eq!(snap.counter("ppq_server_connections_opened"), Some(1));
    assert_eq!(snap.gauge("ppq_server_connections_active"), Some(1));
    assert_eq!(snap.counter("ppq_server_shed"), Some(0));
    assert_eq!(snap.counter("ppq_server_protocol_errors"), Some(0));
    assert!(snap.counter("ppq_server_bytes_in").unwrap() > 0);
    assert!(snap.counter("ppq_server_bytes_out").unwrap() > 0);

    // ---- WAL: one append per ingested slice, pending drained. ----
    assert_eq!(snap.counter("ppq_wal_appends"), Some(slices.len() as u64));
    assert_eq!(
        snap.histogram("ppq_wal_append_ns").unwrap().count,
        slices.len() as u64
    );

    // ---- Publish/version gauges mirror the Stats frame. ----
    assert_eq!(
        snap.gauge("ppq_published_version"),
        Some(u64::from(status.published_version))
    );
    assert_eq!(
        snap.gauge("ppq_chain_generations"),
        Some(u64::from(status.chain_generations))
    );

    // ---- Satellite fields of the Stats frame are live. ----
    assert!(status.chain_generations >= 1);
    assert_eq!(status.maintenance_failures, 0);
    assert_eq!(status.last_maintenance_error, None);
    if let Some(ms) = status.last_fold_unix_ms {
        // Fold stamps are epoch-ms, sane range (after 2020).
        assert!(ms > 1_577_836_800_000);
    }

    // ---- Slow-query log captured the injected outliers. ----
    let server_spans: Vec<_> = snap
        .slow_queries
        .iter()
        .filter(|q| q.name == "server_strq")
        .collect();
    assert!(
        !server_spans.is_empty(),
        "zero-threshold STRQ spans missing from the slow log"
    );
    assert!(
        server_spans.iter().all(|q| q.latency_ns > 0),
        "slow records must carry their latency"
    );

    // ---- A remote dump renders the same exposition format. ----
    let text = snap.render_text();
    assert!(text.contains("# TYPE ppq_server_requests counter"));
    assert!(text.contains("ppq_server_strq_ns{quantile=\"0.5\"}"));
    assert_eq!(text, {
        // Deterministic: rendering the same snapshot twice is identical.
        snap.render_text()
    });

    drop(conn);
    server.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
