//! Graceful-shutdown durability: every slice the server **acknowledged**
//! over the wire must survive `shutdown()` → `LiveRepo::recover`, with
//! the recovered state answering queries bit-identically to an
//! uncrashed in-memory run over the same slices. The config keeps the
//! fold cadence far away and the WAL group-commit batched, so the drain
//! itself — not a lucky mid-run fold — must do the work.

use ppq_core::query::{ShardedQueryEngine, ShardedQueryWorkspace};
use ppq_core::{PpqConfig, ShardedPpqStream, Variant};
use ppq_geo::Point;
use ppq_live::{LiveConfig, LiveRepo, LiveService, MaintenanceConfig};
use ppq_server::{RemoteConn, ServerConfig};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::TrajId;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 2;

#[test]
fn drain_preserves_every_acknowledged_slice() {
    let data = Arc::new(porto_like(&PortoConfig {
        trajectories: 40,
        mean_len: 30,
        min_len: 20,
        start_spread: 8,
        seed: 0xD1AD,
    }));
    let ppq = PpqConfig::variant(Variant::PpqS, 0.1);
    let mut cfg = LiveConfig::new(ppq.clone(), SHARDS);
    // No fold can be due during the run; syncs stay batched. Only the
    // shutdown drain moves the acknowledged slices to a checkpoint.
    cfg.fold_every = 1_000_000;
    cfg.group_commit = 64;

    let dir = std::env::temp_dir().join(format!("ppq-server-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service =
        Arc::new(LiveService::open(&dir, cfg.clone(), data.clone(), 4).expect("open service"));
    let server = ppq_server::start(
        "127.0.0.1:0",
        service,
        ServerConfig {
            handler_threads: 2,
            queue_depth: 4,
            poll_interval: Duration::from_millis(25),
            maintenance: Some(MaintenanceConfig {
                tick: Duration::from_millis(5),
                // Leave WAL flushing to group commit: the drain must
                // sync whatever is still pending.
                sync_wal: false,
                publish: true,
            }),
        },
    )
    .expect("bind server");
    let addr = server.addr();

    let slices: Vec<(u32, Vec<(TrajId, Point)>)> = data
        .time_slices()
        .map(|s| (s.t, s.points.to_vec()))
        .collect();

    let mut conn = RemoteConn::connect(addr).expect("connect");
    let mut acked = 0u32;
    for (t, points) in &slices {
        let next = conn.append(*t, points).expect("remote ingest");
        assert_eq!(next, *t + 1);
        acked = next;
    }
    drop(conn);

    // Acked ⇒ durable across a graceful shutdown.
    server.shutdown().expect("graceful drain");

    let recovered = LiveRepo::recover(&dir, cfg).expect("recover after shutdown");
    assert_eq!(
        recovered.next_t(),
        Some(acked),
        "recovery lost acknowledged slices"
    );
    assert_eq!(
        recovered.wal_pending(),
        0,
        "drain left unsynced WAL records"
    );

    // The recovered summary answers exactly like an uncrashed in-memory
    // run over the same acknowledged slices.
    let mut replay = ShardedPpqStream::new(ppq.clone(), SHARDS);
    for (t, points) in &slices {
        replay.push_slice(*t, points);
    }
    let expected = replay.snapshot();
    let got = recovered.snapshot();

    let gc = ppq.tpi.pi.gc;
    let bbox = data.bbox().expect("nonempty dataset");
    let grid = ppq_geo::GridSpec::covering(&bbox.inflate(gc), gc);
    let expected_engine = ShardedQueryEngine::with_grid(&expected, &data, grid.clone());
    let got_engine = ShardedQueryEngine::with_grid(&got, &data, grid);
    let mut ws_a = ShardedQueryWorkspace::new();
    let mut ws_b = ShardedQueryWorkspace::new();
    for (_, t, p) in data.iter_points().step_by(37) {
        assert_eq!(
            expected_engine.strq_online_with(t, &p, &mut ws_a),
            got_engine.strq_online_with(t, &p, &mut ws_b),
            "recovered STRQ diverged from uncrashed run at t={t}"
        );
        let ea = expected_engine.tpq_with(t, &p, 8, &mut ws_a);
        let eb = got_engine.tpq_with(t, &p, 8, &mut ws_b);
        assert_eq!(ea.len(), eb.len());
        for ((ia, sa), (ib, sb)) in ea.iter().zip(&eb) {
            assert_eq!(ia, ib);
            assert_eq!(sa.len(), sb.len());
            for ((ta, pa), (tb, pb)) in sa.iter().zip(sb) {
                assert_eq!(ta, tb);
                assert_eq!(pa.x.to_bits(), pb.x.to_bits());
                assert_eq!(pa.y.to_bits(), pb.y.to_bits());
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
