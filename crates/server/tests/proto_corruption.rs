//! Corruption robustness of the wire protocol, in the style of the WAL
//! corruption suite: random truncations and bit-flips of valid frames
//! must never panic the decoders — every malformed input is a typed
//! [`ProtocolError`]. Because the encoding is canonical (one byte
//! sequence per message, no redundant representations accepted), any
//! corrupted payload that still decodes must re-encode to exactly the
//! corrupted bytes — so decode(encode(x)) = x and encode(decode(y)) = y
//! are both property-tested here.

use ppq_core::query::StrqOutcome;
use ppq_geo::Point;
use ppq_obs::{HistogramStats, MetricsSnapshot, SlowQuery};
use ppq_server::proto::{self, ProtocolError, Request, Response, StatsBody, WireError};
use proptest::prelude::*;

/// One valid request per shape (vectors non-empty so truncation has
/// structure to tear).
fn sample_requests() -> Vec<Request> {
    vec![
        Request::Strq {
            t: 7,
            point: Point::new(-8.61, 41.15),
        },
        Request::Tpq {
            t: 7,
            point: Point::new(0.25, -0.5),
            horizon: 8,
        },
        Request::Append {
            t: 12,
            points: vec![
                (100, Point::new(1.0, 2.0)),
                (101, Point::new(-1.5, 0.125)),
                (102, Point::new(3.25, -9.75)),
            ],
        },
        Request::Stats,
        Request::Publish,
        Request::Metrics,
    ]
}

/// One valid response per shape.
fn sample_responses() -> Vec<Response> {
    let outcome = StrqOutcome {
        truth: vec![1, 2, 9],
        approx: vec![2, 9],
        candidates: vec![2, 5, 9],
        exact: vec![2, 9],
        visited: 3,
    };
    vec![
        Response::Strq {
            version: 40,
            outcome,
        },
        Response::Tpq {
            version: 40,
            matches: vec![
                (
                    2,
                    vec![(7, Point::new(1.0, 2.0)), (8, Point::new(1.5, 2.5))],
                ),
                (9, vec![]),
            ],
        },
        Response::Appended { next_t: 13 },
        Response::Stats(StatsBody {
            next_t: Some(13),
            published_version: 12,
            wal_pending: 3,
            maintenance_failures: 0,
            inline_maintenance: false,
            worker_attached: true,
            last_maintenance_error: Some("disk on fire".to_string()),
            wal_pending_bytes: 4096,
            chain_generations: 2,
            last_fold_unix_ms: Some(1_700_000_000_000),
            last_compaction_unix_ms: None,
            pool_resident_frames: 128,
            pool_pinned_frames: 5,
        }),
        Response::Metrics(MetricsSnapshot {
            counters: vec![
                ("ppq_pool_hits".to_string(), 42),
                ("ppq_server_requests".to_string(), 7),
            ],
            gauges: vec![("ppq_wal_records_pending".to_string(), 3)],
            histograms: vec![(
                "ppq_server_strq_ns".to_string(),
                HistogramStats {
                    count: 9,
                    sum_ns: 90_000,
                    min_ns: 1_000,
                    p50_ns: 10_000,
                    p90_ns: 20_000,
                    p99_ns: 30_000,
                    p999_ns: 30_000,
                    max_ns: 31_000,
                },
            )],
            slow_queries: vec![SlowQuery {
                name: "strq".to_string(),
                seq: 4,
                latency_ns: 31_000,
                reads: 12,
                hits: 9,
                visited: 80,
            }],
        }),
        Response::Published { version: 13 },
        Response::Busy,
        Response::OutOfOrder {
            expected: 13,
            got: 40,
        },
        Response::Error {
            message: "append failed: budget".to_string(),
        },
    ]
}

/// Every fixture payload, both classes (for the never-panic properties).
fn sample_payloads() -> Vec<Vec<u8>> {
    sample_requests()
        .iter()
        .map(|r| r.encode().to_vec())
        .chain(sample_responses().iter().map(|r| r.encode().to_vec()))
        .collect()
}

/// Decode a payload as whichever message class it is (requests and
/// responses share header layout; the fixtures keep their tags
/// unambiguous within their own class, so try both).
fn decode_any(payload: &[u8]) -> Result<Vec<u8>, (ProtocolError, ProtocolError)> {
    match Request::decode(payload) {
        Ok(req) => Ok(req.encode().to_vec()),
        Err(req_err) => match Response::decode(payload) {
            Ok(resp) => Ok(resp.encode().to_vec()),
            Err(resp_err) => Err((req_err, resp_err)),
        },
    }
}

#[test]
fn every_message_roundtrips() {
    for req in sample_requests() {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload), Ok(req));
    }
    for resp in sample_responses() {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload), Ok(resp));
    }
}

#[test]
fn trailing_garbage_is_typed() {
    for req in sample_requests() {
        let mut payload = req.encode().to_vec();
        payload.push(0xAB);
        assert_eq!(
            Request::decode(&payload),
            Err(ProtocolError::TrailingBytes(1))
        );
    }
    for resp in sample_responses() {
        let mut payload = resp.encode().to_vec();
        payload.push(0xAB);
        assert_eq!(
            Response::decode(&payload),
            Err(ProtocolError::TrailingBytes(1))
        );
    }
}

#[test]
fn foreign_version_is_rejected() {
    for mut payload in sample_payloads() {
        payload[0] ^= 0x40;
        let bad = payload[0];
        assert_eq!(
            Request::decode(&payload),
            Err(ProtocolError::BadVersion(bad))
        );
        assert_eq!(
            Response::decode(&payload),
            Err(ProtocolError::BadVersion(bad))
        );
    }
}

#[test]
fn oversize_frame_is_refused_before_allocation() {
    // A length prefix past the cap must error out of `read_frame`
    // without any attempt to read (or allocate) the announced payload.
    let huge = ((proto::MAX_FRAME_LEN + 1) as u32).to_le_bytes();
    let mut cursor = std::io::Cursor::new(huge.to_vec());
    match proto::read_frame(&mut cursor) {
        Err(WireError::Protocol(ProtocolError::Oversize(n))) => {
            assert_eq!(n, proto::MAX_FRAME_LEN + 1)
        }
        other => panic!("expected Oversize, got {other:?}"),
    }
}

#[test]
fn frame_roundtrip_and_clean_eof() {
    let payloads = sample_payloads();
    let mut wire = Vec::new();
    for p in &payloads {
        proto::write_frame(&mut wire, p).unwrap();
    }
    let mut cursor = std::io::Cursor::new(wire);
    for p in &payloads {
        let got = proto::read_frame(&mut cursor).unwrap().expect("frame");
        assert_eq!(&got, p);
    }
    assert!(matches!(proto::read_frame(&mut cursor), Ok(None)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every strict prefix of a valid payload is a typed error in its
    /// own message class — the decoders never panic and never accept a
    /// torn message. (Cross-class decoding is out of scope: tags are
    /// scoped to a direction, and each peer only decodes its own.)
    #[test]
    fn truncation_is_always_typed(which in 0u32..u32::MAX, cut in 0u32..u32::MAX) {
        let reqs = sample_requests();
        let resps = sample_responses();
        let total = reqs.len() + resps.len();
        let which = which as usize % total;
        if which < reqs.len() {
            let payload = reqs[which].encode();
            let torn = &payload[..(cut as usize) % payload.len()];
            prop_assert!(Request::decode(torn).is_err());
        } else {
            let payload = resps[which - reqs.len()].encode();
            let torn = &payload[..(cut as usize) % payload.len()];
            prop_assert!(Response::decode(torn).is_err());
        }
    }

    /// A single bit-flip anywhere never panics either decoder; when the
    /// damaged payload still decodes, it re-encodes byte-identically
    /// (canonical form — corruption cannot hide in an alias).
    #[test]
    fn bit_flip_never_panics(which in 0u32..u32::MAX, pos in 0u32..u32::MAX, bit in 0u32..8) {
        let payloads = sample_payloads();
        let mut payload = payloads[which as usize % payloads.len()].clone();
        let pos = (pos as usize) % payload.len();
        payload[pos] ^= 1 << bit;
        if let Ok(reencoded) = decode_any(&payload) {
            prop_assert_eq!(reencoded, payload);
        }
    }

    /// Torn frames (length prefix promising more than the stream holds)
    /// surface as typed truncation out of `read_frame`.
    #[test]
    fn torn_frame_is_typed(which in 0u32..u32::MAX, cut in 0u32..u32::MAX) {
        let payloads = sample_payloads();
        let payload = &payloads[which as usize % payloads.len()];
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, payload).unwrap();
        let cut = 1 + (cut as usize) % (wire.len() - 1);
        let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
        match proto::read_frame(&mut cursor) {
            Err(WireError::Protocol(ProtocolError::Truncated)) => {}
            Ok(Some(p)) => prop_assert!(false, "torn frame decoded whole: {} bytes", p.len()),
            other => prop_assert!(
                matches!(other, Err(WireError::Protocol(ProtocolError::Truncated))),
                "expected Truncated"
            ),
        }
    }
}
