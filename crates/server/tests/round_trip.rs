//! End-to-end serving contract: answers served **over TCP** while a
//! remote writer ingests (and the background worker folds/compacts)
//! must be bit-identical to a quiescent in-process replay of the slice
//! prefix their snapshot version claims — the network layer adds
//! transport, not semantics. Mirrors `ppq-live`'s
//! `concurrent_consistency` suite, with every hop through the wire
//! protocol. Also covers the accept-edge overload shed (`Busy`).

use ppq_core::query::{ShardedQueryEngine, ShardedQueryWorkspace, StrqOutcome};
use ppq_core::{PpqConfig, ShardedPpqStream, Variant};
use ppq_geo::Point;
use ppq_live::{LiveConfig, LiveService, MaintenanceConfig};
use ppq_server::{ClientError, RemoteConn, ServerConfig, ServerHandle};
use ppq_traj::synth::{porto_like, PortoConfig};
use ppq_traj::{Dataset, TrajId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 2;
const TPQ_HORIZON: u32 = 8;

type TpqAnswer = Vec<(TrajId, Vec<(u32, Point)>)>;

enum Answer {
    Strq(StrqOutcome),
    Tpq(TpqAnswer),
}

struct Observation {
    version: u32,
    query: (u32, Point),
    answer: Answer,
}

fn points_bit_eq(a: &Point, b: &Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

fn tpq_bit_eq(a: &TpqAnswer, b: &TpqAnswer) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((ia, sa), (ib, sb))| {
            ia == ib
                && sa.len() == sb.len()
                && sa
                    .iter()
                    .zip(sb)
                    .all(|((ta, pa), (tb, pb))| ta == tb && points_bit_eq(pa, pb))
        })
}

fn start_server(dir: &std::path::Path, publish_every: u64) -> (Arc<Dataset>, ServerHandle) {
    let data = Arc::new(porto_like(&PortoConfig {
        trajectories: 60,
        mean_len: 45,
        min_len: 30,
        start_spread: 10,
        seed: 0xC0C0,
    }));
    let ppq = PpqConfig::variant(Variant::PpqS, 0.1);
    let mut cfg = LiveConfig::new(ppq, SHARDS);
    cfg.page_size = 4 << 10;
    cfg.group_commit = 4;
    cfg.fold_every = 8;
    cfg.compact_max_chain = 3;
    let _ = std::fs::remove_dir_all(dir);
    let service =
        Arc::new(LiveService::open(dir, cfg, data.clone(), publish_every).expect("open service"));
    let server = ppq_server::start(
        "127.0.0.1:0",
        service,
        ServerConfig {
            handler_threads: 3,
            queue_depth: 8,
            poll_interval: Duration::from_millis(25),
            maintenance: Some(MaintenanceConfig {
                tick: Duration::from_millis(2),
                sync_wal: true,
                publish: true,
            }),
        },
    )
    .expect("bind server");
    (data, server)
}

#[test]
fn served_answers_match_quiescent_replay_bit_for_bit() {
    let dir = std::env::temp_dir().join(format!("ppq-server-rt-{}", std::process::id()));
    let (data, server) = start_server(&dir, 4);
    let addr = server.addr();

    let ppq = PpqConfig::variant(Variant::PpqS, 0.1);
    let slices: Vec<(u32, Vec<(TrajId, Point)>)> = data
        .time_slices()
        .map(|s| (s.t, s.points.to_vec()))
        .collect();
    let queries: Vec<(u32, Point)> = data
        .iter_points()
        .step_by(41)
        .map(|(_, t, p)| (t, p))
        .collect();
    assert!(queries.len() >= 20);

    // The worker owns maintenance: ingest must report it detached from
    // the inline path before any load runs.
    {
        let mut conn = RemoteConn::connect(addr).expect("connect");
        let stats = conn.stats().expect("stats");
        assert!(stats.worker_attached, "maintenance worker not attached");
        assert!(
            !stats.inline_maintenance,
            "maintenance still on the ingest path"
        );
    }

    let done = AtomicBool::new(false);
    let mut observations: Vec<Observation> = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut conn = RemoteConn::connect(addr).expect("writer connect");
            for (i, (t, points)) in slices.iter().enumerate() {
                let next = conn.append(*t, points).expect("in-order remote ingest");
                assert_eq!(next, *t + 1);
                if i % 4 == 0 {
                    std::thread::sleep(Duration::from_micros(300));
                }
            }
            done.store(true, Ordering::Release);
        });

        let readers: Vec<_> = (0..2)
            .map(|r| {
                let queries = &queries;
                let done = &done;
                scope.spawn(move || {
                    let mut conn = RemoteConn::connect(addr).expect("reader connect");
                    let mut out = Vec::new();
                    let mut k = r;
                    while !done.load(Ordering::Acquire) {
                        let (t, p) = queries[k % queries.len()];
                        let (v, strq) = conn.strq(t, &p).expect("remote STRQ");
                        out.push(Observation {
                            version: v,
                            query: (t, p),
                            answer: Answer::Strq(strq),
                        });
                        let (v, tpq) = conn.tpq(t, &p, TPQ_HORIZON).expect("remote TPQ");
                        out.push(Observation {
                            version: v,
                            query: (t, p),
                            answer: Answer::Tpq(tpq),
                        });
                        k += 2;
                        std::thread::yield_now();
                    }
                    out
                })
            })
            .collect();

        writer.join().expect("writer panicked");
        let mut all = Vec::new();
        for r in readers {
            all.extend(r.join().expect("reader panicked"));
        }
        all
    });

    // Anchor: force the final version and query everything once more —
    // and check remote answers equal direct in-process answers at that
    // same version.
    {
        let mut conn = RemoteConn::connect(addr).expect("connect");
        let final_version = conn.publish().expect("publish");
        assert_eq!(final_version, slices.last().unwrap().0 + 1);
        let stats = conn.stats().expect("stats");
        assert_eq!(stats.next_t, Some(final_version));
        assert_eq!(stats.published_version, final_version);
        assert_eq!(stats.maintenance_failures, 0);
        assert_eq!(stats.last_maintenance_error, None);

        let service = server.service();
        let mut ws = ShardedQueryWorkspace::new();
        for &(t, p) in &queries {
            let (v, remote) = conn.strq(t, &p).expect("remote STRQ");
            assert_eq!(v, final_version);
            let (lv, local) = service.strq(t, &p, &mut ws);
            assert_eq!(lv, final_version);
            assert_eq!(remote, local, "served STRQ diverged from in-process");
            observations.push(Observation {
                version: v,
                query: (t, p),
                answer: Answer::Strq(remote),
            });
            let (v, remote) = conn.tpq(t, &p, TPQ_HORIZON).expect("remote TPQ");
            let (lv, local) = service.tpq(t, &p, TPQ_HORIZON, &mut ws);
            assert_eq!((v, lv), (final_version, final_version));
            assert!(
                tpq_bit_eq(&remote, &local),
                "served TPQ diverged from in-process"
            );
            observations.push(Observation {
                version: v,
                query: (t, p),
                answer: Answer::Tpq(remote),
            });
        }
    }

    // The background worker really did the maintenance.
    let wstats = server.worker_stats().expect("server owns the worker");
    assert!(wstats.folds > 0, "no background folds ran: {wstats:?}");
    assert_eq!(wstats.maintenance_failures, 0);

    // ---- Quiescent replay per observed version (bit-identity). ----
    let mut by_version: BTreeMap<u32, Vec<&Observation>> = BTreeMap::new();
    for ob in &observations {
        by_version.entry(ob.version).or_default().push(ob);
    }
    assert!(
        by_version.len() >= 2,
        "expected observations at multiple snapshot versions, got {:?}",
        by_version.keys().collect::<Vec<_>>()
    );

    let grid = server.service().grid().clone();
    for (&version, obs) in &by_version {
        let mut replay = ShardedPpqStream::new(ppq.clone(), SHARDS);
        for (t, points) in slices.iter().filter(|(t, _)| *t < version) {
            replay.push_slice(*t, points);
        }
        let snapshot = replay.snapshot();
        let engine = ShardedQueryEngine::with_grid(&snapshot, &data, grid.clone());
        let mut ws = ShardedQueryWorkspace::new();
        for (i, ob) in obs.iter().enumerate() {
            let (t, p) = ob.query;
            match &ob.answer {
                Answer::Strq(served) => {
                    let replayed = engine.strq_online_with(t, &p, &mut ws);
                    assert_eq!(
                        *served, replayed,
                        "version {version} observation {i}: served STRQ diverged from replay"
                    );
                }
                Answer::Tpq(served) => {
                    let replayed = engine.tpq_with(t, &p, TPQ_HORIZON, &mut ws);
                    assert!(
                        tpq_bit_eq(served, &replayed),
                        "version {version} observation {i}: served TPQ payload diverged"
                    );
                }
            }
        }
    }

    server.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_shed_with_busy_and_drains() {
    let dir = std::env::temp_dir().join(format!("ppq-server-busy-{}", std::process::id()));
    let data = Arc::new(porto_like(&PortoConfig {
        trajectories: 10,
        mean_len: 12,
        min_len: 8,
        start_spread: 4,
        seed: 0xBEEF,
    }));
    let cfg = LiveConfig::new(PpqConfig::variant(Variant::PpqS, 0.1), 1);
    let _ = std::fs::remove_dir_all(&dir);
    let service = Arc::new(LiveService::open(&dir, cfg, data, 1).expect("open service"));
    // One handler, queue depth 1: slot A served, slot B queued, C shed.
    let server = ppq_server::start(
        "127.0.0.1:0",
        service,
        ServerConfig {
            handler_threads: 1,
            queue_depth: 1,
            poll_interval: Duration::from_millis(10),
            maintenance: None,
        },
    )
    .expect("bind server");
    let addr = server.addr();

    // A: claimed by the only handler (proven by a served request).
    let mut a = RemoteConn::connect(addr).expect("connect A");
    a.stats().expect("A is served");
    // B: accepted, sits in the hand-off queue.
    let mut b = RemoteConn::connect(addr).expect("connect B");
    std::thread::sleep(Duration::from_millis(50));
    // C: the bounded queue is full — must be shed with a typed Busy.
    let mut c = RemoteConn::connect(addr).expect("connect C");
    match c.stats() {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy shed, got {other:?}"),
    }

    // Drain: closing A frees the handler; the queued B gets served (the
    // blocking client simply waits until the handler claims it).
    drop(a);
    b.stats().expect("queued connection served after drain");

    server.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
