//! Per-trajectory history of reconstructed points.
//!
//! The predictive quantizer predicts from *reconstructed* previous points
//! (Eq. 2 uses `T̂`, not `T`), so each trajectory carries a small ring of
//! the most recent reconstructions. Capacity is the prediction order `k`
//! plus whatever the AR-feature window needs.

use ppq_geo::Point;

/// Fixed-capacity ring buffer of the most recent points, newest last.
#[derive(Clone, Debug)]
pub struct History {
    buf: Vec<Point>,
    cap: usize,
    head: usize,
    len: usize,
}

impl History {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        History {
            buf: vec![Point::ORIGIN; cap],
            cap,
            head: 0,
            len: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append the newest point, evicting the oldest when full.
    pub fn push(&mut self, p: Point) {
        self.buf[self.head] = p;
        self.head = (self.head + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
    }

    /// The point `lag` steps back: `lag = 1` is the most recent.
    /// Returns `None` when not enough history.
    #[inline]
    pub fn lag(&self, lag: usize) -> Option<Point> {
        if lag == 0 || lag > self.len {
            return None;
        }
        let idx = (self.head + self.cap - lag) % self.cap;
        Some(self.buf[idx])
    }

    /// The `k` most recent points, most recent first. `None` when fewer
    /// than `k` are available.
    pub fn last_k(&self, k: usize) -> Option<Vec<Point>> {
        if k > self.len {
            return None;
        }
        Some((1..=k).map(|l| self.lag(l).unwrap()).collect())
    }

    /// Allocation-free [`History::last_k`]: overwrite `out` with the `k`
    /// most recent points (most recent first). Returns `false` (leaving
    /// `out` cleared) when fewer than `k` are available. Hot-path variant
    /// for callers that predict per point per timestep.
    pub fn last_k_into(&self, k: usize, out: &mut Vec<Point>) -> bool {
        out.clear();
        if k > self.len {
            return false;
        }
        out.extend((1..=k).map(|l| self.lag(l).unwrap()));
        true
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.len).map(move |i| self.lag(self.len - i).unwrap())
    }

    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Point {
        Point::new(v, -v)
    }

    #[test]
    fn push_and_lag() {
        let mut h = History::new(3);
        assert!(h.lag(1).is_none());
        h.push(p(1.0));
        h.push(p(2.0));
        assert_eq!(h.lag(1), Some(p(2.0)));
        assert_eq!(h.lag(2), Some(p(1.0)));
        assert_eq!(h.lag(3), None);
    }

    #[test]
    fn eviction_when_full() {
        let mut h = History::new(3);
        for v in 1..=5 {
            h.push(p(v as f64));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.lag(1), Some(p(5.0)));
        assert_eq!(h.lag(3), Some(p(3.0)));
        assert_eq!(h.lag(4), None);
    }

    #[test]
    fn last_k_ordering() {
        let mut h = History::new(4);
        for v in 1..=4 {
            h.push(p(v as f64));
        }
        let k = h.last_k(3).unwrap();
        assert_eq!(k, vec![p(4.0), p(3.0), p(2.0)]);
        assert!(h.last_k(5).is_none());
    }

    #[test]
    fn iter_oldest_to_newest() {
        let mut h = History::new(3);
        for v in 1..=5 {
            h.push(p(v as f64));
        }
        let all: Vec<Point> = h.iter().collect();
        assert_eq!(all, vec![p(3.0), p(4.0), p(5.0)]);
    }

    #[test]
    fn clear_resets() {
        let mut h = History::new(2);
        h.push(p(1.0));
        h.clear();
        assert!(h.is_empty());
        assert!(h.lag(1).is_none());
    }
}
