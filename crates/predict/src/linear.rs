//! The shared-coefficient linear predictor (paper Eqs. 1–2).
//!
//! One scalar coefficient per lag is shared between the x and y axes: the
//! position vector at time `t` is predicted as a linear combination of the
//! previous `k` reconstructed position vectors. Fitting stacks the x-rows
//! and y-rows of every trajectory in the partition into one least-squares
//! problem, which is exactly the minimisation of Eq. 1 (and Eq. 6 when
//! restricted to a partition).

use crate::lsq::solve_normal_equations;
use ppq_geo::Point;

/// Fitted prediction coefficients `P₁..P_k` (most-recent lag first).
#[derive(Clone, Debug, PartialEq)]
pub struct Predictor {
    coeffs: Vec<f64>,
}

impl Predictor {
    /// The all-zero predictor the paper prescribes for `t ≤ k`
    /// ("for the time t ≤ k, P_j\[t\] is set to zero").
    pub fn zero(k: usize) -> Self {
        Predictor {
            coeffs: vec![0.0; k],
        }
    }

    /// A random-walk predictor: `T̃ᵗ = T̂ᵗ⁻¹`. Used by the `ColdStart`
    /// ablation and as the fallback when a fit fails.
    pub fn last_value(k: usize) -> Self {
        let mut coeffs = vec![0.0; k];
        if k > 0 {
            coeffs[0] = 1.0;
        }
        Predictor { coeffs }
    }

    pub fn from_coeffs(coeffs: Vec<f64>) -> Self {
        Predictor { coeffs }
    }

    #[inline]
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    #[inline]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Predict from `history` = the `k` most recent reconstructed points,
    /// most recent first (`history[j]` is lag `j+1`).
    pub fn predict(&self, history: &[Point]) -> Point {
        debug_assert!(history.len() >= self.coeffs.len());
        let mut p = Point::ORIGIN;
        for (c, h) in self.coeffs.iter().zip(history) {
            p += *h * *c;
        }
        p
    }

    /// Serialized size: one `f64` per coefficient (charged per partition
    /// per timestep in the summary accounting).
    pub fn size_bytes(&self) -> usize {
        self.coeffs.len() * std::mem::size_of::<f64>()
    }
}

/// One training row: the target point and its `k` most-recent
/// reconstructed predecessors (most recent first).
pub struct TrainingRow<'a> {
    pub target: Point,
    pub history: &'a [Point],
}

/// Fit shared coefficients over the given rows (Eq. 1 / Eq. 6).
///
/// Each row contributes two scalar equations (x and y). Returns the
/// last-value predictor when the system is degenerate or there are no rows
/// — the caller always gets a usable predictor.
pub fn fit_predictor(rows: &[TrainingRow<'_>], k: usize) -> Predictor {
    if rows.is_empty() {
        return Predictor::last_value(k);
    }
    let mut a = Vec::with_capacity(rows.len() * 2 * k);
    let mut b = Vec::with_capacity(rows.len() * 2);
    for row in rows {
        debug_assert!(row.history.len() >= k);
        for j in 0..k {
            a.push(row.history[j].x);
        }
        b.push(row.target.x);
        for j in 0..k {
            a.push(row.history[j].y);
        }
        b.push(row.target.y);
    }
    // Light ridge keeps near-collinear histories (straight-line motion)
    // solvable; the scale is far below coordinate magnitudes.
    match solve_normal_equations(&a, &b, k, 1e-9) {
        Some(coeffs) if coeffs.iter().all(|c| c.is_finite()) => Predictor::from_coeffs(coeffs),
        _ => Predictor::last_value(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_predictor_predicts_origin() {
        let p = Predictor::zero(3);
        let h = [
            Point::new(5.0, 5.0),
            Point::new(4.0, 4.0),
            Point::new(3.0, 3.0),
        ];
        assert_eq!(p.predict(&h), Point::ORIGIN);
    }

    #[test]
    fn last_value_predictor() {
        let p = Predictor::last_value(2);
        let h = [Point::new(7.0, -1.0), Point::new(0.0, 0.0)];
        assert_eq!(p.predict(&h), Point::new(7.0, -1.0));
    }

    #[test]
    fn fits_constant_velocity_exactly() {
        // Points on a line with constant velocity satisfy
        // T^t = 2·T^{t-1} - T^{t-2}.
        let mut rows = Vec::new();
        let histories: Vec<[Point; 2]> = (0..20)
            .map(|i| {
                let t = i as f64;
                [
                    Point::new(2.0 * (t + 1.0), 3.0 * (t + 1.0) + 1.0),
                    Point::new(2.0 * t, 3.0 * t + 1.0),
                ]
            })
            .collect();
        for (i, h) in histories.iter().enumerate() {
            let t = i as f64;
            rows.push(TrainingRow {
                target: Point::new(2.0 * (t + 2.0), 3.0 * (t + 2.0) + 1.0),
                history: h,
            });
        }
        let p = fit_predictor(&rows, 2);
        assert!(
            (p.coeffs()[0] - 2.0).abs() < 1e-5,
            "coeffs {:?}",
            p.coeffs()
        );
        assert!((p.coeffs()[1] + 1.0).abs() < 1e-5);
        // And the prediction error is ~0 on the training rows.
        for row in &rows {
            assert!(row.target.dist(&p.predict(row.history)) < 1e-6);
        }
    }

    #[test]
    fn empty_rows_fall_back_to_last_value() {
        let p = fit_predictor(&[], 3);
        assert_eq!(p, Predictor::last_value(3));
    }

    #[test]
    fn stationary_points_fit_identity() {
        // All histories identical & stationary: prediction should return
        // (approximately) the stationary point.
        let h = [Point::new(4.0, 2.0), Point::new(4.0, 2.0)];
        let rows: Vec<TrainingRow> = (0..10)
            .map(|_| TrainingRow {
                target: Point::new(4.0, 2.0),
                history: &h,
            })
            .collect();
        let p = fit_predictor(&rows, 2);
        let pred = p.predict(&h);
        assert!(pred.dist(&Point::new(4.0, 2.0)) < 1e-6, "pred {pred:?}");
    }

    #[test]
    fn size_accounting() {
        assert_eq!(Predictor::zero(3).size_bytes(), 24);
    }
}
