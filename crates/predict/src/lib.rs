//! Linear-prediction substrate for PPQ-Trajectory.
//!
//! The predictive quantizer (paper §3.1) estimates the point at time `t`
//! from the previous `k` *reconstructed* points through a linear model
//! `T̃ᵗ = Σⱼ Pⱼ[t]·T̂ᵗ⁻ʲ` whose coefficients are refit at every timestep by
//! least squares (Eq. 1). PPQ (§3.2) fits one such model per partition and
//! additionally uses per-trajectory AR(k) coefficients as the
//! autocorrelation-similarity feature (Eq. 8).
//!
//! * [`lsq`] — small dense least-squares solver (normal equations +
//!   partial-pivot Gaussian elimination; `k` is tiny so this is exact
//!   enough and allocation-light per solve).
//! * [`linear`] — fitting/applying the shared-coefficient 2-D predictor.
//! * [`ar`] — per-trajectory AR(k) coefficient estimation (the `a_i^t`
//!   feature of Eq. 8).
//! * [`history`] — fixed-capacity ring buffers holding each trajectory's
//!   recent reconstructed points.

pub mod ar;
pub mod history;
pub mod linear;
pub mod lsq;

pub use ar::ar_coefficients;
pub use history::History;
pub use linear::{fit_predictor, Predictor};
pub use lsq::solve_normal_equations;
