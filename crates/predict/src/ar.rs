//! Per-trajectory AR(k) coefficient estimation — the autocorrelation
//! feature `a_i^t` of paper Eq. 8.
//!
//! The paper models the dependence of `T_i^t` on its lagged `k` points as
//! an autoregressive process of order `k` and partitions trajectories with
//! similar AR parameters together, so one prediction function per
//! partition captures them all well. We estimate the AR coefficients per
//! trajectory over a sliding window of its recent points by conditional
//! least squares (equivalent to the Yule–Walker estimate for the window
//! length in use), stacking x and y like the shared predictor does.

use crate::lsq::solve_normal_equations;
use ppq_geo::Point;

/// Estimate AR(k) coefficients from a window of consecutive points
/// (oldest → newest). Needs at least `k + 1` points; returns `None`
/// otherwise.
///
/// The series is mean-centred per axis first (AR models fluctuation around
/// the level, and trajectory coordinates have large offsets), which makes
/// the feature invariant to *where* the trajectory is and sensitive only
/// to *how* it moves — precisely the property the partitioning wants.
pub fn ar_coefficients(window: &[Point], k: usize) -> Option<Vec<f64>> {
    if k == 0 || window.len() < k + 1 {
        return None;
    }
    let n = window.len();
    let mean = Point::centroid(window).expect("window non-empty");

    // Rows: for each target index t in [k, n), regressors are the k
    // preceding (centred) values, most recent first — matching the
    // predictor's lag convention.
    let rows = n - k;
    let mut a = Vec::with_capacity(rows * 2 * k);
    let mut b = Vec::with_capacity(rows * 2);
    for t in k..n {
        for j in 1..=k {
            a.push(window[t - j].x - mean.x);
        }
        b.push(window[t].x - mean.x);
        for j in 1..=k {
            a.push(window[t - j].y - mean.y);
        }
        b.push(window[t].y - mean.y);
    }
    // Ridge on the same scale as the (centred) signal keeps short windows
    // of near-linear motion well-posed.
    solve_normal_equations(&a, &b, k, 1e-9).map(|mut c| {
        // Clamp pathological estimates so the feature space stays bounded
        // (far-out coefficients would otherwise dominate the ε_p geometry).
        for v in &mut c {
            *v = v.clamp(-8.0, 8.0);
        }
        c
    })
}

/// Euclidean distance between two AR coefficient vectors (the metric used
/// against `ε_p` in Eq. 8).
pub fn ar_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generate an AR(1) series x_t = phi * x_{t-1} + noise.
    fn ar1_series(phi: f64, n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut xs = vec![Point::new(next(), next())];
        for _ in 1..n {
            let prev = *xs.last().unwrap();
            xs.push(Point::new(
                phi * prev.x + 0.05 * next(),
                phi * prev.y + 0.05 * next(),
            ));
        }
        xs
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let series = ar1_series(0.8, 300, 42);
        let c = ar_coefficients(&series, 1).unwrap();
        assert!((c[0] - 0.8).abs() < 0.1, "estimated {c:?}");
    }

    #[test]
    fn distinguishes_different_dynamics() {
        let fast = ar1_series(0.95, 200, 1);
        let slow = ar1_series(0.2, 200, 2);
        let cf = ar_coefficients(&fast, 1).unwrap();
        let cs = ar_coefficients(&slow, 1).unwrap();
        assert!(ar_distance(&cf, &cs) > 0.3);
    }

    #[test]
    fn too_short_window_is_none() {
        let series = ar1_series(0.5, 3, 3);
        assert!(ar_coefficients(&series, 3).is_none());
        assert!(ar_coefficients(&series, 0).is_none());
    }

    #[test]
    fn location_invariance() {
        let series = ar1_series(0.7, 150, 4);
        let shifted: Vec<Point> = series
            .iter()
            .map(|p| Point::new(p.x + 500.0, p.y - 900.0))
            .collect();
        let c1 = ar_coefficients(&series, 2).unwrap();
        let c2 = ar_coefficients(&shifted, 2).unwrap();
        assert!(ar_distance(&c1, &c2) < 1e-6, "{c1:?} vs {c2:?}");
    }

    #[test]
    fn coefficients_are_clamped() {
        // A degenerate exploding series still yields bounded features.
        let series: Vec<Point> = (0..40)
            .map(|i| Point::new((2.0f64).powi(i), (2.0f64).powi(i)))
            .collect();
        if let Some(c) = ar_coefficients(&series, 2) {
            for v in c {
                assert!((-8.0..=8.0).contains(&v));
            }
        }
    }
}
