//! Small dense least squares via normal equations.
//!
//! The prediction order `k` is tiny (default 3), so `AᵀA` is a `k×k` system
//! solved exactly with partial-pivot Gaussian elimination. A Tikhonov
//! ridge (`λ·I`) keeps the system well-posed when the design matrix is
//! rank-deficient (e.g. a partition whose members all moved identically).

/// Solve `min ‖A·x − b‖²` for `x` (A is `rows × k`, row-major), with ridge
/// regularisation `ridge ≥ 0`.
///
/// Returns `None` when the (regularised) normal matrix is numerically
/// singular.
pub fn solve_normal_equations(a: &[f64], b: &[f64], k: usize, ridge: f64) -> Option<Vec<f64>> {
    assert!(k > 0);
    assert_eq!(a.len() % k, 0, "design matrix not a multiple of k");
    let rows = a.len() / k;
    assert_eq!(rows, b.len(), "rhs length mismatch");
    if rows == 0 {
        return None;
    }

    // Form AtA (k×k, symmetric) and Atb (k).
    let mut ata = vec![0.0f64; k * k];
    let mut atb = vec![0.0f64; k];
    for r in 0..rows {
        let row = &a[r * k..(r + 1) * k];
        for i in 0..k {
            atb[i] += row[i] * b[r];
            for j in i..k {
                ata[i * k + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..k {
        for j in 0..i {
            ata[i * k + j] = ata[j * k + i];
        }
        ata[i * k + i] += ridge;
    }
    solve_dense(&mut ata, &mut atb, k)
}

/// In-place partial-pivot Gaussian elimination on a `k×k` system.
fn solve_dense(m: &mut [f64], rhs: &mut [f64], k: usize) -> Option<Vec<f64>> {
    for col in 0..k {
        // Pivot selection.
        let mut pivot = col;
        let mut pv = m[col * k + col].abs();
        for r in (col + 1)..k {
            let v = m[r * k + col].abs();
            if v > pv {
                pv = v;
                pivot = r;
            }
        }
        if pv < 1e-30 {
            return None;
        }
        if pivot != col {
            for c in 0..k {
                m.swap(col * k + c, pivot * k + c);
            }
            rhs.swap(col, pivot);
        }
        // Eliminate below.
        let diag = m[col * k + col];
        for r in (col + 1)..k {
            let f = m[r * k + col] / diag;
            if f == 0.0 {
                continue;
            }
            for c in col..k {
                m[r * k + c] -= f * m[col * k + c];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut v = rhs[col];
        for c in (col + 1)..k {
            v -= m[col * k + c] * x[c];
        }
        x[col] = v / m[col * k + col];
        if !x[col].is_finite() {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_system() {
        // 2x + y = 5 ; x - y = 1  => x = 2, y = 1
        let a = [2.0, 1.0, 1.0, -1.0];
        let b = [5.0, 1.0];
        let x = solve_normal_equations(&a, &b, 2, 0.0).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overdetermined_recovers_true_model() {
        // y = 3a - 2b with 50 noiseless rows.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..50 {
            let u = i as f64 * 0.17 - 3.0;
            let v = (i as f64 * 0.31).sin();
            a.extend_from_slice(&[u, v]);
            b.push(3.0 * u - 2.0 * v);
        }
        let x = solve_normal_equations(&a, &b, 2, 0.0).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-8);
        assert!((x[1] + 2.0).abs() < 1e-8);
    }

    #[test]
    fn singular_without_ridge_is_none() {
        // Two identical columns: rank 1.
        let a = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!(solve_normal_equations(&a, &b, 2, 0.0).is_none());
    }

    #[test]
    fn ridge_fixes_singularity() {
        let a = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let x = solve_normal_equations(&a, &b, 2, 1e-6).unwrap();
        // Minimum-norm solution splits the weight evenly.
        assert!((x[0] - x[1]).abs() < 1e-3);
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn empty_rows_is_none() {
        assert!(solve_normal_equations(&[], &[], 3, 0.0).is_none());
    }

    #[test]
    fn k1_is_projection() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.1, 5.9];
        let x = solve_normal_equations(&a, &b, 1, 0.0).unwrap();
        // Closed form: sum(ab)/sum(aa) = (2 + 8.2 + 17.7)/14
        assert!((x[0] - (2.0 + 8.2 + 17.7) / 14.0).abs() < 1e-9);
    }
}
