//! Property tests for the prediction substrate.

use ppq_geo::Point;
use ppq_predict::linear::{fit_predictor, TrainingRow};
use ppq_predict::{ar_coefficients, solve_normal_equations, History};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The least-squares solution is at least as good as the zero and
    /// last-value baselines on its own training data.
    #[test]
    fn lsq_beats_trivial_predictors(
        rows_data in prop::collection::vec(
            ((-10.0f64..10.0, -10.0f64..10.0),
             (-10.0f64..10.0, -10.0f64..10.0),
             (-10.0f64..10.0, -10.0f64..10.0)),
            3..40,
        )
    ) {
        let histories: Vec<[Point; 2]> = rows_data
            .iter()
            .map(|(_, h1, h2)| [Point::new(h1.0, h1.1), Point::new(h2.0, h2.1)])
            .collect();
        let rows: Vec<TrainingRow> = rows_data
            .iter()
            .zip(&histories)
            .map(|((tgt, _, _), h)| TrainingRow { target: Point::new(tgt.0, tgt.1), history: h })
            .collect();
        let fitted = fit_predictor(&rows, 2);
        let sse = |coeffs: &[f64]| -> f64 {
            rows.iter()
                .map(|r| {
                    let pred = Point::new(
                        coeffs[0] * r.history[0].x + coeffs[1] * r.history[1].x,
                        coeffs[0] * r.history[0].y + coeffs[1] * r.history[1].y,
                    );
                    r.target.dist2(&pred)
                })
                .sum()
        };
        let fit_err = sse(fitted.coeffs());
        prop_assert!(fit_err <= sse(&[0.0, 0.0]) + 1e-6, "worse than zero predictor");
        prop_assert!(fit_err <= sse(&[1.0, 0.0]) + 1e-6, "worse than last-value predictor");
    }

    /// Normal equations reproduce planted coefficients on noiseless data.
    #[test]
    fn lsq_recovers_planted_model(
        c0 in -3.0f64..3.0,
        c1 in -3.0f64..3.0,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0 - 5.0
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..30 {
            let (u, v) = (next(), next());
            a.extend_from_slice(&[u, v]);
            b.push(c0 * u + c1 * v);
        }
        if let Some(x) = solve_normal_equations(&a, &b, 2, 0.0) {
            prop_assert!((x[0] - c0).abs() < 1e-6, "{} vs {}", x[0], c0);
            prop_assert!((x[1] - c1).abs() < 1e-6);
        }
    }

    /// History is a faithful sliding window.
    #[test]
    fn history_window(values in prop::collection::vec(-100.0f64..100.0, 1..60),
                      cap in 1usize..10) {
        let mut h = History::new(cap);
        for &v in &values {
            h.push(Point::new(v, -v));
        }
        let expect_len = values.len().min(cap);
        prop_assert_eq!(h.len(), expect_len);
        for lag in 1..=expect_len {
            let v = values[values.len() - lag];
            prop_assert_eq!(h.lag(lag), Some(Point::new(v, -v)));
        }
        prop_assert_eq!(h.lag(expect_len + 1), None);
    }

    /// AR features are translation-invariant.
    #[test]
    fn ar_translation_invariant(
        steps in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 8..40),
        dx in -1000.0f64..1000.0,
        dy in -1000.0f64..1000.0,
    ) {
        let mut p = Point::new(0.0, 0.0);
        let series: Vec<Point> = steps
            .iter()
            .map(|(sx, sy)| {
                p = Point::new(p.x + sx, p.y + sy);
                p
            })
            .collect();
        let shifted: Vec<Point> =
            series.iter().map(|q| Point::new(q.x + dx, q.y + dy)).collect();
        let a = ar_coefficients(&series, 2);
        let b = ar_coefficients(&shifted, 2);
        match (a, b) {
            (Some(ca), Some(cb)) => {
                for (x, y) in ca.iter().zip(&cb) {
                    prop_assert!((x - y).abs() < 1e-5, "{:?} vs {:?}", x, y);
                }
            }
            (None, None) => {}
            other => prop_assert!(false, "inconsistent estimability: {:?}", other.0.is_some()),
        }
    }
}
