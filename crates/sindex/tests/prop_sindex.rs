//! Property tests: overlap removal must partition exactly, ID-list
//! compression must be lossless, Huffman must roundtrip any byte soup.

use ppq_geo::{BBox, Point};
use ppq_sindex::huffman::{byte_histogram, Huffman};
use ppq_sindex::{remove_overlap, CompressedIdList};
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.5f64..60.0,
        0.5f64..60.0,
    )
        .prop_map(|(x, y, w, h)| BBox::from_extents(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After removal, sample points are covered iff they were in the rect
    /// but not in any obstacle — and never covered twice.
    #[test]
    fn overlap_removal_partitions(rect in arb_bbox(),
                                  obstacles in prop::collection::vec(arb_bbox(), 0..6)) {
        let pieces = remove_overlap(&rect, &obstacles);
        // Pieces stay inside the original rect and are pairwise disjoint.
        for p in &pieces {
            prop_assert!(rect.contains_box(p));
        }
        for (i, a) in pieces.iter().enumerate() {
            for b in pieces.iter().skip(i + 1) {
                if let Some(inter) = a.intersection(b) {
                    prop_assert!(inter.area() < 1e-9);
                }
            }
        }
        // Grid-sample the rect interior.
        for i in 0..12 {
            for j in 0..12 {
                let p = Point::new(
                    rect.min.x + rect.width() * (i as f64 + 0.5) / 12.0,
                    rect.min.y + rect.height() * (j as f64 + 0.5) / 12.0,
                );
                let in_obstacle = obstacles.iter().any(|o| o.contains(&p));
                let cover = pieces.iter().filter(|r| r.contains(&p)).count();
                if in_obstacle {
                    // Points strictly inside an obstacle must be uncovered
                    // (boundary points may sit on shared piece edges).
                    let strictly_inside = obstacles.iter().any(|o| {
                        p.x > o.min.x && p.x < o.max.x && p.y > o.min.y && p.y < o.max.y
                    });
                    if strictly_inside {
                        prop_assert_eq!(cover, 0, "covered obstacle point {:?}", p);
                    }
                } else {
                    prop_assert!(cover >= 1, "lost point {:?}", p);
                }
            }
        }
    }

    /// Compression is lossless for arbitrary ID sets.
    #[test]
    fn idlist_roundtrip(ids in prop::collection::vec(0u32..1_000_000, 0..300)) {
        let c = CompressedIdList::compress(&ids);
        let mut expect = ids.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(c.decompress(), expect);
    }

    /// Huffman roundtrips arbitrary non-empty payloads.
    #[test]
    fn huffman_roundtrip(data in prop::collection::vec(any::<u8>(), 1..600)) {
        let h = Huffman::from_frequencies(&byte_histogram(&data));
        let (bits, len) = h.encode(&data);
        prop_assert_eq!(h.decode(&bits, len, data.len()), data);
    }
}
