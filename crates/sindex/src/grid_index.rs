//! Per-rectangle grid index (paper Algorithm 3, line 11).
//!
//! Each non-overlapping rectangle `R_j` of a PI is cut into cells of side
//! `g_c`; every trajectory point maps to one cell and its trajectory ID is
//! stored in that cell's compressed list. Queries locate the cell of
//! `(x, y)` (or all cells within the local-search radius) and return the
//! union of the stored ID lists.
//!
//! Storage is a *posting dictionary*: occupied cells are kept as a vector
//! sorted by flat cell index, so a query probes by binary search and a
//! rectangle/disc query walks sorted row intervals instead of hashing
//! every covered cell. The bounding box of the occupied cells is
//! precomputed at build time; probes that miss it return without touching
//! any posting.

use crate::idlist::CompressedIdList;
use crate::posting::QueryScratch;
use ppq_geo::{BBox, GridSpec, Point};
use std::collections::HashMap;

/// A grid index over one rectangle.
///
/// Cell keys and compressed lists live in parallel vectors: a
/// `CompressedIdList` embeds its Huffman tables, so binary searching a
/// `Vec<(u32, CompressedIdList)>` would take a cache miss per probe; the
/// dense key vector keeps the whole search within a few cache lines.
#[derive(Clone, Debug)]
pub struct GridIndex {
    region: BBox,
    grid: GridSpec,
    /// Occupied flat cell indices, sorted ascending.
    keys: Vec<u32>,
    /// `lists[i]` holds the compressed IDs of cell `keys[i]`.
    lists: Vec<CompressedIdList>,
    /// Geometric union of the occupied cells — the candidate-pruning box.
    content_bounds: BBox,
    points_indexed: usize,
}

impl GridIndex {
    /// Build over `region` with cell side `gc`. Points outside the region
    /// are ignored (the caller routes points to the right rectangle).
    pub fn build(region: BBox, gc: f64, points: &[(u32, Point)]) -> GridIndex {
        assert!(!region.is_empty());
        let grid = GridSpec::covering(&region, gc);
        // Posting keys are u32 flat cell indices; a grid beyond that
        // domain would silently alias cells after truncation.
        assert!(
            grid.len() <= u32::MAX as usize,
            "grid has {} cells, exceeding the u32 posting-key domain",
            grid.len()
        );
        let mut raw: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut points_indexed = 0;
        for (id, p) in points {
            if !region.contains(p) {
                continue;
            }
            let (cx, cy) = grid.locate_clamped(p);
            raw.entry(grid.flat(cx, cy) as u32).or_default().push(*id);
            points_indexed += 1;
        }
        let mut cells: Vec<(u32, CompressedIdList)> = raw
            .into_iter()
            .map(|(cell, ids)| (cell, CompressedIdList::compress(&ids)))
            .collect();
        cells.sort_unstable_by_key(|(cell, _)| *cell);
        let mut content_bounds = BBox::EMPTY;
        for (cell, _) in &cells {
            let (cx, cy) = grid.unflat(*cell as usize);
            content_bounds = content_bounds.union(&grid.cell_bbox(cx, cy));
        }
        let (keys, lists) = cells.into_iter().unzip();
        GridIndex {
            region,
            grid,
            keys,
            lists,
            content_bounds,
            points_indexed,
        }
    }

    #[inline]
    pub fn region(&self) -> &BBox {
        &self.region
    }

    #[inline]
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Bounding box of the occupied cells (⊆ [`GridIndex::region`]); empty
    /// when no point was indexed. Probes outside it cannot hit anything.
    #[inline]
    pub fn content_bounds(&self) -> &BBox {
        &self.content_bounds
    }

    /// Number of points this index covers (`N_{R_i}` in Definition 5.1).
    #[inline]
    pub fn points_indexed(&self) -> usize {
        self.points_indexed
    }

    /// Trajectory-region density (paper Definition 5.1):
    /// `d(R) = N_R / |R|`.
    pub fn density(&self) -> f64 {
        let area = self.region.area();
        if area > 0.0 {
            self.points_indexed as f64 / area
        } else {
            self.points_indexed as f64
        }
    }

    #[inline]
    pub fn covers(&self, p: &Point) -> bool {
        self.region.contains(p)
    }

    #[inline]
    fn list_at(&self, flat: u32) -> Option<&CompressedIdList> {
        self.keys.binary_search(&flat).ok().map(|i| &self.lists[i])
    }

    /// IDs stored in the cell containing `p` (empty when `p` is outside
    /// the region or the cell holds nothing).
    pub fn query_cell(&self, p: &Point) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_cell_into(p, &mut QueryScratch::new(), &mut out);
        out
    }

    /// [`GridIndex::query_cell`] appending into `out` through a reusable
    /// scratch — allocation-free once the scratch is warm.
    pub fn query_cell_into(&self, p: &Point, scratch: &mut QueryScratch, out: &mut Vec<u32>) {
        if !self.region.contains(p) || !self.content_bounds.contains(p) {
            return;
        }
        let (cx, cy) = self.grid.locate_clamped(p);
        if let Some(list) = self.list_at(self.grid.flat(cx, cy) as u32) {
            list.decompress_into(&mut scratch.bytes, out);
        }
    }

    /// Union of IDs in every cell intersecting the disc of radius `r`
    /// around `p` — the paper's local search (§5.2). The result is sorted
    /// and deduplicated.
    pub fn query_disc(&self, p: &Point, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_disc_into(p, r, &mut QueryScratch::new(), &mut out);
        out
    }

    /// [`GridIndex::query_disc`] appending into `out` (sorted, deduplicated)
    /// through a reusable scratch.
    pub fn query_disc_into(
        &self,
        p: &Point,
        r: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<u32>,
    ) {
        // Candidate pruning: clip the disc's bounding square against the
        // precomputed occupied-cell bounds before touching the grid.
        let probe = BBox::from_extents(p.x - r, p.y - r, p.x + r, p.y + r);
        if !probe.intersects(&self.content_bounds) {
            return;
        }
        let Some((lo_x, lo_y, hi_x, hi_y)) = self.grid.cell_range_in_rect(&probe) else {
            return;
        };
        let r2 = r * r;
        crate::posting::walk_cells_in_range(
            &self.grid,
            &self.keys,
            (lo_x, lo_y, hi_x, hi_y),
            |i, cx, cy| {
                if self.grid.cell_dist2(cx, cy, p) <= r2 {
                    scratch.ids.clear();
                    self.lists[i].decompress_into(&mut scratch.bytes, &mut scratch.ids);
                    scratch.set.insert_all(&scratch.ids);
                }
            },
        );
        scratch.set.drain_sorted_into(out);
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.keys.len()
    }

    /// Stored size: region + grid header + per-cell compressed lists.
    pub fn size_bytes(&self) -> usize {
        let header = 4 * 8 + 4 * 8; // region extents + grid spec
        header
            + self
                .lists
                .iter()
                .map(|l| l.size_bytes() + 8 /* cell key */)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> GridIndex {
        let region = BBox::from_extents(0.0, 0.0, 10.0, 10.0);
        let points = vec![
            (1u32, Point::new(0.5, 0.5)),
            (2, Point::new(0.6, 0.4)),
            (3, Point::new(5.5, 5.5)),
            (4, Point::new(9.9, 9.9)),
            (5, Point::new(20.0, 20.0)), // outside: ignored
        ];
        GridIndex::build(region, 1.0, &points)
    }

    #[test]
    fn build_counts_only_inside_points() {
        let g = setup();
        assert_eq!(g.points_indexed(), 4);
        assert_eq!(g.occupied_cells(), 3);
    }

    #[test]
    fn query_cell_returns_cohabitants() {
        let g = setup();
        assert_eq!(g.query_cell(&Point::new(0.1, 0.1)), vec![1, 2]);
        assert_eq!(g.query_cell(&Point::new(5.2, 5.8)), vec![3]);
        assert!(g.query_cell(&Point::new(3.0, 3.0)).is_empty());
        assert!(g.query_cell(&Point::new(50.0, 50.0)).is_empty());
    }

    #[test]
    fn disc_query_unions_cells() {
        let g = setup();
        // Radius that spans from near (0.5, 0.5) out to (5.5, 5.5).
        let ids = g.query_disc(&Point::new(3.0, 3.0), 4.0);
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn density_definition() {
        let g = setup();
        assert!((g.density() - 4.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn content_bounds_prune_is_conservative() {
        let g = setup();
        // All occupied cells live in [0,1]², [5,6]², [9,10]² — the content
        // box is their union and every stored point is inside it.
        let cb = g.content_bounds();
        for p in [
            Point::new(0.5, 0.5),
            Point::new(5.5, 5.5),
            Point::new(9.9, 9.9),
        ] {
            assert!(cb.contains(&p));
        }
        // A probe well away from any content returns empty fast.
        assert!(g.query_disc(&Point::new(-30.0, -30.0), 5.0).is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let g = setup();
        let mut scratch = QueryScratch::new();
        for (p, r) in [
            (Point::new(3.0, 3.0), 4.0),
            (Point::new(0.5, 0.5), 0.2),
            (Point::new(9.0, 9.0), 2.0),
        ] {
            let mut out = Vec::new();
            g.query_disc_into(&p, r, &mut scratch, &mut out);
            assert_eq!(out, g.query_disc(&p, r));
        }
    }

    #[test]
    fn wide_and_sparse_probe_paths_agree() {
        // Enough points that a small disc takes the sparse path while a
        // huge disc takes the posting-scan path; both must agree with a
        // brute-force union.
        let region = BBox::from_extents(0.0, 0.0, 10.0, 10.0);
        let pts: Vec<(u32, Point)> = (0..300)
            .map(|i| {
                (
                    i % 90,
                    Point::new((i % 17) as f64 * 0.6, (i % 23) as f64 * 0.43),
                )
            })
            .collect();
        let g = GridIndex::build(region, 0.5, &pts);
        for r in [0.4, 1.7, 4.0, 50.0] {
            let center = Point::new(4.0, 4.0);
            let got = g.query_disc(&center, r);
            let mut want: Vec<u32> = pts
                .iter()
                .filter(|(_, p)| {
                    region.contains(p) && {
                        let (cx, cy) = g.grid().locate_clamped(p);
                        g.grid().cell_dist2(cx, cy, &center) <= r * r
                    }
                })
                .map(|(id, _)| *id)
                .collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(got, want, "radius {r}");
        }
    }

    #[test]
    fn size_grows_with_content() {
        let region = BBox::from_extents(0.0, 0.0, 10.0, 10.0);
        let few = GridIndex::build(region, 1.0, &[(1, Point::new(1.0, 1.0))]);
        let pts: Vec<(u32, Point)> = (0..500)
            .map(|i| (i, Point::new((i % 100) as f64 / 10.0, (i / 100) as f64)))
            .collect();
        let many = GridIndex::build(region, 1.0, &pts);
        assert!(many.size_bytes() > few.size_bytes());
    }
}
