//! Per-rectangle grid index (paper Algorithm 3, line 11).
//!
//! Each non-overlapping rectangle `R_j` of a PI is cut into cells of side
//! `g_c`; every trajectory point maps to one cell and its trajectory ID is
//! stored in that cell's compressed list. Queries locate the cell of
//! `(x, y)` (or all cells within the local-search radius) and return the
//! union of the stored ID lists.

use crate::idlist::CompressedIdList;
use ppq_geo::{BBox, GridSpec, Point};
use std::collections::HashMap;

/// A grid index over one rectangle.
#[derive(Clone, Debug)]
pub struct GridIndex {
    region: BBox,
    grid: GridSpec,
    /// Sparse cell → compressed ID list.
    cells: HashMap<usize, CompressedIdList>,
    points_indexed: usize,
}

impl GridIndex {
    /// Build over `region` with cell side `gc`. Points outside the region
    /// are ignored (the caller routes points to the right rectangle).
    pub fn build(region: BBox, gc: f64, points: &[(u32, Point)]) -> GridIndex {
        assert!(!region.is_empty());
        let grid = GridSpec::covering(&region, gc);
        let mut raw: HashMap<usize, Vec<u32>> = HashMap::new();
        let mut points_indexed = 0;
        for (id, p) in points {
            if !region.contains(p) {
                continue;
            }
            let (cx, cy) = grid.locate_clamped(p);
            raw.entry(grid.flat(cx, cy)).or_default().push(*id);
            points_indexed += 1;
        }
        let cells = raw
            .into_iter()
            .map(|(cell, ids)| (cell, CompressedIdList::compress(&ids)))
            .collect();
        GridIndex {
            region,
            grid,
            cells,
            points_indexed,
        }
    }

    #[inline]
    pub fn region(&self) -> &BBox {
        &self.region
    }

    #[inline]
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of points this index covers (`N_{R_i}` in Definition 5.1).
    #[inline]
    pub fn points_indexed(&self) -> usize {
        self.points_indexed
    }

    /// Trajectory-region density (paper Definition 5.1):
    /// `d(R) = N_R / |R|`.
    pub fn density(&self) -> f64 {
        let area = self.region.area();
        if area > 0.0 {
            self.points_indexed as f64 / area
        } else {
            self.points_indexed as f64
        }
    }

    #[inline]
    pub fn covers(&self, p: &Point) -> bool {
        self.region.contains(p)
    }

    /// IDs stored in the cell containing `p` (empty when `p` is outside
    /// the region or the cell holds nothing).
    pub fn query_cell(&self, p: &Point) -> Vec<u32> {
        if !self.region.contains(p) {
            return Vec::new();
        }
        let (cx, cy) = self.grid.locate_clamped(p);
        self.cells
            .get(&self.grid.flat(cx, cy))
            .map(CompressedIdList::decompress)
            .unwrap_or_default()
    }

    /// Union of IDs in every cell intersecting the disc of radius `r`
    /// around `p` — the paper's local search (§5.2). The result is sorted
    /// and deduplicated.
    pub fn query_disc(&self, p: &Point, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        for (cx, cy) in self.grid.cells_in_disc(p, r) {
            if let Some(list) = self.cells.get(&self.grid.flat(cx, cy)) {
                out.extend(list.decompress());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Stored size: region + grid header + per-cell compressed lists.
    pub fn size_bytes(&self) -> usize {
        let header = 4 * 8 + 4 * 8; // region extents + grid spec
        header
            + self
                .cells
                .values()
                .map(|l| l.size_bytes() + 8 /* cell key */)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> GridIndex {
        let region = BBox::from_extents(0.0, 0.0, 10.0, 10.0);
        let points = vec![
            (1u32, Point::new(0.5, 0.5)),
            (2, Point::new(0.6, 0.4)),
            (3, Point::new(5.5, 5.5)),
            (4, Point::new(9.9, 9.9)),
            (5, Point::new(20.0, 20.0)), // outside: ignored
        ];
        GridIndex::build(region, 1.0, &points)
    }

    #[test]
    fn build_counts_only_inside_points() {
        let g = setup();
        assert_eq!(g.points_indexed(), 4);
        assert_eq!(g.occupied_cells(), 3);
    }

    #[test]
    fn query_cell_returns_cohabitants() {
        let g = setup();
        assert_eq!(g.query_cell(&Point::new(0.1, 0.1)), vec![1, 2]);
        assert_eq!(g.query_cell(&Point::new(5.2, 5.8)), vec![3]);
        assert!(g.query_cell(&Point::new(3.0, 3.0)).is_empty());
        assert!(g.query_cell(&Point::new(50.0, 50.0)).is_empty());
    }

    #[test]
    fn disc_query_unions_cells() {
        let g = setup();
        // Radius that spans from near (0.5, 0.5) out to (5.5, 5.5).
        let ids = g.query_disc(&Point::new(3.0, 3.0), 4.0);
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn density_definition() {
        let g = setup();
        assert!((g.density() - 4.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn size_grows_with_content() {
        let region = BBox::from_extents(0.0, 0.0, 10.0, 10.0);
        let few = GridIndex::build(region, 1.0, &[(1, Point::new(1.0, 1.0))]);
        let pts: Vec<(u32, Point)> = (0..500)
            .map(|i| (i, Point::new((i % 100) as f64 / 10.0, (i / 100) as f64)))
            .collect();
        let many = GridIndex::build(region, 1.0, &pts);
        assert!(many.size_bytes() > few.size_bytes());
    }
}
