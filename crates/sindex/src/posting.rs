//! Sorted posting-list primitives for the query path.
//!
//! Every ID list in the index (grid cells, PI cells, TPI periods) is a
//! sorted, deduplicated `u32` posting list. The seed evaluated queries by
//! concatenating decompressed lists and running `sort_unstable` +
//! `dedup` per query; the primitives here replace that with classic
//! information-retrieval machinery — two-pointer sorted intersections and
//! a generation-free, reusable bitset union — so a query allocates
//! nothing once its [`QueryScratch`] is warm and never re-sorts data that
//! is already sorted.
//!
//! All functions produce output in ascending ID order, bit-identical to
//! the `sort + dedup` they replace.

/// Number of common elements between two sorted, deduplicated lists
/// (two-pointer merge — no per-element binary search).
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Append the intersection of two sorted, deduplicated lists to `out`.
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Append the union of two sorted, deduplicated lists to `out`.
pub fn union_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Leave the union of `lists` (each sorted and deduplicated) in `out`,
/// ascending, using `tmp` as ping-pong scratch. Both buffers are cleared
/// on entry; nothing is allocated once they are warm.
///
/// Built for cross-shard merges, where the inputs are pairwise disjoint
/// (each shard owns a distinct id subset) but interleaved in id space;
/// general overlapping inputs are handled too. The fold is a sequence of
/// two-pointer [`union_into`] passes, so the output is bit-identical to
/// `concat + sort + dedup` without re-sorting already-sorted data.
pub fn union_many_into(lists: &[&[u32]], tmp: &mut Vec<u32>, out: &mut Vec<u32>) {
    union_fold_into(lists.len(), |i| lists[i], tmp, out)
}

/// [`union_many_into`] over an indexed accessor instead of a slice of
/// slices, so callers whose lists live inside larger structures (e.g.
/// one answer level of per-shard query outcomes) can merge without
/// materialising a `Vec<&[u32]>` per call.
pub fn union_fold_into<'a>(
    n: usize,
    list: impl Fn(usize) -> &'a [u32],
    tmp: &mut Vec<u32>,
    out: &mut Vec<u32>,
) {
    out.clear();
    match n {
        0 => {}
        1 => out.extend_from_slice(list(0)),
        2 => union_into(list(0), list(1), out),
        _ => {
            tmp.clear();
            union_into(list(0), list(1), tmp);
            // Each pass reads the accumulator in `tmp` and writes `out`;
            // all but the final pass swap the roles back, so the loop
            // lands the complete union in `out`.
            for i in 2..n {
                out.clear();
                union_into(tmp, list(i), out);
                if i + 1 < n {
                    std::mem::swap(tmp, out);
                }
            }
        }
    }
}

/// Visit every entry of a sorted posting dictionary whose cell lies in
/// the inclusive cell-coordinate range `(lo_x, lo_y) ..= (hi_x, hi_y)`.
///
/// `keys` holds occupied flat cell indices over `grid`, ascending (keys
/// are kept separate from their payloads so the binary searches stay
/// cache-dense). The walk picks whichever strategy touches fewer
/// entries: per-row binary-searched interval scans when the range is
/// small, or one linear pass over the dictionary when the range covers
/// more cells than the dictionary holds. `visit` receives the entry's
/// index in `keys` plus its cell coordinates; the caller applies any
/// finer test (e.g. disc distance) and fetches its payload.
pub fn walk_cells_in_range(
    grid: &ppq_geo::GridSpec,
    keys: &[u32],
    (lo_x, lo_y, hi_x, hi_y): (u32, u32, u32, u32),
    mut visit: impl FnMut(usize, u32, u32),
) {
    if keys.is_empty() || lo_x > hi_x || lo_y > hi_y {
        return;
    }
    let range_cells = (hi_x - lo_x + 1) as usize * (hi_y - lo_y + 1) as usize;
    if range_cells < keys.len() {
        // Sparse probe: walk each covered row's sorted key interval.
        for cy in lo_y..=hi_y {
            let lo = grid.flat(lo_x, cy) as u32;
            let hi = grid.flat(hi_x, cy) as u32;
            let start = keys.partition_point(|&c| c < lo);
            for (i, &cell) in keys.iter().enumerate().skip(start) {
                if cell > hi {
                    break;
                }
                let (cx, cy) = grid.unflat(cell as usize);
                debug_assert!(cx >= lo_x && cx <= hi_x);
                visit(i, cx, cy);
            }
        }
    } else {
        // Wide probe: one pass over the (smaller) dictionary.
        for (i, &cell) in keys.iter().enumerate() {
            let (cx, cy) = grid.unflat(cell as usize);
            if cx >= lo_x && cx <= hi_x && cy >= lo_y && cy <= hi_y {
                visit(i, cx, cy);
            }
        }
    }
}

/// A reusable sparse bitset over trajectory IDs for multi-list unions.
///
/// Inserting marks a bit; [`IdBitSet::drain_sorted_into`] emits the set
/// IDs in ascending order and resets only the words that were touched, so
/// clearing costs O(touched), not O(universe). The backing word array is
/// retained across queries — after the first query at a given ID range,
/// union-deduplication allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct IdBitSet {
    words: Vec<u64>,
    /// Indices of words with at least one bit set, in insertion order.
    touched: Vec<u32>,
}

impl IdBitSet {
    pub fn new() -> IdBitSet {
        IdBitSet::default()
    }

    /// Mark `id` as present.
    #[inline]
    pub fn insert(&mut self, id: u32) {
        let w = (id >> 6) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let word = &mut self.words[w];
        if *word == 0 {
            self.touched.push(w as u32);
        }
        *word |= 1u64 << (id & 63);
    }

    /// Mark every ID in `ids`.
    #[inline]
    pub fn insert_all(&mut self, ids: &[u32]) {
        for &id in ids {
            self.insert(id);
        }
    }

    /// Number of distinct IDs currently set.
    pub fn len(&self) -> usize {
        self.touched
            .iter()
            .map(|&w| self.words[w as usize].count_ones() as usize)
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Append the set IDs to `out` in ascending order, then clear the set
    /// for reuse.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<u32>) {
        self.touched.sort_unstable();
        for &w in &self.touched {
            let mut word = self.words[w as usize];
            self.words[w as usize] = 0;
            let base = w << 6;
            while word != 0 {
                out.push(base + word.trailing_zeros());
                word &= word - 1;
            }
        }
        self.touched.clear();
    }

    /// Clear without emitting.
    pub fn clear(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Reusable per-query buffers shared by every index level: the Huffman
/// byte-decode buffer, a raw-ID staging list, and the union bitset.
///
/// Mirrors the role `KMeansWorkspace` plays on the build path: create one
/// (per thread, for batched queries), reuse it across queries, and the
/// steady-state query path performs no heap allocation.
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    /// Decoded delta/varint bytes for one compressed list.
    pub bytes: Vec<u8>,
    /// Raw IDs staged before deduplication.
    pub ids: Vec<u32>,
    /// Union-dedup bitset.
    pub set: IdBitSet,
    /// Auxiliary staging (e.g. candidate region indices in the PI).
    pub aux: Vec<u32>,
}

impl QueryScratch {
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_union(lists: &[&[u32]]) -> Vec<u32> {
        let mut all: Vec<u32> = lists.iter().flat_map(|l| l.iter().copied()).collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    #[test]
    fn intersect_matches_naive() {
        let a = vec![1, 3, 5, 9, 100, 2000];
        let b = vec![2, 3, 9, 100, 101, 3000];
        assert_eq!(intersect_count(&a, &b), 3);
        let mut out = Vec::new();
        intersect_into(&a, &b, &mut out);
        assert_eq!(out, vec![3, 9, 100]);
        assert_eq!(intersect_count(&a, &[]), 0);
        assert_eq!(intersect_count(&[], &b), 0);
    }

    #[test]
    fn union_matches_naive() {
        let a = vec![1, 5, 9];
        let b = vec![2, 5, 10, 11];
        let mut out = Vec::new();
        union_into(&a, &b, &mut out);
        assert_eq!(out, naive_union(&[&a, &b]));
    }

    #[test]
    fn union_many_matches_naive() {
        let lists: Vec<Vec<u32>> = vec![
            vec![1, 5, 9],
            vec![2, 5, 10, 11],
            vec![],
            vec![0, 9, 12],
            vec![3],
        ];
        let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
        let (mut tmp, mut out) = (Vec::new(), Vec::new());
        // Every prefix of the list set, covering the 0/1/2/fold arms.
        for n in 0..=refs.len() {
            union_many_into(&refs[..n], &mut tmp, &mut out);
            assert_eq!(out, naive_union(&refs[..n]), "prefix {n}");
        }
        // Disjoint shard-style inputs: strided id classes.
        let shards: Vec<Vec<u32>> = (0..4u32)
            .map(|s| (0..100u32).map(|i| i * 4 + s).collect())
            .collect();
        let refs: Vec<&[u32]> = shards.iter().map(Vec::as_slice).collect();
        union_many_into(&refs, &mut tmp, &mut out);
        assert_eq!(out, (0..400u32).collect::<Vec<_>>());
    }

    #[test]
    fn bitset_drains_sorted_and_resets() {
        let mut set = IdBitSet::new();
        // Insert out of order, across distant words, with duplicates.
        for &id in &[900_000u32, 3, 64, 65, 3, 127, 900_000, 0] {
            set.insert(id);
        }
        assert_eq!(set.len(), 6);
        let mut out = Vec::new();
        set.drain_sorted_into(&mut out);
        assert_eq!(out, vec![0, 3, 64, 65, 127, 900_000]);
        // Reusable: empty after drain, next round unaffected.
        assert!(set.is_empty());
        set.insert_all(&[7, 5]);
        out.clear();
        set.drain_sorted_into(&mut out);
        assert_eq!(out, vec![5, 7]);
    }

    #[test]
    fn bitset_union_equals_naive_on_random_lists() {
        // Deterministic pseudo-random lists (splitmix-style).
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let lists: Vec<Vec<u32>> = (0..8)
            .map(|_| {
                let mut l: Vec<u32> = (0..200).map(|_| next() % 10_000).collect();
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
        let mut set = IdBitSet::new();
        for l in &refs {
            set.insert_all(l);
        }
        let mut out = Vec::new();
        set.drain_sorted_into(&mut out);
        assert_eq!(out, naive_union(&refs));
    }

    #[test]
    fn bitset_clear_without_emit() {
        let mut set = IdBitSet::new();
        set.insert_all(&[1, 2, 3]);
        set.clear();
        assert!(set.is_empty());
        let mut out = Vec::new();
        set.drain_sorted_into(&mut out);
        assert!(out.is_empty());
    }
}
