//! Adaptive region quadtree — the spatial index underlying the TrajStore
//! baseline (Cudre-Mauroux et al., ICDE 2010).
//!
//! TrajStore keeps an adaptive quadtree over space whose leaf cells hold
//! the (sub-)trajectory points falling inside them; cells split when they
//! overflow and sibling groups merge back when they underflow. The paper
//! reproduces its behaviour through this structure plus per-cell
//! codebooks in `ppq-baselines`.

use ppq_geo::{BBox, Point};

/// One stored point: trajectory id, timestep, position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    pub id: u32,
    pub t: u32,
    pub pos: Point,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(Vec<Entry>),
    Internal {
        children: Box<[Node; 4]>,
        /// Bounding box of every entry position stored beneath this node —
        /// maintained on insert, used to prune query descent (an internal
        /// node whose content box misses the query cannot contribute).
        content: BBox,
    },
}

/// Adaptive quadtree with split-on-overflow and merge-on-underflow.
#[derive(Clone, Debug)]
pub struct RegionQuadtree {
    bounds: BBox,
    root: Node,
    max_per_leaf: usize,
    max_depth: u32,
    len: usize,
    splits: u64,
    merges: u64,
}

/// Which quadrant of `b` contains `p` (SW, SE, NW, NE order as
/// [`BBox::quadrants`]).
fn quadrant_of(b: &BBox, p: &Point) -> usize {
    let c = b.center();
    match (p.x >= c.x, p.y >= c.y) {
        (false, false) => 0,
        (true, false) => 1,
        (false, true) => 2,
        (true, true) => 3,
    }
}

impl RegionQuadtree {
    pub fn new(bounds: BBox, max_per_leaf: usize) -> Self {
        assert!(!bounds.is_empty() && max_per_leaf > 0);
        RegionQuadtree {
            bounds,
            root: Node::Leaf(Vec::new()),
            max_per_leaf,
            max_depth: 24,
            len: 0,
            splits: 0,
            merges: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn bounds(&self) -> &BBox {
        &self.bounds
    }

    /// Number of split operations performed (TrajStore's index-maintenance
    /// cost driver).
    #[inline]
    pub fn splits(&self) -> u64 {
        self.splits
    }

    #[inline]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Insert an entry. Positions outside the tree bounds are clamped to
    /// the boundary (TrajStore assumes a known spatial universe).
    pub fn insert(&mut self, mut e: Entry) {
        e.pos = Point::new(
            e.pos.x.clamp(self.bounds.min.x, self.bounds.max.x),
            e.pos.y.clamp(self.bounds.min.y, self.bounds.max.y),
        );
        let (max_per_leaf, max_depth) = (self.max_per_leaf, self.max_depth);
        let mut splits = 0;
        Self::insert_rec(
            &mut self.root,
            &self.bounds,
            e,
            max_per_leaf,
            max_depth,
            &mut splits,
        );
        self.splits += splits;
        self.len += 1;
    }

    fn insert_rec(
        node: &mut Node,
        bounds: &BBox,
        e: Entry,
        max_per_leaf: usize,
        depth_left: u32,
        splits: &mut u64,
    ) {
        match node {
            Node::Leaf(entries) => {
                entries.push(e);
                if entries.len() > max_per_leaf && depth_left > 0 {
                    // Split: redistribute into four children.
                    let moved = std::mem::take(entries);
                    *splits += 1;
                    let mut content = BBox::EMPTY;
                    let mut children: [Vec<Entry>; 4] =
                        [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
                    for entry in moved {
                        content.expand(&entry.pos);
                        children[quadrant_of(bounds, &entry.pos)].push(entry);
                    }
                    let [sw, se, nw, ne] = children;
                    *node = Node::Internal {
                        children: Box::new([
                            Node::Leaf(sw),
                            Node::Leaf(se),
                            Node::Leaf(nw),
                            Node::Leaf(ne),
                        ]),
                        content,
                    };
                    // A pathological pile-up on one point could still
                    // overflow; the depth budget bounds the recursion.
                    if let Node::Internal { children: kids, .. } = node {
                        let qs = bounds.quadrants();
                        for (i, kid) in kids.iter_mut().enumerate() {
                            if let Node::Leaf(v) = kid {
                                if v.len() > max_per_leaf && depth_left > 1 {
                                    // Re-run the overflow check by
                                    // reinserting the last element.
                                    let last = v.pop().unwrap();
                                    Self::insert_rec(
                                        kid,
                                        &qs[i],
                                        last,
                                        max_per_leaf,
                                        depth_left - 1,
                                        splits,
                                    );
                                }
                            }
                        }
                    }
                }
            }
            Node::Internal { children, content } => {
                content.expand(&e.pos);
                let q = quadrant_of(bounds, &e.pos);
                let qs = bounds.quadrants();
                Self::insert_rec(
                    &mut children[q],
                    &qs[q],
                    e,
                    max_per_leaf,
                    depth_left - 1,
                    splits,
                );
            }
        }
    }

    /// Merge pass: any internal node whose four children are leaves with a
    /// combined population ≤ `threshold` collapses back into one leaf.
    /// Returns the number of merges performed.
    pub fn merge_pass(&mut self, threshold: usize) -> u64 {
        let mut merges = 0;
        Self::merge_rec(&mut self.root, threshold, &mut merges);
        self.merges += merges;
        merges
    }

    fn merge_rec(node: &mut Node, threshold: usize, merges: &mut u64) {
        if let Node::Internal { children, .. } = node {
            for child in children.iter_mut() {
                Self::merge_rec(child, threshold, merges);
            }
            let all_leaves = children.iter().all(|c| matches!(c, Node::Leaf(_)));
            if all_leaves {
                let total: usize = children
                    .iter()
                    .map(|c| match c {
                        Node::Leaf(v) => v.len(),
                        _ => 0,
                    })
                    .sum();
                if total <= threshold {
                    let mut merged = Vec::with_capacity(total);
                    for c in children.iter_mut() {
                        if let Node::Leaf(v) = c {
                            merged.append(v);
                        }
                    }
                    *node = Node::Leaf(merged);
                    *merges += 1;
                }
            }
        }
    }

    /// The leaf cell containing `p`: its bounds and entries.
    pub fn leaf_at(&self, p: &Point) -> (BBox, &[Entry]) {
        let mut bounds = self.bounds;
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(entries) => return (bounds, entries),
                Node::Internal { children, .. } => {
                    let q = quadrant_of(&bounds, p);
                    bounds = bounds.quadrants()[q];
                    node = &children[q];
                }
            }
        }
    }

    /// Visit every leaf with its bounds.
    pub fn for_each_leaf<'a>(&'a self, mut f: impl FnMut(&BBox, &'a [Entry])) {
        fn walk<'a>(node: &'a Node, bounds: &BBox, f: &mut impl FnMut(&BBox, &'a [Entry])) {
            match node {
                Node::Leaf(entries) => f(bounds, entries),
                Node::Internal { children, .. } => {
                    let qs = bounds.quadrants();
                    for (i, c) in children.iter().enumerate() {
                        walk(c, &qs[i], f);
                    }
                }
            }
        }
        walk(&self.root, &self.bounds, &mut f);
    }

    pub fn num_leaves(&self) -> usize {
        let mut n = 0;
        self.for_each_leaf(|_, _| n += 1);
        n
    }

    /// Non-empty leaves intersecting the `query` rectangle.
    ///
    /// Descends only into quadrants whose bounds intersect `query` and
    /// prunes whole subtrees whose *content* bounding box (maintained on
    /// insert) misses it — the seed walked every leaf of the tree per
    /// query. Leaves holding no entries are skipped (they cannot
    /// contribute an answer).
    pub fn leaves_intersecting<'a>(&'a self, query: &BBox) -> Vec<(BBox, &'a [Entry])> {
        fn walk<'a>(
            node: &'a Node,
            bounds: &BBox,
            query: &BBox,
            out: &mut Vec<(BBox, &'a [Entry])>,
        ) {
            match node {
                Node::Leaf(entries) => {
                    if !entries.is_empty() && bounds.intersects(query) {
                        out.push((*bounds, entries));
                    }
                }
                Node::Internal { children, content } => {
                    if !content.intersects(query) {
                        return;
                    }
                    let qs = bounds.quadrants();
                    for (i, c) in children.iter().enumerate() {
                        if qs[i].intersects(query) {
                            walk(c, &qs[i], query, out);
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &self.bounds, query, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, x: f64, y: f64) -> Entry {
        Entry {
            id,
            t: 0,
            pos: Point::new(x, y),
        }
    }

    fn tree() -> RegionQuadtree {
        RegionQuadtree::new(BBox::from_extents(0.0, 0.0, 100.0, 100.0), 4)
    }

    #[test]
    fn splits_on_overflow() {
        let mut q = tree();
        for i in 0..10 {
            q.insert(entry(i, 10.0 + i as f64, 10.0));
        }
        assert!(q.splits() > 0);
        assert!(q.num_leaves() > 1);
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn leaf_at_finds_entries() {
        let mut q = tree();
        q.insert(entry(1, 10.0, 10.0));
        q.insert(entry(2, 90.0, 90.0));
        let (b, entries) = q.leaf_at(&Point::new(10.0, 10.0));
        assert!(b.contains(&Point::new(10.0, 10.0)));
        assert!(entries.iter().any(|e| e.id == 1));
    }

    #[test]
    fn all_points_preserved_across_splits() {
        let mut q = tree();
        let n = 200;
        for i in 0..n {
            let x = (i as f64 * 37.0) % 100.0;
            let y = (i as f64 * 53.0) % 100.0;
            q.insert(entry(i, x, y));
        }
        let mut seen = 0;
        q.for_each_leaf(|b, entries| {
            for e in entries {
                // Entries live inside their leaf bounds (closed-ish test).
                assert!(b.inflate(1e-9).contains(&e.pos));
                seen += 1;
            }
        });
        assert_eq!(seen, n as usize);
    }

    #[test]
    fn merge_collapses_sparse_children() {
        let mut q = tree();
        for i in 0..10 {
            q.insert(entry(i, 10.0 + i as f64, 10.0));
        }
        let leaves_before = q.num_leaves();
        let merges = q.merge_pass(1000);
        assert!(merges > 0);
        assert!(q.num_leaves() < leaves_before);
        // All entries still reachable.
        let mut seen = 0;
        q.for_each_leaf(|_, e| seen += e.len());
        assert_eq!(seen, 10);
    }

    #[test]
    fn out_of_bounds_points_clamped() {
        let mut q = tree();
        q.insert(entry(1, -50.0, 500.0));
        let (_, entries) = q.leaf_at(&Point::new(0.0, 100.0));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].pos, Point::new(0.0, 100.0));
    }

    #[test]
    fn leaves_intersecting_query() {
        let mut q = tree();
        for i in 0..50 {
            q.insert(entry(
                i,
                (i % 10) as f64 * 10.0 + 5.0,
                (i / 10) as f64 * 10.0 + 5.0,
            ));
        }
        let hits = q.leaves_intersecting(&BBox::from_extents(0.0, 0.0, 30.0, 30.0));
        assert!(!hits.is_empty());
        for (b, _) in &hits {
            assert!(b.intersects(&BBox::from_extents(0.0, 0.0, 30.0, 30.0)));
        }
    }

    #[test]
    fn pruned_descent_matches_full_walk() {
        let mut q = tree();
        for i in 0..400 {
            q.insert(entry(
                i,
                (i as f64 * 13.7) % 100.0,
                (i as f64 * 29.3) % 100.0,
            ));
        }
        for query in [
            BBox::from_extents(10.0, 10.0, 30.0, 30.0),
            BBox::from_extents(0.0, 0.0, 100.0, 100.0),
            BBox::from_extents(95.0, 95.0, 99.0, 99.0),
            BBox::from_extents(200.0, 200.0, 300.0, 300.0),
        ] {
            let pruned = q.leaves_intersecting(&query);
            // Soundness: no entry whose position lies inside the query may
            // be pruned away.
            let mut got: Vec<u32> = pruned
                .iter()
                .flat_map(|(_, e)| e.iter())
                .filter(|e| query.contains(&e.pos))
                .map(|e| e.id)
                .collect();
            got.sort_unstable();
            let mut want: Vec<u32> = Vec::new();
            q.for_each_leaf(|_, e| {
                want.extend(e.iter().filter(|e| query.contains(&e.pos)).map(|e| e.id))
            });
            want.sort_unstable();
            assert_eq!(got, want, "query {query:?}");
            // Every returned leaf really intersects the query and holds
            // at least one entry.
            for (b, e) in &pruned {
                assert!(b.intersects(&query) && !e.is_empty());
            }
        }
    }

    #[test]
    fn identical_points_respect_depth_cap() {
        let mut q = RegionQuadtree::new(BBox::from_extents(0.0, 0.0, 1.0, 1.0), 2);
        for i in 0..100 {
            q.insert(entry(i, 0.5, 0.5));
        }
        assert_eq!(q.len(), 100);
        // Tree must not have exploded unboundedly.
        assert!(q.num_leaves() < 10_000);
    }
}
