//! Delta + Huffman compressed trajectory-ID lists (paper §5.1).
//!
//! Grid cells map to lists of trajectory IDs. The lists are sorted, delta
//! encoded (gaps), the gaps LEB128-byte-split, and the byte stream Huffman
//! coded. This is the storage representation whose size shows up in the
//! paper's index-size tables (7–9).

use crate::huffman::{byte_histogram, Huffman};

/// A compressed, sorted list of u32 IDs.
#[derive(Clone, Debug)]
pub struct CompressedIdList {
    bits: Vec<u8>,
    bit_len: usize,
    n_bytes: usize,
    len: usize,
    huffman: Huffman,
}

/// LEB128-encode a u32 into `out`.
fn write_varint(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 u32 from `data` starting at `pos`.
fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = data[*pos];
        *pos += 1;
        v |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    v
}

impl CompressedIdList {
    /// Compress a list of IDs (any order; stored sorted + deduplicated).
    pub fn compress(ids: &[u32]) -> CompressedIdList {
        let mut sorted: Vec<u32> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut bytes = Vec::with_capacity(sorted.len() + 4);
        let mut prev = 0u32;
        for (i, &id) in sorted.iter().enumerate() {
            let delta = if i == 0 { id } else { id - prev };
            write_varint(delta, &mut bytes);
            prev = id;
        }
        if bytes.is_empty() {
            bytes.push(0); // keep the Huffman alphabet non-empty
        }
        let huffman = Huffman::from_frequencies(&byte_histogram(&bytes));
        let (bits, bit_len) = huffman.encode(&bytes);
        CompressedIdList {
            bits,
            bit_len,
            n_bytes: bytes.len(),
            len: sorted.len(),
            huffman,
        }
    }

    /// Number of IDs stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decompress back into the sorted ID list.
    pub fn decompress(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.decompress_into(&mut Vec::new(), &mut out);
        out
    }

    /// Decompress, appending the sorted IDs to `out`.
    ///
    /// `scratch` receives the intermediate Huffman-decoded bytes; passing a
    /// reused buffer (for example [`crate::QueryScratch::bytes`]) makes the
    /// hot query loop allocation-free after warm-up.
    pub fn decompress_into(&self, scratch: &mut Vec<u8>, out: &mut Vec<u32>) {
        if self.len == 0 {
            return;
        }
        scratch.clear();
        self.huffman
            .decode_into(&self.bits, self.bit_len, self.n_bytes, scratch);
        out.reserve(self.len);
        let mut pos = 0usize;
        let mut acc = 0u32;
        for i in 0..self.len {
            let delta = read_varint(scratch, &mut pos);
            acc = if i == 0 { delta } else { acc + delta };
            out.push(acc);
        }
    }

    /// Stored size: bit payload + Huffman table + counters.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() + self.huffman.table_bytes() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sorted() {
        let ids = vec![3, 17, 19, 200, 201, 202, 90000];
        let c = CompressedIdList::compress(&ids);
        assert_eq!(c.decompress(), ids);
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn roundtrip_unsorted_dedups() {
        let ids = vec![5, 1, 5, 3, 1];
        let c = CompressedIdList::compress(&ids);
        assert_eq!(c.decompress(), vec![1, 3, 5]);
    }

    #[test]
    fn empty_list() {
        let c = CompressedIdList::compress(&[]);
        assert!(c.is_empty());
        assert!(c.decompress().is_empty());
    }

    #[test]
    fn single_id() {
        let c = CompressedIdList::compress(&[123456]);
        assert_eq!(c.decompress(), vec![123456]);
    }

    #[test]
    fn dense_runs_compress_well() {
        // Consecutive IDs: deltas are all 1 → near-zero entropy.
        let ids: Vec<u32> = (1000..3000).collect();
        let c = CompressedIdList::compress(&ids);
        let raw = ids.len() * 4;
        assert!(
            c.size_bytes() < raw / 4,
            "dense list barely compressed: {} vs raw {}",
            c.size_bytes(),
            raw
        );
        assert_eq!(c.decompress(), ids);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u32, 1, 127, 128, 300, 16383, 16384, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn large_sparse_ids() {
        let ids: Vec<u32> = (0..500).map(|i| i * 7919 + 13).collect();
        let c = CompressedIdList::compress(&ids);
        assert_eq!(c.decompress(), ids);
    }
}
