//! Rectangle overlap removal (paper Algorithm 3, lines 6–8).
//!
//! When a partition's minimum bounding rectangle overlaps rectangles
//! already in the region list, the overlapping area is removed and the
//! remaining rectilinear polygon is split into non-overlapping rectangles.
//! We implement this as iterated rectangle subtraction: `R \ R'` is at
//! most four axis-aligned pieces (left, right, bottom, top bands), and the
//! pieces are subtracted against the remaining obstacles in turn — a
//! guillotine variant of Gourley & Green's polygon-to-rectangle
//! conversion with the same output property (a set of disjoint rectangles
//! covering exactly `R` minus the obstacles).

use ppq_geo::BBox;

/// Subtract `clip` from `r`, returning up to four disjoint rectangles
/// covering `r \ clip`. Zero-area slivers are dropped.
pub fn subtract(r: &BBox, clip: &BBox) -> Vec<BBox> {
    let mut out = Vec::with_capacity(4);
    subtract_into(r, clip, &mut out);
    out
}

/// [`subtract`] appending into `out` — the allocation-free form used by
/// [`remove_overlap`]'s ping-pong loop.
pub fn subtract_into(r: &BBox, clip: &BBox, out: &mut Vec<BBox>) {
    let Some(i) = r.intersection(clip) else {
        out.push(*r);
        return;
    };
    if i.area() == 0.0 {
        // Touching edges only — nothing material removed.
        out.push(*r);
        return;
    }
    let mut push = |min_x: f64, min_y: f64, max_x: f64, max_y: f64| {
        if max_x - min_x > 0.0 && max_y - min_y > 0.0 {
            out.push(BBox::from_extents(min_x, min_y, max_x, max_y));
        }
    };
    // Left band (full height of r).
    push(r.min.x, r.min.y, i.min.x, r.max.y);
    // Right band (full height of r).
    push(i.max.x, r.min.y, r.max.x, r.max.y);
    // Bottom band (between the vertical bands).
    push(i.min.x, r.min.y, i.max.x, i.min.y);
    // Top band (between the vertical bands).
    push(i.min.x, i.max.y, i.max.x, r.max.y);
}

/// Remove from `rect` everything covered by `existing`, returning disjoint
/// rectangles that cover exactly the uncovered remainder (possibly empty).
///
/// Obstacles that do not intersect `rect` are skipped up front, and the
/// piece lists ping-pong between two buffers, so a round costs one
/// `subtract_into` per *materially overlapping* obstacle rather than a
/// fresh allocation per (piece, obstacle) pair — `Pi::build` calls this
/// once per new MBR against every existing region.
pub fn remove_overlap(rect: &BBox, existing: &[BBox]) -> Vec<BBox> {
    let mut pieces = vec![*rect];
    let mut next: Vec<BBox> = Vec::new();
    for obstacle in existing {
        if pieces.is_empty() {
            break;
        }
        // Pruning: an obstacle outside the original rect cannot clip any
        // piece (every piece is ⊆ rect).
        if !obstacle.intersects(rect) {
            continue;
        }
        next.clear();
        for piece in &pieces {
            subtract_into(piece, obstacle, &mut next);
        }
        std::mem::swap(&mut pieces, &mut next);
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_geo::Point;

    fn bb(x0: f64, y0: f64, x1: f64, y1: f64) -> BBox {
        BBox::from_extents(x0, y0, x1, y1)
    }

    fn total_area(rects: &[BBox]) -> f64 {
        rects.iter().map(BBox::area).sum()
    }

    fn assert_disjoint(rects: &[BBox]) {
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                if let Some(inter) = a.intersection(b) {
                    assert!(
                        inter.area() < 1e-12,
                        "pieces overlap: {a:?} ∩ {b:?} = {inter:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_rect_untouched() {
        let r = bb(0.0, 0.0, 1.0, 1.0);
        let pieces = remove_overlap(&r, &[bb(5.0, 5.0, 6.0, 6.0)]);
        assert_eq!(pieces, vec![r]);
    }

    #[test]
    fn fully_covered_vanishes() {
        let r = bb(1.0, 1.0, 2.0, 2.0);
        let pieces = remove_overlap(&r, &[bb(0.0, 0.0, 3.0, 3.0)]);
        assert!(pieces.is_empty());
    }

    #[test]
    fn corner_overlap_produces_l_shape() {
        // Paper Figure 5a: R2 overlaps R1, remainder splits into pieces.
        let r = bb(0.0, 0.0, 4.0, 4.0);
        let obstacle = bb(2.0, 2.0, 6.0, 6.0);
        let pieces = remove_overlap(&r, &[obstacle]);
        assert_disjoint(&pieces);
        // Remaining area = 16 - 4 (the 2×2 overlapped corner).
        assert!((total_area(&pieces) - 12.0).abs() < 1e-12);
        // No piece intersects the obstacle.
        for p in &pieces {
            assert!(p.intersection(&obstacle).is_none_or(|i| i.area() < 1e-12));
        }
    }

    #[test]
    fn hole_in_the_middle_gives_four_bands() {
        let r = bb(0.0, 0.0, 10.0, 10.0);
        let hole = bb(4.0, 4.0, 6.0, 6.0);
        let pieces = subtract(&r, &hole);
        assert_eq!(pieces.len(), 4);
        assert_disjoint(&pieces);
        assert!((total_area(&pieces) - 96.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_obstacles() {
        let r = bb(0.0, 0.0, 10.0, 2.0);
        let obstacles = [
            bb(1.0, 0.0, 3.0, 2.0),
            bb(5.0, 0.0, 7.0, 2.0),
            bb(6.0, 0.0, 8.0, 2.0),
        ];
        let pieces = remove_overlap(&r, &obstacles);
        assert_disjoint(&pieces);
        // Remaining columns: [0,1], [3,5], [8,10] → area 2+4+4 = 10.
        assert!((total_area(&pieces) - 10.0).abs() < 1e-12);
        // Every uncovered sample point is in exactly one piece.
        for xi in 0..100 {
            let x = xi as f64 * 0.1 + 0.05;
            let p = Point::new(x, 1.0);
            let in_obstacle = obstacles.iter().any(|o| o.contains(&p));
            let covering = pieces.iter().filter(|r| r.contains(&p)).count();
            if !in_obstacle {
                assert!(covering >= 1, "point {p:?} lost");
            } else {
                assert_eq!(covering, 0, "point {p:?} double-covered");
            }
        }
    }

    #[test]
    fn touching_edges_do_not_split() {
        let r = bb(0.0, 0.0, 1.0, 1.0);
        let pieces = remove_overlap(&r, &[bb(1.0, 0.0, 2.0, 1.0)]);
        assert_eq!(pieces, vec![r]);
    }
}
