//! Spatial-index substrate for PPQ-Trajectory.
//!
//! The temporal partition index (paper §5.1) composes four pieces that
//! live here because they are generic spatial machinery rather than part
//! of the PPQ contribution itself:
//!
//! * [`overlap`] — decompose a new rectangle minus existing ones into
//!   non-overlapping rectangles (`remove_overlap`, Algorithm 3 line 7,
//!   after Gourley & Green's polygon-to-rectangle conversion).
//! * [`grid_index`] — the per-rectangle uniform grid mapping points to
//!   cells and cells to compressed trajectory-ID lists.
//! * [`huffman`] / [`idlist`] — delta + canonical-Huffman compression of
//!   the per-cell ID lists ("we compress trajectory IDs mapped to the grid
//!   cell by delta encoding and Huffman codes", §5.1).
//! * [`region_quadtree`] — the adaptive spatial quadtree used by the
//!   TrajStore baseline (split on overflow, merge on underflow).

pub mod grid_index;
pub mod huffman;
pub mod idlist;
pub mod overlap;
pub mod region_quadtree;

pub use grid_index::GridIndex;
pub use huffman::Huffman;
pub use idlist::CompressedIdList;
pub use overlap::remove_overlap;
pub use region_quadtree::RegionQuadtree;
