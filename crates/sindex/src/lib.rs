//! Spatial-index substrate for PPQ-Trajectory.
//!
//! The temporal partition index (paper §5.1, "A new method to index and
//! store spatio-temporal data" tradition) composes five pieces that live
//! here because they are generic spatial machinery rather than part of
//! the PPQ contribution itself:
//!
//! * [`overlap`] — decompose a new rectangle minus existing ones into
//!   non-overlapping rectangles (`remove_overlap`, Algorithm 3 lines 6–8,
//!   after Gourley & Green's polygon-to-rectangle conversion).
//! * [`grid_index`] — the per-rectangle uniform grid mapping points to
//!   cells and cells to compressed trajectory-ID lists (Algorithm 3
//!   line 11), stored as a sorted posting dictionary with precomputed
//!   occupied-cell bounds for candidate pruning.
//! * [`huffman`] / [`idlist`] — delta + canonical-Huffman compression of
//!   the per-cell ID lists ("we compress trajectory IDs mapped to the grid
//!   cell by delta encoding and Huffman codes", §5.1) — the sizes that
//!   show up in the paper's index-size Tables 7–9.
//! * [`posting`] — sorted/bitset posting-list unions and intersections
//!   plus the reusable [`QueryScratch`], the allocation-free machinery
//!   behind the STRQ/TPQ query path (§5.2).
//! * [`region_quadtree`] — the adaptive spatial quadtree used by the
//!   TrajStore baseline (split on overflow, merge on underflow), with
//!   content-bounding-box pruned rectangle queries.

pub mod grid_index;
pub mod huffman;
pub mod idlist;
pub mod overlap;
pub mod posting;
pub mod region_quadtree;

pub use grid_index::GridIndex;
pub use huffman::Huffman;
pub use idlist::CompressedIdList;
pub use overlap::remove_overlap;
pub use posting::{IdBitSet, QueryScratch};
pub use region_quadtree::RegionQuadtree;
