//! Canonical Huffman coding over bytes.
//!
//! Used to compress the delta-encoded trajectory-ID lists of grid cells
//! (paper §5.1 cites the delta + Huffman approach of the Torch search
//! engine). The implementation is a standard length-limited-free canonical
//! Huffman: build the code-length table from frequencies, assign canonical
//! codes, encode/decode bit streams.

use std::collections::BinaryHeap;

/// A canonical Huffman code over byte symbols.
#[derive(Clone, Debug)]
pub struct Huffman {
    /// Code length per symbol (0 = unused symbol).
    lengths: [u8; 256],
    /// Canonical code value per symbol (valid when length > 0).
    codes: [u32; 256],
    /// Symbols sorted by (length, symbol) — the canonical order.
    sorted_symbols: Vec<u8>,
    /// Per length `l`: the canonical code of the first symbol of that
    /// length (`u32::MAX` when no symbol has length `l`).
    first_code: [u32; MAX_CODE_LEN + 1],
    /// Per length `l`: index into `sorted_symbols` of that first symbol.
    first_index: [u16; MAX_CODE_LEN + 1],
    /// Per length `l`: number of symbols with that length.
    count: [u16; MAX_CODE_LEN + 1],
}

/// Codes never exceed the alphabet-size bound (≤ 255 merges), but the
/// decoder also guards the stream, so a generous cap is fine.
const MAX_CODE_LEN: usize = 32;

impl Huffman {
    /// Build from symbol frequencies (usually a histogram of the payload).
    /// Symbols with zero frequency get no code. At least one symbol must
    /// have nonzero frequency.
    pub fn from_frequencies(freq: &[u64; 256]) -> Huffman {
        #[derive(PartialEq, Eq)]
        struct Node {
            weight: u64,
            id: usize, // tie-break for determinism
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for min-heap.
                other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
            }
        }
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let used: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
        assert!(
            !used.is_empty(),
            "cannot build a Huffman code with no symbols"
        );

        let mut lengths = [0u8; 256];
        if used.len() == 1 {
            // Degenerate single-symbol alphabet: one-bit code.
            lengths[used[0]] = 1;
        } else {
            // Build the tree over (weight, id) nodes; parents get fresh ids.
            let mut heap = BinaryHeap::new();
            // children[id] = Some((left, right)) for internal nodes.
            let mut children: Vec<Option<(usize, usize)>> = vec![None; used.len()];
            let mut weights: Vec<u64> = Vec::with_capacity(used.len() * 2);
            for (i, &s) in used.iter().enumerate() {
                weights.push(freq[s]);
                heap.push(Node {
                    weight: freq[s],
                    id: i,
                });
            }
            while heap.len() > 1 {
                let a = heap.pop().unwrap();
                let b = heap.pop().unwrap();
                let id = weights.len();
                weights.push(a.weight + b.weight);
                children.push(Some((a.id, b.id)));
                heap.push(Node {
                    weight: a.weight + b.weight,
                    id,
                });
            }
            // Depth-first traversal to get code lengths.
            let root = heap.pop().unwrap().id;
            let mut stack = vec![(root, 0u8)];
            while let Some((id, depth)) = stack.pop() {
                match children.get(id).copied().flatten() {
                    Some((l, r)) => {
                        stack.push((l, depth + 1));
                        stack.push((r, depth + 1));
                    }
                    None => lengths[used[id]] = depth.max(1),
                }
            }
        }
        Self::from_lengths(lengths)
    }

    /// Build the canonical code from a code-length table.
    pub fn from_lengths(lengths: [u8; 256]) -> Huffman {
        // Canonical ordering: by (length, symbol).
        let mut sorted_symbols: Vec<u8> =
            (0..=255u8).filter(|&s| lengths[s as usize] > 0).collect();
        sorted_symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let mut codes = [0u32; 256];
        let mut first_code = [u32::MAX; MAX_CODE_LEN + 1];
        let mut first_index = [0u16; MAX_CODE_LEN + 1];
        let mut count = [0u16; MAX_CODE_LEN + 1];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for (i, &s) in sorted_symbols.iter().enumerate() {
            let len = lengths[s as usize];
            code <<= len - prev_len;
            codes[s as usize] = code;
            // Canonical codes of equal length are consecutive, so recording
            // the first (code, symbol index) per length gives an O(1)
            // decode step: symbol = sorted[first_index + (code - first_code)].
            if first_code[len as usize] == u32::MAX {
                first_code[len as usize] = code;
                first_index[len as usize] = i as u16;
            }
            count[len as usize] += 1;
            code += 1;
            prev_len = len;
        }
        Huffman {
            lengths,
            codes,
            sorted_symbols,
            first_code,
            first_index,
            count,
        }
    }

    /// Encode `data`; returns the bit stream and its exact bit length.
    pub fn encode(&self, data: &[u8]) -> (Vec<u8>, usize) {
        let mut out = Vec::with_capacity(data.len() / 2 + 1);
        let mut bitpos = 0usize;
        for &b in data {
            let len = self.lengths[b as usize];
            assert!(len > 0, "symbol {b} has no code");
            let code = self.codes[b as usize];
            // MSB-first within the code.
            for k in (0..len).rev() {
                let bit = (code >> k) & 1;
                if bitpos.is_multiple_of(8) {
                    out.push(0);
                }
                if bit == 1 {
                    *out.last_mut().unwrap() |= 1 << (7 - (bitpos % 8));
                }
                bitpos += 1;
            }
        }
        (out, bitpos)
    }

    /// Decode `n` symbols from a bit stream produced by [`Self::encode`].
    pub fn decode(&self, bits: &[u8], bit_len: usize, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        self.decode_into(bits, bit_len, n, &mut out);
        out
    }

    /// Decode `n` symbols, appending to `out` — the allocation-free form
    /// used by the query path (pass a reused scratch buffer).
    pub fn decode_into(&self, bits: &[u8], bit_len: usize, n: usize, out: &mut Vec<u8>) {
        out.reserve(n);
        let mut pos = 0usize;
        // Canonical decode: accumulate bits; at each length the codes are
        // consecutive starting at `first_code[len]`, so membership is one
        // subtraction + compare (no per-symbol search).
        for _ in 0..n {
            let mut code = 0u32;
            let mut len = 0usize;
            loop {
                assert!(pos < bit_len, "bit stream exhausted");
                let bit = (bits[pos / 8] >> (7 - (pos % 8))) & 1;
                pos += 1;
                code = (code << 1) | bit as u32;
                len += 1;
                let offset = code.wrapping_sub(self.first_code[len]);
                if offset < self.count[len] as u32 {
                    out.push(self.sorted_symbols[self.first_index[len] as usize + offset as usize]);
                    break;
                }
                assert!(len < MAX_CODE_LEN, "corrupt Huffman stream");
            }
        }
    }

    /// Serialized size of the code table: one length byte per used symbol
    /// plus the symbol list.
    pub fn table_bytes(&self) -> usize {
        self.sorted_symbols.len() * 2 + 2
    }
}

/// Histogram helper.
pub fn byte_histogram(data: &[u8]) -> [u64; 256] {
    let mut h = [0u64; 256];
    for &b in data {
        h[b as usize] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let h = Huffman::from_frequencies(&byte_histogram(data));
        let (bits, len) = h.encode(data);
        let back = h.decode(&bits, len, data.len());
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(b"abracadabra");
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[42u8; 100]);
    }

    #[test]
    fn roundtrip_two_symbols() {
        roundtrip(&[0, 1, 0, 0, 1, 0, 1, 1, 1, 0]);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros: entropy ≈ 0.47 bits/symbol — Huffman should beat 8.
        let mut data = vec![0u8; 900];
        data.extend(std::iter::repeat_n(7u8, 50));
        data.extend(std::iter::repeat_n(200u8, 50));
        let h = Huffman::from_frequencies(&byte_histogram(&data));
        let (bits, len) = h.encode(&data);
        assert!(
            len < data.len() * 8 / 4,
            "no compression: {len} bits for {} bytes",
            data.len()
        );
        assert_eq!(h.decode(&bits, len, data.len()), data);
    }

    #[test]
    fn uniform_distribution_roundtrips() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        roundtrip(&data);
    }

    #[test]
    fn deterministic_codes() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let h1 = Huffman::from_frequencies(&byte_histogram(data));
        let h2 = Huffman::from_frequencies(&byte_histogram(data));
        assert_eq!(h1.encode(data).0, h2.encode(data).0);
    }

    #[test]
    #[should_panic(expected = "no symbols")]
    fn empty_frequencies_panic() {
        Huffman::from_frequencies(&[0u64; 256]);
    }
}
