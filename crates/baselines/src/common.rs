//! Shared baseline-summary representation.
//!
//! Every baseline reduces to "a reconstructed position per point, plus a
//! TPI over those positions" — which is exactly the [`ReconIndex`]
//! contract the core query engine evaluates. `BaselineSummary` carries
//! that plus the bookkeeping the experiment tables need (size, codewords,
//! build time).

use ppq_core::query::ReconIndex;
use ppq_geo::{coords, Point};
use ppq_tpi::{Tpi, TpiConfig};
use ppq_traj::{Dataset, TrajId};
use std::time::Duration;

/// A built baseline: reconstructions + index + accounting.
#[derive(Clone, Debug)]
pub struct BaselineSummary {
    pub name: &'static str,
    /// Per-trajectory reconstructed positions (aligned with the dataset).
    pub recon: Vec<Vec<Point>>,
    pub starts: Vec<u32>,
    pub tpi: Option<Tpi>,
    /// Local-search radius: the method's measured maximum reconstruction
    /// error (baselines have no analytic guarantee).
    pub search_radius: f64,
    /// Total summary bytes (codebooks + per-point indices + extras).
    pub summary_bytes: usize,
    /// Total codewords stored (Table 6).
    pub codewords: usize,
    pub build_time: Duration,
}

impl BaselineSummary {
    /// Assemble from per-trajectory reconstructions; computes the max
    /// error against the original data and (optionally) builds the TPI
    /// over the reconstructed stream.
    pub fn assemble(
        name: &'static str,
        dataset: &Dataset,
        recon: Vec<Vec<Point>>,
        summary_bytes: usize,
        codewords: usize,
        build_time: Duration,
        tpi_cfg: Option<&TpiConfig>,
    ) -> BaselineSummary {
        assert_eq!(recon.len(), dataset.num_trajectories());
        let starts: Vec<u32> = dataset.trajectories().iter().map(|t| t.start).collect();
        let mut max_err = 0.0f64;
        for (id, t, p) in dataset.iter_points() {
            let off = (t - starts[id as usize]) as usize;
            max_err = max_err.max(p.dist(&recon[id as usize][off]));
        }
        let tpi = tpi_cfg.map(|cfg| {
            let slices = dataset.time_slices().map(|s| {
                let pts: Vec<(TrajId, Point)> = s
                    .points
                    .iter()
                    .map(|&(id, _)| {
                        let off = (s.t - starts[id as usize]) as usize;
                        (id, recon[id as usize][off])
                    })
                    .collect();
                (s.t, pts)
            });
            Tpi::build_from_slices(slices, cfg)
        });
        BaselineSummary {
            name,
            recon,
            starts,
            tpi,
            search_radius: max_err,
            summary_bytes,
            codewords,
            build_time,
        }
    }

    /// MAE in metres against the original data (Tables 2–4).
    pub fn mae_meters(&self, dataset: &Dataset) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (id, t, p) in dataset.iter_points() {
            if let Some(r) = self.recon(id, t) {
                sum += p.dist(&r);
                n += 1;
            }
        }
        if n == 0 {
            return 0.0;
        }
        coords::deg_to_meters(sum / n as f64)
    }

    pub fn max_error(&self, dataset: &Dataset) -> f64 {
        dataset
            .iter_points()
            .filter_map(|(id, t, p)| self.recon(id, t).map(|r| p.dist(&r)))
            .fold(0.0, f64::max)
    }

    pub fn compression_ratio(&self, dataset: &Dataset) -> f64 {
        dataset.raw_size_bytes() as f64 / self.summary_bytes as f64
    }
}

impl ReconIndex for BaselineSummary {
    fn recon(&self, id: TrajId, t: u32) -> Option<Point> {
        let traj = self.recon.get(id as usize)?;
        let start = *self.starts.get(id as usize)?;
        if t < start {
            return None;
        }
        traj.get((t - start) as usize).copied()
    }

    fn index(&self) -> Option<&Tpi> {
        self.tpi.as_ref()
    }

    fn search_radius(&self) -> f64 {
        self.search_radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_traj::Trajectory;

    fn tiny() -> Dataset {
        Dataset::new(vec![
            Trajectory::new(0, 0, vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]),
            Trajectory::new(1, 1, vec![Point::new(5.0, 5.0)]),
        ])
    }

    #[test]
    fn assemble_computes_max_error() {
        let d = tiny();
        // Shift every reconstruction by (0.1, 0).
        let recon = vec![
            vec![Point::new(0.1, 0.0), Point::new(1.1, 1.0)],
            vec![Point::new(5.1, 5.0)],
        ];
        let b = BaselineSummary::assemble("t", &d, recon, 100, 4, Duration::ZERO, None);
        assert!((b.search_radius - 0.1).abs() < 1e-12);
        assert_eq!(b.recon(0, 1), Some(Point::new(1.1, 1.0)));
        assert_eq!(b.recon(1, 0), None);
        assert_eq!(b.recon(1, 1), Some(Point::new(5.1, 5.0)));
    }

    #[test]
    fn tpi_built_over_reconstructions() {
        let d = tiny();
        let recon = vec![
            vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
            vec![Point::new(5.0, 5.0)],
        ];
        let cfg = TpiConfig::default();
        let b = BaselineSummary::assemble("t", &d, recon, 100, 4, Duration::ZERO, Some(&cfg));
        let tpi = b.tpi.as_ref().unwrap();
        let hits = tpi.query_disc(1, &Point::new(5.0, 5.0), 0.01);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn compression_ratio() {
        let d = tiny();
        let recon = vec![
            vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
            vec![Point::new(5.0, 5.0)],
        ];
        let b = BaselineSummary::assemble("t", &d, recon, 12, 1, Duration::ZERO, None);
        assert!((b.compression_ratio(&d) - 48.0 / 12.0).abs() < 1e-12);
    }
}
