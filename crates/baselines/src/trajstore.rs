//! TrajStore baseline (Cudre-Mauroux, Wu & Madden, ICDE 2010).
//!
//! TrajStore keeps an adaptive quadtree over space; points stream in and
//! leaf cells split on overflow / merge on underflow. Compression happens
//! per cell. For the paper's comparison the per-cell compressor is a
//! codebook whose size is either proportional to the cell's population
//! (budget parity, §6.2.1) or grown until a deviation bound holds
//! (Tables 5–6). "The summary process of TrajStore cannot start until the
//! spatial index has been updated with trajectory points of all the
//! timestamps" — so the build is: stream everything into the quadtree,
//! then quantize cell by cell. The disk mode lays each leaf's entries
//! (spanning all time) onto pages, which is why its query I/Os explode in
//! Table 9.

use crate::common::BaselineSummary;
use ppq_geo::{BBox, Point};
use ppq_quantize::codebook::index_bits_for;
use ppq_quantize::{bounded_kmeans, kmeans, KMeansConfig};
use ppq_sindex::region_quadtree::{Entry, RegionQuadtree};
use ppq_storage::codec::Encoder;
use ppq_storage::page::{Page, PAGE_SIZE};
use ppq_storage::{IoStats, PageStore};
use ppq_traj::Dataset;
use std::io;
use std::path::Path;
use std::time::Instant;

/// TrajStore parameters.
#[derive(Clone, Debug)]
pub struct TrajStoreConfig {
    /// Leaf split threshold.
    pub max_per_leaf: usize,
    /// Merge when four sibling leaves hold fewer than this many points.
    pub merge_threshold: usize,
    /// How often (in timesteps) the merge pass runs during streaming.
    pub merge_every: u32,
    pub kmeans: KMeansConfig,
}

impl Default for TrajStoreConfig {
    fn default() -> Self {
        TrajStoreConfig {
            max_per_leaf: 512,
            merge_threshold: 128,
            merge_every: 32,
            kmeans: KMeansConfig::default(),
        }
    }
}

/// Codebook sizing for the per-cell compressor.
#[derive(Clone, Copy, Debug)]
pub enum TsBudget {
    /// Total codeword budget distributed ∝ cell population.
    TotalWords(usize),
    /// Per-cell bounded growth until `ε` holds.
    Bounded(f64),
}

/// A built TrajStore: the quadtree plus per-point reconstructions.
pub struct TrajStore {
    pub summary: BaselineSummary,
    pub quadtree: RegionQuadtree,
    pub splits: u64,
    pub merges: u64,
}

/// Build TrajStore over a dataset.
pub fn build_trajstore(dataset: &Dataset, budget: TsBudget, cfg: &TrajStoreConfig) -> TrajStore {
    let t0 = Instant::now();
    let bounds = dataset
        .bbox()
        .map(|b| b.inflate(1e-6))
        .unwrap_or(BBox::from_extents(0.0, 0.0, 1.0, 1.0));
    let mut qt = RegionQuadtree::new(bounds, cfg.max_per_leaf);

    // Phase 1: stream points in time order, maintaining the index
    // (split on insert, periodic merge pass).
    for slice in dataset.time_slices() {
        for &(id, p) in slice.points {
            qt.insert(Entry {
                id,
                t: slice.t,
                pos: p,
            });
        }
        if cfg.merge_every > 0 && slice.t % cfg.merge_every == cfg.merge_every - 1 {
            qt.merge_pass(cfg.merge_threshold);
        }
    }

    // Phase 2: per-cell quantization.
    let starts: Vec<u32> = dataset.trajectories().iter().map(|t| t.start).collect();
    let mut recon: Vec<Vec<Point>> = dataset
        .trajectories()
        .iter()
        .map(|t| vec![Point::ORIGIN; t.len()])
        .collect();
    let total_points = dataset.num_points().max(1);
    let mut summary_bytes = 0usize;
    let mut codewords = 0usize;

    // Collect leaves first (can't mutate recon inside the visitor).
    let mut leaves: Vec<Vec<Entry>> = Vec::new();
    qt.for_each_leaf(|_, entries| {
        if !entries.is_empty() {
            leaves.push(entries.to_vec());
        }
    });
    for entries in &leaves {
        let positions: Vec<Point> = entries.iter().map(|e| e.pos).collect();
        let (cents, assign) = match budget {
            TsBudget::TotalWords(total) => {
                let share = ((total * positions.len()) as f64 / total_points as f64)
                    .round()
                    .max(1.0) as usize;
                kmeans(&positions, share.min(positions.len()), &cfg.kmeans)
            }
            TsBudget::Bounded(eps) => {
                let res = bounded_kmeans(&positions, eps, &cfg.kmeans);
                (res.centroids, res.assign)
            }
        };
        for (e, &a) in entries.iter().zip(&assign) {
            let off = (e.t - starts[e.id as usize]) as usize;
            recon[e.id as usize][off] = cents[a as usize];
        }
        summary_bytes +=
            cents.len() * 16 + (positions.len() * index_bits_for(cents.len()) as usize).div_ceil(8);
        codewords += cents.len();
    }
    let build_time = t0.elapsed();

    // TrajStore queries through its own quadtree, not a TPI.
    let summary = BaselineSummary::assemble(
        "TrajStore",
        dataset,
        recon,
        summary_bytes,
        codewords,
        build_time,
        None,
    );
    TrajStore {
        summary,
        splits: qt.splits(),
        merges: qt.merges(),
        quadtree: qt,
    }
}

/// Disk-resident TrajStore: each leaf's entries — **all timesteps** — are
/// serialized contiguously onto pages; a query must read every page of
/// the leaf containing the query point.
pub struct DiskTrajStore {
    store: PageStore,
    /// Per-leaf: bbox and page run (first page, page count).
    leaf_runs: Vec<(BBox, u64, u64)>,
}

impl DiskTrajStore {
    /// Default 1 MiB pages.
    pub fn create(ts: &TrajStore, path: &Path, pool_pages: usize) -> io::Result<DiskTrajStore> {
        Self::create_with(ts, path, pool_pages, PAGE_SIZE)
    }

    /// Explicit page size (scaled-down experiments; EXPERIMENTS.md Table 9).
    pub fn create_with(
        ts: &TrajStore,
        path: &Path,
        pool_pages: usize,
        page_size: usize,
    ) -> io::Result<DiskTrajStore> {
        let store = PageStore::create_with_page_size(path, pool_pages, page_size)?;
        let capacity = ppq_storage::payload_capacity(page_size);
        let mut leaf_runs = Vec::new();
        let mut leaves: Vec<(BBox, Vec<Entry>)> = Vec::new();
        ts.quadtree
            .for_each_leaf(|b, entries| leaves.push((*b, entries.to_vec())));
        for (bbox, entries) in leaves {
            if entries.is_empty() {
                continue;
            }
            let mut enc = Encoder::with_capacity(entries.len() * 24);
            enc.put_u32(entries.len() as u32);
            for e in &entries {
                enc.put_u32(e.id);
                enc.put_u32(e.t);
                enc.put_point(&e.pos);
            }
            let payload = enc.finish();
            let mut first = None;
            let mut pages = 0u64;
            for chunk in payload.chunks(capacity) {
                let id = store.append(&Page::from_payload_with(chunk, page_size))?;
                first.get_or_insert(id);
                pages += 1;
            }
            leaf_runs.push((bbox, first.expect("non-empty leaf"), pages));
        }
        Ok(DiskTrajStore { store, leaf_runs })
    }

    /// STRQ: read every page of the leaf containing `p` and filter by `t`.
    pub fn query(&self, t: u32, p: &Point) -> io::Result<Vec<u32>> {
        let Some(&(_, first, pages)) = self.leaf_runs.iter().find(|(b, _, _)| b.contains(p)) else {
            return Ok(Vec::new());
        };
        let mut bytes = Vec::with_capacity((pages as usize) * self.store.page_size());
        for pg in 0..pages {
            bytes.extend_from_slice(self.store.read(first + pg)?.payload());
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let mut out = Vec::new();
        let mut pos = 4usize;
        for _ in 0..n {
            let id = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let et = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            if et == t {
                out.push(id);
            }
            pos += 24; // id + t + 2×f64
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    pub fn io_stats(&self) -> &IoStats {
        self.store.stats()
    }

    pub fn size_bytes(&self) -> u64 {
        self.store.size_bytes()
    }

    pub fn clear_cache(&self) {
        self.store.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_traj::synth::{porto_like, PortoConfig};

    fn data() -> Dataset {
        porto_like(&PortoConfig {
            trajectories: 25,
            mean_len: 40,
            min_len: 30,
            start_spread: 5,
            seed: 21,
        })
    }

    #[test]
    fn bounded_build_respects_eps() {
        let d = data();
        let ts = build_trajstore(&d, TsBudget::Bounded(0.001), &TrajStoreConfig::default());
        assert!(ts.summary.max_error(&d) <= 0.001 + 1e-12);
        assert!(ts.summary.codewords > 0);
    }

    #[test]
    fn budget_build_distributes_words() {
        let d = data();
        let ts = build_trajstore(&d, TsBudget::TotalWords(64), &TrajStoreConfig::default());
        // Rounding per cell allows small overshoot, but the order of
        // magnitude must hold.
        assert!(
            ts.summary.codewords >= 32 && ts.summary.codewords <= 160,
            "codewords {}",
            ts.summary.codewords
        );
        assert!(ts.summary.mae_meters(&d).is_finite());
    }

    #[test]
    fn streaming_causes_splits() {
        let d = data();
        let cfg = TrajStoreConfig {
            max_per_leaf: 64,
            ..TrajStoreConfig::default()
        };
        let ts = build_trajstore(&d, TsBudget::TotalWords(64), &cfg);
        assert!(ts.splits > 0);
        assert!(ts.quadtree.num_leaves() > 1);
    }

    #[test]
    fn disk_query_matches_truth_positions() {
        let d = data();
        let ts = build_trajstore(&d, TsBudget::Bounded(0.001), &TrajStoreConfig::default());
        let mut path = std::env::temp_dir();
        path.push(format!("ppq-trajstore-{}", std::process::id()));
        let disk = DiskTrajStore::create(&ts, &path, 0).unwrap();
        // Query the true position of a few points: the id must be found.
        for (id, t, p) in d.iter_points().step_by(173) {
            let ids = disk.query(t, &p).unwrap();
            assert!(ids.contains(&id), "id {id} missing at t {t}");
        }
        assert!(disk.io_stats().reads() > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn disk_misses_are_empty() {
        let d = data();
        let ts = build_trajstore(&d, TsBudget::Bounded(0.001), &TrajStoreConfig::default());
        let mut path = std::env::temp_dir();
        path.push(format!("ppq-trajstore-miss-{}", std::process::id()));
        let disk = DiskTrajStore::create(&ts, &path, 0).unwrap();
        assert!(disk
            .query(10_000, &Point::new(-8.6, 41.15))
            .unwrap()
            .is_empty());
        std::fs::remove_file(path).ok();
    }
}
