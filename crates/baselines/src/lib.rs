//! Baseline methods from the paper's evaluation (§6.1).
//!
//! * [`pqrq`] — per-timestep Product Quantization and Residual
//!   Quantization over raw coordinates, "extended with our indexing
//!   approach" exactly as the paper did for fairness.
//! * [`trajstore`] — TrajStore (Cudre-Mauroux et al., ICDE 2010):
//!   adaptive quadtree storage with per-cell codebooks, including the
//!   paged disk mode used by Table 9.
//! * [`rest`] — REST (Zhao et al., KDD 2018): reference-based trajectory
//!   compression by greedy sub-trajectory matching.
//! * [`common`] — the [`common::BaselineSummary`] adapter that lets every
//!   baseline answer queries through `ppq_core::QueryEngine`.
//!
//! The remaining baseline of the paper, **Q-trajectory**, is the core
//! pipeline with prediction disabled: `PpqConfig::variant(Variant::QTrajectory, …)`.

pub mod common;
pub mod pqrq;
pub mod rest;
pub mod trajstore;

pub use common::BaselineSummary;
pub use pqrq::{build_pq, build_rq, PerStepBudget};
pub use rest::{build_rest, RestConfig};
pub use trajstore::{TrajStore, TrajStoreConfig, TsBudget};
