//! Product / Residual Quantization baselines (paper §6.1).
//!
//! Both quantize **raw coordinates** per timestep ("we learn C
//! independently for every timestamp") and are extended with the PPQ
//! indexing approach for fair query evaluation, exactly as the paper did.
//! Three budget regimes cover the experiments: fixed bits per point
//! (Table 4), per-step codeword parity with PPQ (Table 2), and
//! deviation-bounded growth (Tables 5–6, Figure 9).

use crate::common::BaselineSummary;
use ppq_geo::Point;
use ppq_quantize::codebook::index_bits_for;
use ppq_quantize::{ProductQuantizer, ResidualQuantizer};
use ppq_tpi::TpiConfig;
use ppq_traj::Dataset;
use std::time::Instant;

/// Codebook sizing for the per-timestep baselines.
#[derive(Clone, Debug)]
pub enum PerStepBudget {
    /// Fixed index bits per point (Table 4's 5–9 bits).
    Bits(u32),
    /// Match a per-timestep codeword count, e.g. PPQ's `V_t` (Table 2).
    /// Missing timesteps fall back to the last value.
    Words(Vec<(u32, u32)>),
    /// Grow until the max deviation is within `ε` (Tables 5–6).
    Bounded(f64),
}

impl PerStepBudget {
    fn words_at(&self, t: u32, n_points: usize) -> Option<usize> {
        match self {
            PerStepBudget::Bits(_) | PerStepBudget::Bounded(_) => None,
            PerStepBudget::Words(v) => {
                let w = v
                    .iter()
                    .find(|(ts, _)| *ts == t)
                    .map(|(_, w)| *w)
                    .unwrap_or_else(|| v.last().map(|(_, w)| *w).unwrap_or(1));
                Some((w as usize).clamp(1, n_points.max(1)))
            }
        }
    }
}

/// Build the Product Quantization baseline.
pub fn build_pq(
    dataset: &Dataset,
    budget: &PerStepBudget,
    tpi_cfg: Option<&TpiConfig>,
) -> BaselineSummary {
    let t0 = Instant::now();
    let starts: Vec<u32> = dataset.trajectories().iter().map(|t| t.start).collect();
    let mut recon: Vec<Vec<Point>> = dataset
        .trajectories()
        .iter()
        .map(|t| vec![Point::ORIGIN; t.len()])
        .collect();
    let mut summary_bytes = 0usize;
    let mut codewords = 0usize;
    for slice in dataset.time_slices() {
        if slice.points.is_empty() {
            continue;
        }
        let positions: Vec<Point> = slice.points.iter().map(|(_, p)| *p).collect();
        let pq = match budget {
            PerStepBudget::Bits(b) => ProductQuantizer::fit_bits(&positions, *b),
            PerStepBudget::Bounded(eps) => ProductQuantizer::fit_bounded(&positions, *eps),
            PerStepBudget::Words(_) => {
                let w = budget.words_at(slice.t, positions.len()).unwrap();
                ProductQuantizer::fit(&positions, w)
            }
        };
        for (i, &(id, _)) in slice.points.iter().enumerate() {
            let off = (slice.t - starts[id as usize]) as usize;
            recon[id as usize][off] = pq.reconstruct(i);
        }
        summary_bytes += pq.codebook_bytes()
            + (positions.len() * pq.index_bits_per_point() as usize).div_ceil(8);
        codewords += pq.codeword_equivalents();
    }
    let build_time = t0.elapsed();
    BaselineSummary::assemble(
        "Product Quantization",
        dataset,
        recon,
        summary_bytes,
        codewords,
        build_time,
        tpi_cfg,
    )
}

/// Build the Residual Quantization baseline (two stages, as in the
/// original formulation).
pub fn build_rq(
    dataset: &Dataset,
    budget: &PerStepBudget,
    tpi_cfg: Option<&TpiConfig>,
) -> BaselineSummary {
    let t0 = Instant::now();
    let starts: Vec<u32> = dataset.trajectories().iter().map(|t| t.start).collect();
    let mut recon: Vec<Vec<Point>> = dataset
        .trajectories()
        .iter()
        .map(|t| vec![Point::ORIGIN; t.len()])
        .collect();
    let mut summary_bytes = 0usize;
    let mut codewords = 0usize;
    for slice in dataset.time_slices() {
        if slice.points.is_empty() {
            continue;
        }
        let positions: Vec<Point> = slice.points.iter().map(|(_, p)| *p).collect();
        let rq = match budget {
            PerStepBudget::Bits(b) => ResidualQuantizer::fit_bits(&positions, *b),
            PerStepBudget::Bounded(eps) => ResidualQuantizer::fit_bounded(&positions, *eps),
            PerStepBudget::Words(_) => {
                let w = budget.words_at(slice.t, positions.len()).unwrap();
                // Split the parity budget across the two stages.
                ResidualQuantizer::fit(&positions, (w / 2).max(1), 2)
            }
        };
        for (i, &(id, _)) in slice.points.iter().enumerate() {
            let off = (slice.t - starts[id as usize]) as usize;
            recon[id as usize][off] = rq.reconstruct(i);
        }
        summary_bytes += rq.codebook_bytes()
            + (positions.len() * rq.index_bits_per_point() as usize).div_ceil(8);
        codewords += rq.total_codewords();
    }
    let build_time = t0.elapsed();
    BaselineSummary::assemble(
        "Residual Quantization",
        dataset,
        recon,
        summary_bytes,
        codewords,
        build_time,
        tpi_cfg,
    )
}

/// Index bits a per-step budget implies (used by harness reporting).
pub fn budget_bits(budget: &PerStepBudget) -> Option<u32> {
    match budget {
        PerStepBudget::Bits(b) => Some(*b),
        PerStepBudget::Words(v) => v.iter().map(|(_, w)| index_bits_for(*w as usize)).max(),
        PerStepBudget::Bounded(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_traj::synth::{porto_like, PortoConfig};

    fn data() -> Dataset {
        porto_like(&PortoConfig {
            trajectories: 20,
            mean_len: 40,
            min_len: 30,
            start_spread: 5,
            seed: 9,
        })
    }

    #[test]
    fn pq_bounded_respects_eps() {
        let d = data();
        let b = build_pq(&d, &PerStepBudget::Bounded(0.001), None);
        assert!(b.max_error(&d) <= 0.001 + 1e-12);
        assert!(b.codewords > 0);
        assert!(b.summary_bytes > 0);
    }

    #[test]
    fn rq_bounded_respects_eps() {
        let d = data();
        let b = build_rq(&d, &PerStepBudget::Bounded(0.001), None);
        assert!(b.max_error(&d) <= 0.001 + 1e-12);
    }

    #[test]
    fn more_bits_less_error() {
        let d = data();
        let coarse = build_pq(&d, &PerStepBudget::Bits(4), None);
        let fine = build_pq(&d, &PerStepBudget::Bits(10), None);
        assert!(fine.mae_meters(&d) < coarse.mae_meters(&d));
        let coarse_rq = build_rq(&d, &PerStepBudget::Bits(4), None);
        let fine_rq = build_rq(&d, &PerStepBudget::Bits(10), None);
        assert!(fine_rq.mae_meters(&d) < coarse_rq.mae_meters(&d));
    }

    #[test]
    fn words_parity_budget() {
        let d = data();
        let words: Vec<(u32, u32)> = (0..60).map(|t| (t, 8)).collect();
        let b = build_pq(&d, &PerStepBudget::Words(words), None);
        assert!(b.mae_meters(&d).is_finite());
    }

    #[test]
    fn queryable_with_index() {
        use ppq_core::query::{precision_recall, QueryEngine};
        let d = data();
        let cfg = TpiConfig::default();
        let b = build_pq(&d, &PerStepBudget::Bits(10), Some(&cfg));
        let engine = QueryEngine::new(&b, &d, cfg.pi.gc);
        let mut r_sum = 0.0;
        let mut n = 0.0;
        for (_, t, p) in d.iter_points().step_by(151) {
            let out = engine.strq(t, &p);
            let (_, rec) = precision_recall(&out.candidates, &out.truth);
            r_sum += rec;
            n += 1.0;
        }
        // The measured-max-error search radius makes candidate recall 1.
        assert!((r_sum / n - 1.0).abs() < 1e-12, "recall {}", r_sum / n);
    }
}
