//! REST baseline (Zhao et al., KDD 2018): reference-based spatio-temporal
//! trajectory compression.
//!
//! REST builds a *reference set* of trajectories offline, then compresses
//! a target trajectory as a sequence of matches — (reference id, offset,
//! length) triples pointing at reference sub-trajectories within a
//! deviation bound — plus raw points where no reference matches. The
//! paper compares against REST's best variant (trajectory redundancy
//! reduction) on the sub-Porto dataset only, because REST "needs a highly
//! repeating set of patterns" to function (§6.1); `ppq_traj::synth::sub_porto`
//! reproduces that construction.

use crate::common::BaselineSummary;
use ppq_geo::{BBox, GridSpec, Point};
use ppq_tpi::TpiConfig;
use ppq_traj::Dataset;
use std::time::Instant;

/// REST parameters.
#[derive(Clone, Debug)]
pub struct RestConfig {
    /// Per-point deviation tolerance for a match (the spatial deviation
    /// budget of the compression-ratio sweep).
    pub eps: f64,
    /// Minimum run length worth storing as a match (shorter runs are
    /// cheaper raw).
    pub min_match_len: usize,
}

impl Default for RestConfig {
    fn default() -> Self {
        RestConfig {
            eps: 0.001,
            min_match_len: 3,
        }
    }
}

/// One compressed element of a target trajectory.
#[derive(Clone, Debug, PartialEq)]
enum Element {
    /// `len` points matched against `reference[ref_id][off..off+len]`.
    Match { ref_id: u32, off: u32, len: u32 },
    /// A literal point.
    Raw(Point),
}

/// Grid over all reference points for candidate lookup:
/// cell → (ref trajectory, offset) pairs.
struct RefIndex<'a> {
    grid: GridSpec,
    cells: Vec<Vec<(u32, u32)>>,
    refs: &'a Dataset,
}

impl<'a> RefIndex<'a> {
    fn build(refs: &'a Dataset, eps: f64) -> RefIndex<'a> {
        let bbox = refs
            .bbox()
            .map(|b| b.inflate(eps))
            .unwrap_or(BBox::from_extents(0.0, 0.0, 1.0, 1.0));
        let grid = GridSpec::covering(&bbox, eps.max(1e-9));
        let mut cells = vec![Vec::new(); grid.len()];
        for traj in refs.trajectories() {
            for (off, p) in traj.points.iter().enumerate() {
                if let Some((cx, cy)) = grid.locate(p) {
                    cells[grid.flat(cx, cy)].push((traj.id, off as u32));
                }
            }
        }
        RefIndex { grid, cells, refs }
    }

    /// Candidate (ref, offset) pairs within `eps` of `p` (3×3 cells).
    fn candidates(&self, p: &Point, eps: f64, out: &mut Vec<(u32, u32)>) {
        out.clear();
        let Some((cx, cy)) = self.grid.locate(p) else {
            return;
        };
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0
                    || ny < 0
                    || nx >= self.grid.cols() as i64
                    || ny >= self.grid.rows() as i64
                {
                    continue;
                }
                for &(rid, off) in &self.cells[self.grid.flat(nx as u32, ny as u32)] {
                    let rp = self.refs.trajectory(rid).points[off as usize];
                    if rp.dist(p) <= eps {
                        out.push((rid, off));
                    }
                }
            }
        }
    }
}

/// Compress `targets` against the reference pool and assemble a
/// [`BaselineSummary`] of the reconstructions.
///
/// Size accounting: 12 bytes per match triple, 17 bytes per raw point
/// (1-byte tag + 2×f64); the reference set itself is the shared offline
/// dictionary and is not charged, following REST's own accounting.
pub fn build_rest(
    targets: &Dataset,
    reference_pool: &Dataset,
    cfg: &RestConfig,
    tpi_cfg: Option<&TpiConfig>,
) -> BaselineSummary {
    let t0 = Instant::now();
    let index = RefIndex::build(reference_pool, cfg.eps);
    let mut recon: Vec<Vec<Point>> = Vec::with_capacity(targets.num_trajectories());
    let mut summary_bytes = 0usize;
    let mut cand_buf: Vec<(u32, u32)> = Vec::new();

    for traj in targets.trajectories() {
        let mut elements: Vec<Element> = Vec::new();
        let pts = &traj.points;
        let mut i = 0usize;
        while i < pts.len() {
            index.candidates(&pts[i], cfg.eps, &mut cand_buf);
            // Greedy: take the candidate whose reference run extends the
            // farthest.
            let mut best: Option<(u32, u32, usize)> = None; // (ref, off, len)
            for &(rid, off) in &cand_buf {
                let ref_pts = &index.refs.trajectory(rid).points;
                let mut len = 0usize;
                while i + len < pts.len()
                    && (off as usize + len) < ref_pts.len()
                    && pts[i + len].dist(&ref_pts[off as usize + len]) <= cfg.eps
                {
                    len += 1;
                }
                if best.is_none_or(|(_, _, bl)| len > bl) {
                    best = Some((rid, off, len));
                }
            }
            match best {
                Some((rid, off, len)) if len >= cfg.min_match_len => {
                    elements.push(Element::Match {
                        ref_id: rid,
                        off,
                        len: len as u32,
                    });
                    i += len;
                }
                _ => {
                    elements.push(Element::Raw(pts[i]));
                    i += 1;
                }
            }
        }
        // Reconstruct and account.
        let mut rec = Vec::with_capacity(pts.len());
        for el in &elements {
            match el {
                Element::Match { ref_id, off, len } => {
                    summary_bytes += 12;
                    let ref_pts = &index.refs.trajectory(*ref_id).points;
                    for j in 0..*len {
                        rec.push(ref_pts[(*off + j) as usize]);
                    }
                }
                Element::Raw(p) => {
                    summary_bytes += 17;
                    rec.push(*p);
                }
            }
        }
        debug_assert_eq!(rec.len(), pts.len());
        recon.push(rec);
    }
    let build_time = t0.elapsed();
    BaselineSummary::assemble(
        "REST",
        targets,
        recon,
        summary_bytes,
        0,
        build_time,
        tpi_cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppq_traj::synth::{sub_porto, SubPortoConfig};

    fn datasets() -> (Dataset, Dataset) {
        sub_porto(&SubPortoConfig {
            base_trajectories: 20,
            mean_len: 60,
            seed: 5,
            noise_m: 10.0,
        })
    }

    #[test]
    fn rest_is_error_bounded() {
        let (targets, pool) = datasets();
        let cfg = RestConfig {
            eps: 0.002,
            min_match_len: 3,
        };
        let b = build_rest(&targets, &pool, &cfg, None);
        assert!(b.max_error(&targets) <= cfg.eps + 1e-12);
    }

    #[test]
    fn rest_compresses_repetitive_data() {
        let (targets, pool) = datasets();
        let cfg = RestConfig {
            eps: 0.002,
            min_match_len: 3,
        };
        let b = build_rest(&targets, &pool, &cfg, None);
        let ratio = b.compression_ratio(&targets);
        assert!(
            ratio > 2.0,
            "REST should compress sub-Porto well, got {ratio}"
        );
    }

    #[test]
    fn rest_fails_to_compress_unrelated_data() {
        use ppq_traj::synth::{porto_like, PortoConfig};
        let (_, pool) = datasets();
        // Targets from a different seed: few matches available.
        let strangers = porto_like(&PortoConfig {
            trajectories: 10,
            mean_len: 50,
            min_len: 30,
            start_spread: 5,
            seed: 999,
        });
        let cfg = RestConfig {
            eps: 0.0002,
            min_match_len: 3,
        };
        let b = build_rest(&strangers, &pool, &cfg, None);
        let (t, _) = datasets();
        let good = build_rest(&t, &pool, &cfg, None);
        assert!(
            b.compression_ratio(&strangers) < good.compression_ratio(&t),
            "unrelated data should compress worse ({} vs {})",
            b.compression_ratio(&strangers),
            good.compression_ratio(&t)
        );
    }

    #[test]
    fn tighter_eps_lowers_ratio() {
        let (targets, pool) = datasets();
        let loose = build_rest(
            &targets,
            &pool,
            &RestConfig {
                eps: 0.004,
                min_match_len: 3,
            },
            None,
        );
        let tight = build_rest(
            &targets,
            &pool,
            &RestConfig {
                eps: 0.0001,
                min_match_len: 3,
            },
            None,
        );
        assert!(loose.compression_ratio(&targets) >= tight.compression_ratio(&targets));
    }
}
