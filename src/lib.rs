//! # PPQ-Trajectory
//!
//! A production-quality Rust reproduction of *PPQ-Trajectory:
//! Spatio-temporal Quantization for Querying in Large Trajectory
//! Repositories* (Wang & Ferhatosmanoglu, PVLDB 14(2), 2021).
//!
//! This façade crate re-exports the workspace crates under stable names so
//! downstream users can depend on a single package:
//!
//! * [`geo`] — planar geometry primitives (points, boxes, grids).
//! * [`traj`] — trajectory model, synthetic dataset generators, CSV I/O.
//! * [`quantize`] — vector-quantization substrate (k-means, incremental
//!   error-bounded quantizer, product/residual quantizers).
//! * [`predict`] — linear prediction + AR(k) autocorrelation features.
//! * [`cqc`] — coordinate quadtree coding (paper §4).
//! * [`sindex`] — grid index, overlap removal, ID-list compression.
//! * [`tpi`] — partition index / temporal partition index (paper §5.1).
//! * [`storage`] — paged disk store with I/O accounting.
//! * [`core`] — the PPQ-trajectory pipeline itself: E-PQ, PPQ-S/PPQ-A,
//!   summary, and the STRQ/TPQ query engine.
//! * [`repo`] — the persistent, reopenable repository: segmented on-disk
//!   format, block directory, shared buffer pool, disk query engine.
//! * [`live`] — crash-safe live ingest over the repository: write-ahead
//!   log, checkpointed bit-identical recovery, folding + auto-compaction.
//! * [`server`] — the live service shell: versioned binary wire
//!   protocol, threaded TCP transport, background maintenance worker,
//!   and a remote query-target client.
//! * [`baselines`] — Q-trajectory, PQ, RQ, TrajStore, REST.
//!
//! ## Quickstart
//!
//! ```
//! use ppq_trajectory::core::{PpqConfig, PartitionMode, PpqTrajectory};
//! use ppq_trajectory::traj::synth::{porto_like, PortoConfig};
//!
//! // A small synthetic dataset shaped like the Porto taxi data.
//! let dataset = porto_like(&PortoConfig { trajectories: 40, ..PortoConfig::small() });
//!
//! // Summarise it with the default paper parameters (ε₁ = 0.001°…).
//! let config = PpqConfig { partition_mode: PartitionMode::Spatial, ..PpqConfig::default() };
//! let built = PpqTrajectory::build(&dataset, &config);
//!
//! // Every reconstructed point is within (√2/2)·g_s of the original.
//! let bound = built.config().cqc_error_bound();
//! for (id, t, original) in dataset.iter_points() {
//!     let rec = built.reconstruct(id, t).unwrap();
//!     assert!(original.dist(&rec) <= bound + 1e-9);
//! }
//! ```

pub use ppq_baselines as baselines;
pub use ppq_core as core;
pub use ppq_cqc as cqc;
pub use ppq_geo as geo;
pub use ppq_live as live;
pub use ppq_obs as obs;
pub use ppq_predict as predict;
pub use ppq_quantize as quantize;
pub use ppq_repo as repo;
pub use ppq_server as server;
pub use ppq_sindex as sindex;
pub use ppq_storage as storage;
pub use ppq_tpi as tpi;
pub use ppq_traj as traj;
